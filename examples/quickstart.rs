// Quickstart: publish two images into an Expelliarmus repository, watch
// the base image being shared, and retrieve one back.
//
// ```text
// cargo run --release --example quickstart
// ```

use expelliarmus::prelude::*;

fn main() {
    // A small deterministic world: Ubuntu-like base + a handful of stacks.
    let world = World::small();

    let mini = world.build_image("mini");
    let redis = world.build_image("redis");
    println!(
        "built {:<6} mounted={:>10}  files={:>3}",
        mini.name,
        format_nominal(mini.mounted_bytes()),
        mini.file_count()
    );
    println!(
        "built {:<6} mounted={:>10}  files={:>3}",
        redis.name,
        format_nominal(redis.mounted_bytes()),
        redis.file_count()
    );

    // Publish both. The second publish finds the base already stored and
    // only exports redis's packages.
    let repo = ExpelliarmusRepo::new(world.env());
    for vmi in [&mini, &redis] {
        let report = repo.publish(&world.catalog, vmi).expect("publish");
        println!(
            "published {:<6} in {:>8}  (similarity {:.2}, {} new packages, +{})",
            report.image,
            format!("{}", report.duration),
            report.similarity,
            report.units_stored,
            format_nominal(report.bytes_added),
        );
    }
    println!(
        "repository: {} for {} of images ({} base image(s), {} packages)",
        format_nominal(repo.repo_bytes()),
        format_nominal(mini.disk_bytes() + redis.disk_bytes()),
        repo.base_count(),
        repo.package_count(),
    );

    // Retrieve redis back and verify functional equality.
    let request = RetrieveRequest::for_image(&redis, &world.catalog);
    let (got, report) = repo.retrieve(&world.catalog, &request).expect("retrieve");
    println!("retrieved {} in {}", got.name, report.duration);
    for (phase, t) in report.breakdown.segments() {
        println!("  {phase:<28} {t}");
    }
    assert_eq!(
        got.installed_package_set(&world.catalog),
        redis.installed_package_set(&world.catalog)
    );
    println!("retrieved image is functionally identical to the published one ✓");
}
