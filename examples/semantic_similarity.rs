// Semantic-graph playground: build the Figure 1 style graphs for a few
// images, print the pairwise SimG matrix, and show how a master graph
// collapses the comparisons.
//
// ```text
// cargo run --release --example semantic_similarity
// ```

use expelliarmus::semgraph::{sim_g, MasterGraph, SemanticGraph};
use expelliarmus::workloads::World;

fn image_graph(world: &World, name: &str) -> SemanticGraph {
    let vmi = world.build_image(name);
    let installed = vmi.pkgdb.installed_ids();
    let primary_set: std::collections::HashSet<_> = vmi.primary.iter().copied().collect();
    let base_roots: Vec<_> = vmi
        .pkgdb
        .manual_ids()
        .into_iter()
        .filter(|id| !primary_set.contains(id))
        .collect();
    SemanticGraph::of_image(
        &world.catalog,
        name,
        vmi.base.clone(),
        &installed,
        &vmi.primary,
        &base_roots,
    )
}

fn main() {
    let world = World::small();
    let names = world.image_names();
    let graphs: Vec<SemanticGraph> = names.iter().map(|n| image_graph(&world, n)).collect();

    for (name, g) in names.iter().zip(&graphs) {
        println!(
            "{name:<8} {:>3} vertices ({} primary-subgraph, {} base), cycle: {}",
            g.package_count(),
            g.primary_subgraph().package_count(),
            g.base_subgraph().package_count(),
            g.has_cycle(),
        );
    }

    println!("\npairwise SimG:");
    print!("{:<8}", "");
    for n in &names {
        print!(" {n:>7}");
    }
    println!();
    for (i, a) in graphs.iter().enumerate() {
        print!("{:<8}", names[i]);
        for b in &graphs {
            print!(" {:>7.3}", sim_g(a, b));
        }
        println!();
    }

    // Master graph: merge all images, then compare one new image against
    // the single master instead of each stored graph.
    let mut master = MasterGraph::create(&graphs[0]);
    for g in &graphs[1..] {
        master.absorb(g);
    }
    println!(
        "\nmaster graph {}: {} union packages from {} member images",
        master.key,
        master.package_count(),
        master.members.len()
    );
    for (name, g) in names.iter().zip(&graphs) {
        println!(
            "  SimG({name:<8} vs master) = {:.3}",
            master.similarity_to(g)
        );
    }
}
