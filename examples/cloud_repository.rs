// Cloud-repository scenario: the paper's 19-image AWS-style evaluation
// set flows into all five storage systems; compare repository growth and
// publish cost (Figures 3b / 4b in miniature, at full fidelity).
//
// ```text
// cargo run --release --example cloud_repository [n_images]
// ```

use expelliarmus::prelude::*;
use expelliarmus::util::bytesize::nominal_gb;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    println!("building the standard evaluation world (~2.4k packages)…");
    let world = World::standard();
    let names: Vec<String> = world
        .image_names()
        .iter()
        .take(n)
        .map(|s| s.to_string())
        .collect();

    let qcow = QcowStore::new(world.env());
    let gzip = GzipStore::new(world.env());
    let mirage = MirageStore::new(world.env());
    let hemera = HemeraStore::new(world.env());
    let xpl = ExpelliarmusRepo::new(world.env());

    println!(
        "{:<14} {:>9} {:>11} {:>9} {:>9} {:>13} {:>11}",
        "image", "Qcow2 GB", "Gzip GB", "Mirage", "Hemera", "Expelliarmus", "xpl pub s"
    );
    for name in &names {
        let vmi = world.build_image(name);
        qcow.publish(&world.catalog, &vmi).unwrap();
        gzip.publish(&world.catalog, &vmi).unwrap();
        mirage.publish(&world.catalog, &vmi).unwrap();
        hemera.publish(&world.catalog, &vmi).unwrap();
        let report = xpl.publish(&world.catalog, &vmi).unwrap();
        println!(
            "{:<14} {:>9.2} {:>11.2} {:>9.2} {:>9.2} {:>13.2} {:>11.2}",
            name,
            nominal_gb(qcow.repo_bytes()),
            nominal_gb(gzip.repo_bytes()),
            nominal_gb(mirage.repo_bytes()),
            nominal_gb(hemera.repo_bytes()),
            nominal_gb(xpl.repo_bytes()),
            report.duration.as_secs_f64(),
        );
    }

    let q = qcow.repo_bytes() as f64;
    println!("\nsavings vs raw qcow2 after {} images:", names.len());
    for (label, bytes) in [
        ("Qcow2+Gzip", gzip.repo_bytes()),
        ("Mirage", mirage.repo_bytes()),
        ("Hemera", hemera.repo_bytes()),
        ("Expelliarmus", xpl.repo_bytes()),
    ] {
        println!("  {:<14} {:>6.1}×", label, q / bytes as f64);
    }

    // Functional retrieval: ask for an image that was never uploaded as
    // such — nginx-from-Lemp + redis-from-Redis on one base. Only the
    // semantic store can serve it.
    if names.iter().any(|n| n == "Lemp") {
        let request = RetrieveRequest {
            name: "custom-lemp-redis".into(),
            base: world.template.attrs.clone(),
            primary: vec!["nginx".into(), "redis-server".into()],
            user_data: vec![],
        };
        match xpl.retrieve(&world.catalog, &request) {
            Ok((vmi, report)) => println!(
                "\nassembled never-uploaded image '{}' ({} packages) in {}",
                vmi.name,
                vmi.pkgdb.len(),
                report.duration
            ),
            Err(e) => println!("\nfunctional retrieval failed: {e}"),
        }
    }
}
