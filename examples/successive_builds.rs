// CI/CD image-versioning scenario (Figure 3c): the same IDE image is
// rebuilt many times with a few packages bumped per build; only a
// semantics-aware store keeps repository growth proportional to the
// *changed packages* instead of the whole image.
//
// ```text
// cargo run --release --example successive_builds [n_builds]
// ```

use expelliarmus::prelude::*;
use expelliarmus::util::bytesize::nominal_gb;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    println!("building the standard world…");
    let world = World::standard();

    let qcow = QcowStore::new(world.env());
    let mirage = MirageStore::new(world.env());
    let xpl = ExpelliarmusRepo::new(world.env());

    println!(
        "{:<14} {:>10} {:>10} {:>14} {:>12}",
        "build", "Qcow2 GB", "Mirage GB", "Expelliarmus", "new pkgs"
    );
    for k in 0..n {
        let vmi = world.ide_build(k);
        qcow.publish(&world.catalog, &vmi).unwrap();
        mirage.publish(&world.catalog, &vmi).unwrap();
        let report = xpl.publish(&world.catalog, &vmi).unwrap();
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>14.2} {:>12}",
            vmi.name,
            nominal_gb(qcow.repo_bytes()),
            nominal_gb(mirage.repo_bytes()),
            nominal_gb(xpl.repo_bytes()),
            report.units_stored,
        );
    }

    let q = nominal_gb(qcow.repo_bytes());
    let m = nominal_gb(mirage.repo_bytes());
    let x = nominal_gb(xpl.repo_bytes());
    println!(
        "\nafter {n} builds: Expelliarmus stores {x:.2} GB — {:.1}× less than Mirage, {:.1}× less than raw qcow2",
        m / x,
        q / x
    );
    println!("(the paper reports 2.2× vs Mirage/Hemera and 16× vs gzip at 40 builds)");
}
