//! # Expelliarmus — semantics-aware VM image management
//!
//! Facade crate for the Rust reproduction of *"Semantics-aware Virtual
//! Machine Image Management in IaaS Clouds"* (Saurabh et al., IPDPS 2019).
//!
//! The workspace implements the complete system described in the paper —
//! semantic graphs, master graphs, similarity metrics, the publish /
//! base-image-selection / retrieval algorithms — plus every substrate it
//! depends on (a qcow2-style disk format, a guest filesystem and package
//! manager, DEFLATE/gzip, an embedded metadata DB, a simulated storage
//! device) and the four comparison systems from its evaluation (Qcow2,
//! Qcow2+Gzip, Mirage, Hemera).
//!
//! ## Quickstart
//!
//! ```
//! use expelliarmus::prelude::*;
//!
//! // A deterministic synthetic package universe + image recipes.
//! let world = World::small();
//! let mini = world.build_image("mini");
//! let redis = world.build_image("redis");
//!
//! // Publish both into an Expelliarmus repository.
//! let mut repo = ExpelliarmusRepo::new(world.env());
//! repo.publish(&world.catalog, &mini).unwrap();
//! repo.publish(&world.catalog, &redis).unwrap();
//!
//! // Retrieval re-assembles a functionally identical image.
//! let request = RetrieveRequest::for_image(&redis, &world.catalog);
//! let (got, _report) = repo.retrieve(&world.catalog, &request).unwrap();
//! assert_eq!(
//!     got.installed_package_set(&world.catalog),
//!     redis.installed_package_set(&world.catalog),
//! );
//!
//! // Both images share one stored base image, so the repo is much
//! // smaller than the sum of the two disks.
//! assert!(repo.repo_bytes() < mini.disk_bytes() + redis.disk_bytes());
//! ```

pub use xpl_baselines as baselines;
pub use xpl_bench as bench;
pub use xpl_chunking as chunking;
pub use xpl_compress as compress;
pub use xpl_core as core;
pub use xpl_guestfs as guestfs;
pub use xpl_metadb as metadb;
pub use xpl_net as net;
pub use xpl_persist as persist;
pub use xpl_pkg as pkg;
pub use xpl_registry as registry;
pub use xpl_semgraph as semgraph;
pub use xpl_simio as simio;
pub use xpl_store as store;
pub use xpl_util as util;
pub use xpl_vdisk as vdisk;
pub use xpl_workloads as workloads;

/// Convenience re-exports covering the common workflow: build a workload,
/// publish into a store, retrieve, and measure.
pub mod prelude {
    pub use xpl_baselines::{
        CdcDedupStore, FixedBlockDedupStore, GzipStore, HemeraStore, MirageStore, QcowStore,
    };
    pub use xpl_core::{ExpelliarmusRepo, PublishMode};
    pub use xpl_guestfs::Vmi;
    pub use xpl_semgraph::{MasterGraph, SemanticGraph};
    pub use xpl_simio::{SimDevice, SimEnv};
    pub use xpl_store::{DeleteReport, ImageStore, PublishReport, RetrieveReport, RetrieveRequest};
    pub use xpl_util::{format_bytes, format_nominal};
    pub use xpl_workloads::{ScaleConfig, ScaledWorld, Trace, TraceConfig, World};
}
