//! Registry serving acceptance suite: the multi-tenant front end over a
//! real store must be deterministic and byte-faithful.
//!
//! Pinned properties:
//!
//! 1. **Thread-count invariance** — every virtual-time field of the
//!    serve report (request-log fingerprint, schedule, payload-digest
//!    table, latency percentiles, fairness, admission counts) is
//!    byte-identical with the replay pool at 1, 2 and 8 threads; only
//!    wall-clock throughput may differ.
//! 2. **Coalescing is invisible in the payloads** — a coalesced run
//!    makes strictly fewer store hits than an uncoalesced one, yet both
//!    replays pass the differential digest oracle and their
//!    key→payload-digest tables are identical: coalescing changes who
//!    pays for a store hit, never what bytes a tenant receives.
//! 3. **Admission control fails loud** — under a queue bound too small
//!    for the offered load, requests are rejected with the typed
//!    overload outcome (never dropped silently): per tenant,
//!    `submitted == admitted + rejected` and `served == admitted`.
//! 4. **The wire is invisible in the payloads** — serving the same
//!    schedule through the `xpl-net` front end (threaded server, frame
//!    codec, admission gate, retrying clients) assembles a
//!    key→payload-digest table byte-identical to the in-process one,
//!    with a clean transport and under a seeded fault storm alike.

use expelliarmus::bench::serve::{run_serve, ServeReport, ServeRunConfig};
use expelliarmus::bench::serve_net::{run_serve_net, NetServeConfig, NetTransportKind};

fn small_cfg(seed: u64) -> ServeRunConfig {
    let mut cfg = ServeRunConfig::small(seed);
    cfg.requests = 160;
    cfg.tenants = 4;
    cfg
}

/// The deterministic (virtual-time) projection of a serve report.
fn virtual_fields(r: &ServeReport) -> (String, String, String, u64, u64, u64, u64, u64, u64) {
    (
        r.request_log_sha256.clone(),
        r.schedule_sha256.clone(),
        r.key_digests_sha256.clone(),
        r.served,
        r.rejected,
        r.store_hits,
        r.coalesced_hits,
        r.p50_latency_ms.to_bits(),
        r.p99_latency_ms.to_bits(),
    )
}

#[test]
fn serve_report_is_byte_identical_across_thread_counts() {
    let cfg = small_cfg(0xC0FFEE);
    let runs: Vec<ServeReport> = [1usize, 2, 8]
        .iter()
        .map(|&t| rayon::with_num_threads(t, || run_serve(&cfg)))
        .collect();
    for r in &runs {
        assert!(r.violations.is_empty(), "oracle: {:?}", r.violations);
        assert!(r.sustained_ops_per_s > 0.0);
    }
    let want = virtual_fields(&runs[0]);
    for r in &runs[1..] {
        assert_eq!(
            virtual_fields(r),
            want,
            "virtual-time fields must not depend on the replay pool size"
        );
    }
    assert_eq!(
        runs[0].fairness_max_min_served.to_bits(),
        runs[1].fairness_max_min_served.to_bits()
    );
}

#[test]
fn coalesced_and_uncoalesced_runs_serve_identical_bytes() {
    let mut cfg = small_cfg(0xFA1);
    let on = run_serve(&cfg);
    cfg.coalesce = false;
    let off = run_serve(&cfg);

    // The saturated Zipf load must actually trigger coalescing, and it
    // must save store hits.
    assert!(on.coalesced_hits > 0, "no coalescing under Zipf load");
    assert!(on.store_hits < off.store_hits);
    assert_eq!(off.coalesced_hits, 0);
    assert_eq!(
        on.served, off.served,
        "coalescing must not change who is served"
    );

    // The differential oracle: both replays byte-clean against the
    // memoized digests, and the payload identity tables are equal.
    assert!(on.violations.is_empty(), "coalesced: {:?}", on.violations);
    assert!(
        off.violations.is_empty(),
        "uncoalesced: {:?}",
        off.violations
    );
    assert_eq!(on.key_digests_sha256, off.key_digests_sha256);
}

#[test]
fn overload_rejections_are_typed_and_accounted() {
    let mut cfg = small_cfg(0xBEEF);
    cfg.servers = 1;
    cfg.queue_depth = 2;
    let r = run_serve(&cfg);
    assert!(
        r.rejected > 0,
        "a depth-2 queue over one server must overload under saturation"
    );
    assert_eq!(r.served + r.rejected, r.requests as u64);
    for t in &r.per_tenant {
        assert_eq!(t.submitted, t.admitted + t.rejected, "tenant {}", t.tenant);
        assert_eq!(
            t.served, t.admitted,
            "tenant {}: everything admitted is served",
            t.tenant
        );
    }
    // Rejections cost no store work and appear in the fingerprinted log.
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    let rerun = run_serve(&cfg);
    assert_eq!(r.request_log_sha256, rerun.request_log_sha256);
    assert_eq!(r.rejected, rerun.rejected);
}

#[test]
fn wire_serve_matches_in_process_digest_table() {
    let cfg = small_cfg(0x41E7);
    let in_process = run_serve(&cfg);
    let net = NetServeConfig {
        transport: NetTransportKind::Mem,
        fault_rate: 0,
        net_seed: 1,
        conns_per_tenant: 2,
    };
    let wire = run_serve_net(&cfg, &net);
    assert!(wire.violations.is_empty(), "{:?}", wire.violations);
    assert_eq!(wire.served, cfg.requests as u64);
    assert_eq!(wire.key_digests_sha256, in_process.key_digests_sha256);
    assert_eq!(wire.wire_key_digests_sha256, in_process.key_digests_sha256);
}

#[test]
fn wire_serve_survives_a_fault_storm_byte_identically() {
    let cfg = small_cfg(0x41E8);
    let clean = NetServeConfig {
        transport: NetTransportKind::Mem,
        fault_rate: 0,
        net_seed: 3,
        conns_per_tenant: 2,
    };
    let stormy = NetServeConfig {
        fault_rate: 32,
        ..clean
    };
    let a = run_serve_net(&cfg, &clean);
    let b = run_serve_net(&cfg, &stormy);
    assert!(a.violations.is_empty(), "clean: {:?}", a.violations);
    assert!(b.violations.is_empty(), "storm: {:?}", b.violations);
    assert_eq!(b.wire_key_digests_sha256, a.wire_key_digests_sha256);
    assert_eq!(b.key_digests_sha256, a.key_digests_sha256);
    let injected = b.faults_resets + b.faults_torn_writes + b.faults_short_reads;
    assert!(injected > 0, "the storm never fired");
    assert!(b.retries > 0, "a 32/256 storm must force retries");
}
