//! Expelliarmus repository invariants (DESIGN.md §8): master-graph
//! consistency, base-image uniqueness, replacement garbage collection and
//! failure injection.

use expelliarmus::core::PublishMode;
use expelliarmus::prelude::*;

#[test]
fn one_master_per_base_and_all_compatible() {
    let world = World::small();
    let repo = ExpelliarmusRepo::new(world.env());
    for name in world.image_names() {
        repo.publish(&world.catalog, &world.build_image(name))
            .unwrap();
        repo.check_invariants()
            .expect("invariants after every publish");
    }
    // All images share one attribute quadruple → exactly one base/master.
    assert_eq!(repo.base_count(), 1);
    let masters = repo.masters();
    let master = masters.first().unwrap();
    assert_eq!(master.members.len(), world.image_names().len());
}

#[test]
fn no_duplicate_base_for_same_quadruple() {
    let world = World::small();
    let repo = ExpelliarmusRepo::new(world.env());
    // Publishing the same image set twice must not create extra bases.
    for _ in 0..2 {
        for name in world.image_names() {
            repo.publish(&world.catalog, &world.build_image(name))
                .unwrap();
        }
    }
    assert_eq!(repo.base_count(), 1, "base image stored exactly once");
}

#[test]
fn repo_growth_is_package_bound_after_first_base() {
    let world = World::small();
    let repo = ExpelliarmusRepo::new(world.env());
    repo.publish(&world.catalog, &world.build_image("mini"))
        .unwrap();
    let base_size = repo.repo_bytes();
    for name in ["redis", "nginx", "lamp"] {
        let vmi = world.build_image(name);
        let before = repo.repo_bytes();
        repo.publish(&world.catalog, &vmi).unwrap();
        let grew = repo.repo_bytes() - before;
        // Growth bounded by the image's primary payload (deb-sized), far
        // below the disk size.
        assert!(
            grew < vmi.disk_bytes() / 3,
            "{name}: grew {grew} vs disk {}",
            vmi.disk_bytes()
        );
    }
    assert!(repo.repo_bytes() < base_size * 2);
}

#[test]
fn semantic_mode_same_storage_more_time() {
    let world = World::small();
    let aware = ExpelliarmusRepo::new(world.env());
    let naive = ExpelliarmusRepo::with_mode(world.env(), PublishMode::SemanticDecomposition);
    let mut aware_total = 0.0;
    let mut naive_total = 0.0;
    for name in world.image_names() {
        let vmi = world.build_image(name);
        aware_total += aware
            .publish(&world.catalog, &vmi)
            .unwrap()
            .duration
            .as_secs_f64();
        naive_total += naive
            .publish(&world.catalog, &vmi)
            .unwrap()
            .duration
            .as_secs_f64();
    }
    assert!(
        naive_total > aware_total,
        "variant {naive_total} must cost more than similarity-aware {aware_total}"
    );
    // Figure 3 storage identical: the CAS dedups rebuilt packages.
    let ratio = aware.repo_bytes() as f64 / naive.repo_bytes() as f64;
    assert!(
        (0.95..1.05).contains(&ratio),
        "storage should match: {ratio}"
    );
}

#[test]
fn retrieval_phases_are_ordered_like_fig5a() {
    let world = World::small();
    let repo = ExpelliarmusRepo::new(world.env());
    let lamp = world.build_image("lamp");
    repo.publish(&world.catalog, &lamp).unwrap();
    let (_vmi, report) = repo
        .retrieve(
            &world.catalog,
            &RetrieveRequest::for_image(&lamp, &world.catalog),
        )
        .unwrap();
    let copy = report.breakdown.get("Base image copy");
    let handle = report.breakdown.get("Libguestfs handler creation");
    let reset = report.breakdown.get("VMI reset");
    // Fig 5a: the first three phases are in the same band for every image.
    let s = |d: expelliarmus::simio::SimDuration| d.as_secs_f64();
    assert!((s(copy) - s(handle)).abs() < 10.0);
    assert!((s(handle) - s(reset)).abs() < 2.0);
    assert_eq!(
        report.breakdown.total().as_nanos(),
        report.duration.as_nanos(),
        "phases partition the retrieval time"
    );
}

#[test]
fn similarity_column_shape() {
    // First image similarity 0; a near-duplicate scores near 1.
    let world = World::small();
    let repo = ExpelliarmusRepo::new(world.env());
    let first = repo
        .publish(&world.catalog, &world.build_image("redis"))
        .unwrap();
    assert_eq!(first.similarity, 0.0);
    let again = repo
        .publish(&world.catalog, &world.build_image("redis"))
        .unwrap();
    assert!(
        again.similarity > 0.95,
        "duplicate similarity {}",
        again.similarity
    );
}

#[test]
fn functional_assembly_combines_repositories_packages() {
    let world = World::small();
    let repo = ExpelliarmusRepo::new(world.env());
    repo.publish(&world.catalog, &world.build_image("redis"))
        .unwrap();
    repo.publish(&world.catalog, &world.build_image("lamp"))
        .unwrap();
    let request = RetrieveRequest {
        name: "composite".into(),
        base: world.template.attrs.clone(),
        primary: vec!["redis-server".into(), "apache2".into(), "php7.0".into()],
        user_data: vec![],
    };
    let (vmi, _) = repo.retrieve(&world.catalog, &request).unwrap();
    for pkg in ["redis-server", "apache2", "php7.0"] {
        assert!(
            vmi.pkgdb.is_installed(expelliarmus::util::IStr::new(pkg)),
            "{pkg} missing from composite image"
        );
    }
}
