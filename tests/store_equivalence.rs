//! Cross-store integration tests: every store must round-trip images with
//! functional equality, and the storage hierarchy of Figure 3 must hold.

use expelliarmus::prelude::*;
use expelliarmus::store::{full_fingerprint, semantic_fingerprint, StoreError};

fn all_stores(world: &World) -> Vec<Box<dyn ImageStore>> {
    vec![
        Box::new(QcowStore::new(world.env())),
        Box::new(GzipStore::new(world.env())),
        Box::new(MirageStore::new(world.env())),
        Box::new(HemeraStore::new(world.env())),
        Box::new(ExpelliarmusRepo::new(world.env())),
        Box::new(FixedBlockDedupStore::new(world.env(), 256)),
        Box::new(CdcDedupStore::new(world.env(), 512)),
    ]
}

#[test]
fn every_store_roundtrips_every_image() {
    let world = World::small();
    for store in all_stores(&world) {
        for name in world.image_names() {
            let vmi = world.build_image(name);
            store
                .publish(&world.catalog, &vmi)
                .unwrap_or_else(|e| panic!("{}: publish {name}: {e}", store.name()));
            let req = RetrieveRequest::for_image(&vmi, &world.catalog);
            let (got, report) = store
                .retrieve(&world.catalog, &req)
                .unwrap_or_else(|e| panic!("{}: retrieve {name}: {e}", store.name()));
            assert_eq!(
                got.installed_package_set(&world.catalog),
                vmi.installed_package_set(&world.catalog),
                "{}: package set mismatch for {name}",
                store.name()
            );
            assert_eq!(
                got.user_data_bytes(),
                vmi.user_data_bytes(),
                "{}: user data mismatch for {name}",
                store.name()
            );
            assert!(
                report.duration.as_nanos() > 0,
                "{}: zero-cost retrieve",
                store.name()
            );
        }
    }
}

#[test]
fn storage_hierarchy_matches_figure3() {
    let world = World::small();
    let qcow = QcowStore::new(world.env());
    let gzip = GzipStore::new(world.env());
    let mirage = MirageStore::new(world.env());
    let hemera = HemeraStore::new(world.env());
    let xpl = ExpelliarmusRepo::new(world.env());
    for name in world.image_names() {
        let vmi = world.build_image(name);
        qcow.publish(&world.catalog, &vmi).unwrap();
        gzip.publish(&world.catalog, &vmi).unwrap();
        mirage.publish(&world.catalog, &vmi).unwrap();
        hemera.publish(&world.catalog, &vmi).unwrap();
        xpl.publish(&world.catalog, &vmi).unwrap();
    }
    let (q, g, m, h, x) = (
        qcow.repo_bytes(),
        gzip.repo_bytes(),
        mirage.repo_bytes(),
        hemera.repo_bytes(),
        xpl.repo_bytes(),
    );
    // Figure 3's ordering at scale: Expelliarmus < Mirage ≈ Hemera < Qcow2,
    // gzip between dedup stores and raw.
    assert!(x < m, "Expelliarmus {x} must beat Mirage {m}");
    assert!(m < q && h < q && g < q, "every scheme beats raw qcow2");
    let ratio = (h as f64) / (m as f64);
    assert!(
        (0.7..1.4).contains(&ratio),
        "Mirage {m} vs Hemera {h} should be close"
    );
}

#[test]
fn monolithic_stores_cannot_serve_unknown_images() {
    let world = World::small();
    let vmi = world.build_image("redis");
    for store in all_stores(&world) {
        store.publish(&world.catalog, &vmi).unwrap();
        let req = RetrieveRequest {
            name: "never-published".into(),
            base: vmi.base.clone(),
            primary: vec!["redis-server".into()],
            user_data: vec![],
        };
        let result = store.retrieve(&world.catalog, &req);
        if store.name() == "Expelliarmus" {
            // The semantic store assembles it from parts.
            assert!(result.is_ok(), "Expelliarmus should assemble from parts");
        } else {
            assert!(
                matches!(result, Err(StoreError::NotFound(_))),
                "{} should not find an unpublished image",
                store.name()
            );
        }
    }
}

#[test]
fn repeated_publish_is_idempotent_for_dedup_stores() {
    let world = World::small();
    let vmi = world.build_image("lamp");
    for store in all_stores(&world) {
        store.publish(&world.catalog, &vmi).unwrap();
        let size1 = store.repo_bytes();
        store.publish(&world.catalog, &vmi).unwrap();
        let size2 = store.repo_bytes();
        let grew = size2.saturating_sub(size1);
        match store.name() {
            // Monolithic stores replace the entry by name: no growth.
            "Qcow2" | "Qcow2+Gzip" => assert!(grew <= size1 / 100, "{}: grew {grew}", store.name()),
            // Dedup stores add at most metadata.
            _ => assert!(
                grew < size1 / 20,
                "{}: republish grew {grew} of {size1}",
                store.name()
            ),
        }
    }
}

#[test]
fn every_store_agrees_differentially_on_every_image() {
    // The churn oracle's core equality, applied exhaustively to the small
    // world across ALL stores (the five evaluated systems plus both
    // block-dedup baselines): every retrieval of the same image must have
    // the same semantic fingerprint, and snapshot stores must reproduce
    // the exact full fingerprint of what was published.
    let world = World::small();
    let stores = all_stores(&world);
    for name in world.image_names() {
        let vmi = world.build_image(name);
        let want_semantic = semantic_fingerprint(&world.catalog, &vmi);
        let want_full = full_fingerprint(&world.catalog, &vmi);
        let req = RetrieveRequest::for_image(&vmi, &world.catalog);
        for store in stores.iter() {
            store.publish(&world.catalog, &vmi).unwrap();
            let (got, _) = store.retrieve(&world.catalog, &req).unwrap();
            assert_eq!(
                semantic_fingerprint(&world.catalog, &got),
                want_semantic,
                "{}: semantic fingerprint diverged for {name}",
                store.name()
            );
            if store.name() != "Expelliarmus" {
                assert_eq!(
                    full_fingerprint(&world.catalog, &got),
                    want_full,
                    "{}: full fingerprint diverged for {name}",
                    store.name()
                );
            }
            store
                .check_integrity()
                .unwrap_or_else(|e| panic!("{} integrity: {e}", store.name()));
        }
    }
}

#[test]
fn delete_frees_only_the_deleted_image() {
    // Publish three images everywhere, delete the middle one: the other
    // two must stay retrievable and every refcount audit must stay clean.
    let world = World::small();
    for store in all_stores(&world) {
        for name in ["mini", "redis", "lamp"] {
            store
                .publish(&world.catalog, &world.build_image(name))
                .unwrap();
        }
        let before = store.repo_bytes();
        let report = store.delete("redis").unwrap();
        assert_eq!(report.image, "redis");
        assert_eq!(
            store.repo_bytes(),
            before - report.bytes_freed,
            "{}: delete accounting",
            store.name()
        );
        store
            .check_integrity()
            .unwrap_or_else(|e| panic!("{} integrity after delete: {e}", store.name()));
        // Survivors still round-trip.
        for name in ["mini", "lamp"] {
            let vmi = world.build_image(name);
            let req = RetrieveRequest::for_image(&vmi, &world.catalog);
            let (got, _) = store
                .retrieve(&world.catalog, &req)
                .unwrap_or_else(|e| panic!("{}: {name} after delete: {e}", store.name()));
            assert_eq!(
                semantic_fingerprint(&world.catalog, &got),
                semantic_fingerprint(&world.catalog, &vmi),
                "{}: {name} corrupted by deleting redis",
                store.name()
            );
        }
        // The deleted name is gone from monolithic stores; deleting it
        // again is an error everywhere.
        assert!(matches!(
            store.delete("redis"),
            Err(StoreError::NotFound(_))
        ));
        assert!(matches!(
            store.delete("never-there"),
            Err(StoreError::NotFound(_))
        ));
    }
}

#[test]
fn publish_reports_are_consistent() {
    let world = World::small();
    for store in all_stores(&world) {
        let vmi = world.build_image("nginx");
        let report = store.publish(&world.catalog, &vmi).unwrap();
        assert_eq!(report.image, "nginx");
        assert!(report.duration.as_nanos() > 0);
        assert!(
            report.breakdown.total() <= report.duration,
            "{}: breakdown {} exceeds duration {}",
            store.name(),
            report.breakdown.total(),
            report.duration
        );
    }
}
