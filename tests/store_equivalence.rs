//! Cross-store integration tests: every store must round-trip images with
//! functional equality, and the storage hierarchy of Figure 3 must hold.

use expelliarmus::prelude::*;
use expelliarmus::store::StoreError;

fn all_stores(world: &World) -> Vec<Box<dyn ImageStore>> {
    vec![
        Box::new(QcowStore::new(world.env())),
        Box::new(GzipStore::new(world.env())),
        Box::new(MirageStore::new(world.env())),
        Box::new(HemeraStore::new(world.env())),
        Box::new(ExpelliarmusRepo::new(world.env())),
        Box::new(FixedBlockDedupStore::new(world.env(), 256)),
        Box::new(CdcDedupStore::new(world.env(), 512)),
    ]
}

#[test]
fn every_store_roundtrips_every_image() {
    let world = World::small();
    for mut store in all_stores(&world) {
        for name in world.image_names() {
            let vmi = world.build_image(name);
            store
                .publish(&world.catalog, &vmi)
                .unwrap_or_else(|e| panic!("{}: publish {name}: {e}", store.name()));
            let req = RetrieveRequest::for_image(&vmi, &world.catalog);
            let (got, report) = store
                .retrieve(&world.catalog, &req)
                .unwrap_or_else(|e| panic!("{}: retrieve {name}: {e}", store.name()));
            assert_eq!(
                got.installed_package_set(&world.catalog),
                vmi.installed_package_set(&world.catalog),
                "{}: package set mismatch for {name}",
                store.name()
            );
            assert_eq!(
                got.user_data_bytes(),
                vmi.user_data_bytes(),
                "{}: user data mismatch for {name}",
                store.name()
            );
            assert!(
                report.duration.as_nanos() > 0,
                "{}: zero-cost retrieve",
                store.name()
            );
        }
    }
}

#[test]
fn storage_hierarchy_matches_figure3() {
    let world = World::small();
    let mut qcow = QcowStore::new(world.env());
    let mut gzip = GzipStore::new(world.env());
    let mut mirage = MirageStore::new(world.env());
    let mut hemera = HemeraStore::new(world.env());
    let mut xpl = ExpelliarmusRepo::new(world.env());
    for name in world.image_names() {
        let vmi = world.build_image(name);
        qcow.publish(&world.catalog, &vmi).unwrap();
        gzip.publish(&world.catalog, &vmi).unwrap();
        mirage.publish(&world.catalog, &vmi).unwrap();
        hemera.publish(&world.catalog, &vmi).unwrap();
        xpl.publish(&world.catalog, &vmi).unwrap();
    }
    let (q, g, m, h, x) = (
        qcow.repo_bytes(),
        gzip.repo_bytes(),
        mirage.repo_bytes(),
        hemera.repo_bytes(),
        xpl.repo_bytes(),
    );
    // Figure 3's ordering at scale: Expelliarmus < Mirage ≈ Hemera < Qcow2,
    // gzip between dedup stores and raw.
    assert!(x < m, "Expelliarmus {x} must beat Mirage {m}");
    assert!(m < q && h < q && g < q, "every scheme beats raw qcow2");
    let ratio = (h as f64) / (m as f64);
    assert!(
        (0.7..1.4).contains(&ratio),
        "Mirage {m} vs Hemera {h} should be close"
    );
}

#[test]
fn monolithic_stores_cannot_serve_unknown_images() {
    let world = World::small();
    let vmi = world.build_image("redis");
    for mut store in all_stores(&world) {
        store.publish(&world.catalog, &vmi).unwrap();
        let req = RetrieveRequest {
            name: "never-published".into(),
            base: vmi.base.clone(),
            primary: vec!["redis-server".into()],
            user_data: vec![],
        };
        let result = store.retrieve(&world.catalog, &req);
        if store.name() == "Expelliarmus" {
            // The semantic store assembles it from parts.
            assert!(result.is_ok(), "Expelliarmus should assemble from parts");
        } else {
            assert!(
                matches!(result, Err(StoreError::NotFound(_))),
                "{} should not find an unpublished image",
                store.name()
            );
        }
    }
}

#[test]
fn repeated_publish_is_idempotent_for_dedup_stores() {
    let world = World::small();
    let vmi = world.build_image("lamp");
    for mut store in all_stores(&world) {
        store.publish(&world.catalog, &vmi).unwrap();
        let size1 = store.repo_bytes();
        store.publish(&world.catalog, &vmi).unwrap();
        let size2 = store.repo_bytes();
        let grew = size2.saturating_sub(size1);
        match store.name() {
            // Monolithic stores replace the entry by name: no growth.
            "Qcow2" | "Qcow2+Gzip" => assert!(grew <= size1 / 100, "{}: grew {grew}", store.name()),
            // Dedup stores add at most metadata.
            _ => assert!(
                grew < size1 / 20,
                "{}: republish grew {grew} of {size1}",
                store.name()
            ),
        }
    }
}

#[test]
fn publish_reports_are_consistent() {
    let world = World::small();
    for mut store in all_stores(&world) {
        let vmi = world.build_image("nginx");
        let report = store.publish(&world.catalog, &vmi).unwrap();
        assert_eq!(report.image, "nginx");
        assert!(report.duration.as_nanos() > 0);
        assert!(
            report.breakdown.total() <= report.duration,
            "{}: breakdown {} exceeds duration {}",
            store.name(),
            report.breakdown.total(),
            report.duration
        );
    }
}
