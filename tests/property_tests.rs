//! Property-based tests over the core substrates (DESIGN.md §8).

use proptest::prelude::*;

// ---------------------------------------------------------------- compress

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deflate_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let compressed = expelliarmus::compress::deflate(&data);
        let back = expelliarmus::compress::inflate(&compressed).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn gzip_roundtrip_with_repetition(
        seed in any::<u64>(),
        len in 0usize..30_000,
        period in 1usize..512,
    ) {
        // Periodic data stresses the LZ77 matcher.
        let mut rng = expelliarmus::util::SplitMix64::new(seed);
        let pattern: Vec<u8> = (0..period).map(|_| rng.next_u64() as u8).collect();
        let data: Vec<u8> = (0..len).map(|i| pattern[i % period]).collect();
        let c = expelliarmus::compress::gzip_compress(&data);
        prop_assert_eq!(expelliarmus::compress::gzip_decompress(&c).unwrap(), data);
    }
}

// ---------------------------------------------------------------- chunking

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunks_reassemble_exactly(
        data in proptest::collection::vec(any::<u8>(), 0..50_000),
        avg_pow in 8u32..13,
    ) {
        use expelliarmus::chunking::rabin::{chunk_cdc, CdcParams};
        let spans = chunk_cdc(&data, CdcParams::with_avg(1 << avg_pow));
        prop_assert!(expelliarmus::chunking::spans_cover(&spans, data.len()));
        let mut rebuilt = Vec::with_capacity(data.len());
        for s in &spans {
            rebuilt.extend_from_slice(&data[s.offset..s.offset + s.len]);
        }
        prop_assert_eq!(rebuilt, data);
    }

    #[test]
    fn fixed_chunks_reassemble(
        data in proptest::collection::vec(any::<u8>(), 0..20_000),
        block in 1usize..5_000,
    ) {
        let spans = expelliarmus::chunking::fixed::chunk_fixed(&data, block);
        prop_assert!(expelliarmus::chunking::spans_cover(&spans, data.len()));
    }
}

// ------------------------------------------------------------------- pkg

fn version_strategy() -> impl Strategy<Value = String> {
    (
        0u32..3,
        proptest::collection::vec(0u32..40, 1..4),
        proptest::option::of("[a-z]{1,3}[0-9]{0,2}"),
    )
        .prop_map(|(epoch, parts, suffix)| {
            let nums: Vec<String> = parts.iter().map(u32::to_string).collect();
            let mut v = String::new();
            if epoch > 0 {
                v.push_str(&format!("{epoch}:"));
            }
            v.push_str(&nums.join("."));
            if let Some(s) = suffix {
                v.push('~');
                v.push_str(&s);
            }
            v
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn version_ordering_is_total_and_consistent(
        a in version_strategy(),
        b in version_strategy(),
        c in version_strategy(),
    ) {
        use expelliarmus::pkg::Version;
        use std::cmp::Ordering;
        let (va, vb, vc) = (Version::parse(&a), Version::parse(&b), Version::parse(&c));
        // Antisymmetry.
        prop_assert_eq!(va.cmp(&vb), vb.cmp(&va).reverse());
        // Reflexivity.
        prop_assert_eq!(va.cmp(&va), Ordering::Equal);
        // Transitivity (spot form): if a<=b and b<=c then a<=c.
        if va <= vb && vb <= vc {
            prop_assert!(va <= vc, "{} <= {} <= {} but not {} <= {}", va, vb, vc, va, vc);
        }
    }

    #[test]
    fn version_bump_is_strictly_greater(v in version_strategy(), by in 1u32..5) {
        use expelliarmus::pkg::Version;
        let base = Version::parse(&v);
        prop_assert!(base.bumped(by) > base);
    }

    #[test]
    fn version_display_parse_roundtrip(v in version_strategy()) {
        use expelliarmus::pkg::Version;
        let parsed = Version::parse(&v);
        let reparsed = Version::parse(&parsed.to_string());
        prop_assert_eq!(parsed, reparsed);
    }
}

// ------------------------------------------------------------------- util

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sha256_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..4_096),
        splits in proptest::collection::vec(any::<prop::sample::Index>(), 0..5),
    ) {
        use expelliarmus::util::Sha256;
        let oneshot = Sha256::digest(&data);
        let mut points: Vec<usize> = splits.iter().map(|i| i.index(data.len() + 1)).collect();
        points.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for p in points {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let encoded = expelliarmus::util::hex::encode(&data);
        prop_assert_eq!(expelliarmus::util::hex::decode(&encoded).unwrap(), data);
    }

    #[test]
    fn content_generation_deterministic(seed in any::<u64>(), len in 0usize..4_096) {
        let a = expelliarmus::pkg::content::generate(seed, len);
        let b = expelliarmus::pkg::content::generate(seed, len);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), len);
    }
}

// ------------------------------------------------------------------ vdisk

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn qcow_write_read_consistency(
        writes in proptest::collection::vec(
            (0u64..40_000, proptest::collection::vec(any::<u8>(), 1..600)),
            1..12,
        ),
    ) {
        use expelliarmus::vdisk::QcowImage;
        let mut img = QcowImage::create("prop", 50_000);
        let mut shadow = vec![0u8; 50_000];
        for (offset, data) in &writes {
            img.write_at(*offset, data).unwrap();
            shadow[*offset as usize..*offset as usize + data.len()].copy_from_slice(data);
        }
        // Serialized roundtrip preserves every byte.
        let restored = QcowImage::deserialize(&img.serialize()).unwrap();
        let all = restored.read_at(0, 50_000).unwrap();
        prop_assert_eq!(all, shadow);
    }
}

// ------------------------------------------------------------------ metadb

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn metadb_rollback_restores_state(
        keep in proptest::collection::vec("[a-z]{1,8}", 1..6),
        tx in proptest::collection::vec("[a-z]{1,8}", 1..6),
    ) {
        use expelliarmus::metadb::{ColumnDef, Database, Schema, Value};
        let mut db = Database::new();
        db.create_table(Schema::new("t", vec![ColumnDef::indexed("k")])).unwrap();
        let mut kept = Vec::new();
        for k in &keep {
            kept.push(db.insert("t", vec![Value::from(k.as_str())]).unwrap());
        }
        db.begin();
        let mut tx_ids = Vec::new();
        for k in &tx {
            tx_ids.push(db.insert("t", vec![Value::from(k.as_str())]).unwrap());
        }
        for id in &kept {
            db.delete("t", *id).unwrap();
        }
        db.rollback().unwrap();
        // Semantic equality: kept rows restored with their values, tx rows
        // gone, indexes consistent. (`next_id` deliberately never rolls
        // back — row ids are not reused, like SQLite AUTOINCREMENT.)
        for (id, k) in kept.iter().zip(&keep) {
            let row = db.get("t", *id).unwrap();
            prop_assert_eq!(row, Some(vec![Value::from(k.as_str())]));
            prop_assert!(db.find_by("t", "k", &Value::from(k.as_str())).unwrap().contains(id));
        }
        for id in &tx_ids {
            prop_assert_eq!(db.get("t", *id).unwrap(), None);
        }
    }
}
