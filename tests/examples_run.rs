//! Compile AND execute every `examples/*.rs` as part of `cargo test`, so
//! the examples can never silently rot: each example's source is included
//! into this integration test and its `main` is invoked.
//!
//! (`cargo run --example …` would exercise the same code but requires
//! spawning cargo from inside the test; including the sources keeps the
//! check hermetic and parallel-friendly. CI additionally runs the two
//! headline examples through `cargo run` for the true end-to-end path.)

macro_rules! example {
    ($name:ident) => {
        mod $name {
            // Examples are written as standalone bins; their `main` is
            // dead code from the harness's perspective until we call it.
            #![allow(dead_code)]
            include!(concat!("../examples/", stringify!($name), ".rs"));

            #[test]
            fn runs_to_completion() {
                main();
            }
        }
    };
}

example!(quickstart);
example!(cloud_repository);
example!(semantic_similarity);
example!(successive_builds);
