//! The standing churn acceptance suite: a ≥500-op lifecycle trace
//! (publishes, retrieval bursts, upgrade-republishes, deletes) replayed
//! against all five stores in lockstep must pass the differential
//! oracle, and the whole pipeline must be bit-reproducible from its
//! seed.

use expelliarmus::bench::churn::{churn_trace, run_churn, run_churn_threads, ChurnConfig};
use expelliarmus::prelude::*;
use expelliarmus::workloads::TraceOp;

const SEED: u64 = 0xC0FFEE;

#[test]
fn five_hundred_op_trace_passes_the_oracle_on_all_five_stores() {
    let report = run_churn(&ChurnConfig::small(SEED, 520));
    assert!(
        report.violations.is_empty(),
        "oracle violations:\n{}",
        report.violations.join("\n")
    );
    assert_eq!(report.ops, 520);
    // The trace must actually exercise every lifecycle path.
    assert!(report.publishes > 0, "no publishes");
    assert!(report.retrieves > 0, "no retrieves");
    assert!(report.range_retrieves > 0, "no range retrievals");
    assert!(report.upgrades > 0, "no upgrade-republishes");
    assert!(report.deletes > 0, "no deletes");
    assert!(report.bursts > 0 && report.burst_retrieves > report.bursts);
    assert_eq!(report.stores.len(), 5, "all five stores replayed");
    // Dedup hierarchy survives churn: the semantic store stays smallest,
    // raw qcow2 largest (Figure 3's ordering, now under a live workload).
    let bytes = |name: &str| {
        report
            .stores
            .iter()
            .find(|s| s.store == name)
            .unwrap_or_else(|| panic!("missing store {name}"))
            .final_repo_bytes
    };
    assert!(bytes("Expelliarmus") < bytes("Mirage"));
    assert!(bytes("Mirage") < bytes("Qcow2"));
    assert!(bytes("Hemera") < bytes("Qcow2"));
}

#[test]
fn same_seed_reproduces_trace_and_report_byte_identically() {
    let cfg = ChurnConfig::small(SEED, 250);
    let (_, t1) = churn_trace(&cfg);
    let (_, t2) = churn_trace(&cfg);
    assert_eq!(t1.render(), t2.render(), "trace must be byte-identical");

    let a = run_churn(&cfg);
    let b = run_churn(&cfg);
    let ja = serde_json::to_string_pretty(&a).unwrap();
    let jb = serde_json::to_string_pretty(&b).unwrap();
    assert_eq!(ja, jb, "replay reports must be byte-identical");
    assert!(a.violations.is_empty(), "{:?}", a.violations);
}

#[test]
fn concurrent_replay_is_byte_identical_across_thread_counts() {
    // The acceptance pin for the shared-access refactor: the concurrent
    // driver's oracle report — ledgers, totals, simulated seconds,
    // violation list, check counts — must not depend on the worker-pool
    // size. 1 thread is the degenerate sequential schedule; 2 and 8
    // exercise real interleavings of the per-image retrieval groups and
    // the five store replicas. The replay runs under the default mixed
    // codec tier, so the pin also covers mid-trace recompression sweeps
    // over mixed-codec CAS states.
    let cfg = ChurnConfig::small(SEED, 200);
    let one = serde_json::to_string_pretty(&run_churn_threads(&cfg, 1)).unwrap();
    let two = serde_json::to_string_pretty(&run_churn_threads(&cfg, 2)).unwrap();
    let eight = serde_json::to_string_pretty(&run_churn_threads(&cfg, 8)).unwrap();
    assert_eq!(one, two, "2-thread replay diverged from 1-thread");
    assert_eq!(one, eight, "8-thread replay diverged from 1-thread");
    let report = run_churn_threads(&cfg, 8);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.retrieves > 0 && report.publishes > 0 && report.deletes > 0);
    assert_eq!(report.tier, "mixed");
    assert!(report.maintains > 0, "no recompression sweeps in the trace");
}

#[test]
fn deleting_everything_returns_dedup_stores_to_metadata_only() {
    // Drain scenario: publish a handful of images into every store, then
    // delete them all. Content-addressed stores must free all payload
    // bytes (Expelliarmus keeps only its stored base + metadata).
    let world = World::small();
    let stores: Vec<Box<dyn ImageStore>> = vec![
        Box::new(QcowStore::new(world.env())),
        Box::new(GzipStore::new(world.env())),
        Box::new(MirageStore::new(world.env())),
        Box::new(HemeraStore::new(world.env())),
        Box::new(FixedBlockDedupStore::new(world.env(), 256)),
        Box::new(CdcDedupStore::new(world.env(), 512)),
    ];
    for store in stores.iter() {
        for name in world.image_names() {
            let vmi = world.build_image(name);
            store.publish(&world.catalog, &vmi).unwrap();
        }
        for name in world.image_names() {
            store.delete(name).unwrap();
            store
                .check_integrity()
                .unwrap_or_else(|e| panic!("{} after delete {name}: {e}", store.name()));
        }
        assert_eq!(
            store.repo_bytes(),
            0,
            "{} must be empty after deleting everything",
            store.name()
        );
    }

    // Expelliarmus: payload stores drain; the consolidated base remains.
    let repo = ExpelliarmusRepo::new(world.env());
    for name in world.image_names() {
        repo.publish(&world.catalog, &world.build_image(name))
            .unwrap();
    }
    let with_images = repo.repo_bytes();
    for name in world.image_names() {
        repo.delete(name).unwrap();
        repo.check_integrity()
            .unwrap_or_else(|e| panic!("Expelliarmus after delete {name}: {e}"));
    }
    assert_eq!(repo.package_count(), 0, "all package blobs released");
    assert_eq!(repo.base_count(), 1, "the shared base survives deletes");
    assert!(repo.repo_bytes() < with_images, "payload was freed");
    // Deleted names are gone even for the semantic store when their
    // packages had no other referents.
    let lamp = world.build_image("lamp");
    let req = RetrieveRequest::for_image(&lamp, &world.catalog);
    assert!(matches!(
        repo.retrieve(&world.catalog, &req),
        Err(expelliarmus::store::StoreError::NotFound(_))
    ));
}

#[test]
fn pinned_seed_trace_exercises_every_lifecycle_path() {
    // Guards the generator against drift that would quietly stop
    // covering a path: the CI replay uses a seed of this same generator,
    // so its coverage properties are part of the contract.
    let cfg = ChurnConfig::small(SEED, 520);
    let (world, trace) = churn_trace(&cfg);
    let (p, r, u, d, b) = trace.mix();
    assert_eq!(p + r + u + d + b + trace.maintains(), 520);
    assert!(
        p > 20 && r > 100 && u > 20 && d > 10 && b > 10,
        "{:?}",
        (p, r, u, d, b)
    );
    assert!(trace.maintains() > 5, "tier sweeps must recur in the trace");
    // Re-publish after delete (generation > 0 publishes) must occur.
    assert!(
        trace
            .ops
            .iter()
            .any(|op| matches!(op, TraceOp::Publish { generation, .. } if *generation > 0)),
        "trace never resurrects a deleted image"
    );
    // The world is genuinely beyond the paper's scale.
    assert!(world.image_names().len() > 19);
    assert_ne!(
        trace.digest_hex(),
        churn_trace(&ChurnConfig::small(SEED + 1, 520))
            .1
            .digest_hex(),
        "different seeds must not collide"
    );
}
