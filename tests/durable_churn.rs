//! Durable churn acceptance suite: the crash-recovery replay must be
//! thread-count invariant and converge to the in-memory oracle.
//!
//! A lifecycle trace with 3 injected crash-recovery pairs is replayed
//! with Expelliarmus and Mirage running over `xpl-persist` durable
//! backends. The pinned properties:
//!
//! 1. the oracle reports **zero violations** — every recovery (WAL
//!    replay over the manifest, torn tails dropped) converged to the
//!    uncrashed in-memory state, with all recovered content
//!    re-validated;
//! 2. the serialized report is **byte-identical at 1, 2 and 8
//!    threads** (all durable work rides the replica-serial mutation
//!    stream);
//! 3. the end-of-replay CAS fingerprints equal the purely in-memory
//!    replay's — durability changes nothing about the logical state.

use expelliarmus::bench::churn::{run_churn, run_churn_threads, ChurnConfig, DurableCfg};

const SEED: u64 = 0xD17A;
const OPS: usize = 300;

fn durable_cfg() -> ChurnConfig {
    ChurnConfig::small(SEED, OPS).with_durable(DurableCfg {
        crashes: 3,
        crash_seed: 42,
    })
}

#[test]
fn three_crash_trace_is_byte_identical_at_1_2_8_threads() {
    let reports: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let report = run_churn_threads(&durable_cfg(), threads);
            assert!(
                report.violations.is_empty(),
                "violations at {threads} threads:\n{}",
                report.violations.join("\n")
            );
            assert_eq!(report.crashes, 3);
            serde_json::to_string_pretty(&report).expect("serialize")
        })
        .collect();
    assert_eq!(reports[0], reports[1], "1 vs 2 threads diverged");
    assert_eq!(reports[0], reports[2], "1 vs 8 threads diverged");
}

#[test]
fn durable_replay_converges_to_the_in_memory_oracle() {
    let durable = run_churn(&durable_cfg());
    assert!(
        durable.violations.is_empty(),
        "violations:\n{}",
        durable.violations.join("\n")
    );
    let mem = run_churn(&ChurnConfig::small(SEED, OPS));
    assert!(mem.violations.is_empty());

    // Same logical end state: store summaries and CAS fingerprints.
    assert_eq!(durable.stores.len(), mem.stores.len());
    for (a, b) in durable.stores.iter().zip(&mem.stores) {
        assert_eq!(a.store, b.store);
        assert_eq!(a.final_repo_bytes, b.final_repo_bytes, "{}", a.store);
        assert_eq!(a.bytes_added_total, b.bytes_added_total, "{}", a.store);
        assert_eq!(a.bytes_freed_total, b.bytes_freed_total, "{}", a.store);
    }
    assert!(!durable.cas_fingerprints.is_empty());
    assert_eq!(durable.cas_fingerprints.len(), mem.cas_fingerprints.len());
    for (a, b) in durable.cas_fingerprints.iter().zip(&mem.cas_fingerprints) {
        assert_eq!(
            (&a.store, &a.section, &a.fingerprint),
            (&b.store, &b.section, &b.fingerprint),
        );
    }

    // The durable run actually did durable work: 3 injected recoveries
    // plus the closing one, torn tails dropped at each, and a WAL
    // record for every write-through mutation.
    let summaries = durable.durable.expect("durable summaries present");
    assert_eq!(summaries.len(), 2, "Mirage + Expelliarmus ran durable");
    for s in &summaries {
        assert_eq!(s.recoveries, 4, "{}: 3 injected + 1 final", s.store);
        assert!(
            s.torn_tails >= s.recoveries * s.sections as u64,
            "{}: every recovery dropped its torn WAL tails",
            s.store
        );
        assert!(s.wal_appends > 0, "{}", s.store);
        assert!(s.wal_records_replayed > 0, "{}", s.store);
    }
    assert!(
        mem.durable.is_none(),
        "in-memory replay reports no durable leg"
    );
}
