//! Offline stand-in for `serde` (the container cannot reach crates.io).
//!
//! Exposes the same *surface* the workspace uses — `use serde::{Serialize,
//! Deserialize}` plus `#[derive(Serialize, Deserialize)]` with
//! `#[serde(skip)]` — backed by a small in-tree JSON value model instead of
//! serde's visitor architecture. The companion `serde_json` shim provides
//! `to_vec` / `from_slice` / `to_string_pretty` over these traits, so
//! round-trip persistence (metadb) and pretty result dumps (`repro`) work
//! for real. Swapping in the genuine crates later only requires flipping
//! the path dependencies back to registry versions.

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-ish value every [`Serialize`] type lowers to.
///
/// Integers keep a signed/unsigned split so `u64` digests and counters
/// round-trip losslessly (no detour through `f64`).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::UInt(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Error type shared by deserialization and the `serde_json` facade.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError(pub String);

impl JsonError {
    pub fn expected(what: &str, ctx: &str) -> JsonError {
        JsonError(format!("expected {what} while decoding {ctx}"))
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}

/// A type that can lower itself to a [`Json`] value.
pub trait Serialize {
    fn to_json(&self) -> Json;
}

/// A type that can rebuild itself from a [`Json`] value.
pub trait Deserialize: Sized {
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

// Identity impls so callers can (de)serialize into the dynamic value
// itself — the shim equivalent of `serde_json::Value`.
impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

/// Helper used by derived code: fetch + decode one struct field.
pub fn field<T: Deserialize>(
    obj: &[(String, Json)],
    name: &str,
    ctx: &str,
) -> Result<T, JsonError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_json(v),
        None => Err(JsonError(format!("missing field `{name}` in {ctx}"))),
    }
}

// ------------------------------------------------------------------ numbers

fn int_out_of_range(ty: &str) -> JsonError {
    JsonError(format!("integer out of range for {ty}"))
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| int_out_of_range(stringify!($t))),
                    Json::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| int_out_of_range(stringify!($t))),
                    other => Err(JsonError::expected("integer", other.kind())),
                }
            }
        }
    )*};
}
macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| int_out_of_range(stringify!($t))),
                    Json::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| int_out_of_range(stringify!($t))),
                    other => Err(JsonError::expected("integer", other.kind())),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Float(f) => Ok(*f as $t),
                    Json::Int(n) => Ok(*n as $t),
                    Json::UInt(n) => Ok(*n as $t),
                    other => Err(JsonError::expected("number", other.kind())),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

// ------------------------------------------------------------- scalars etc.

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(JsonError::expected("single-char string", other.kind())),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Box::new(T::from_json(v)?))
    }
}

// --------------------------------------------------------------- sequences

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items: Vec<T> = Deserialize::from_json(v)?;
        <[T; N]>::try_from(items).map_err(|_| JsonError(format!("expected array of length {N}")))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$n.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                let items = v
                    .as_arr()
                    .ok_or_else(|| JsonError::expected("array", v.kind()))?;
                if items.len() != LEN {
                    return Err(JsonError(format!(
                        "expected {LEN}-tuple, got array of {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_json(&items[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// -------------------------------------------------------------------- maps

// Maps serialize uniformly as arrays of `[key, value]` pairs so non-string
// keys (e.g. `BTreeMap<Value, …>`) need no special casing; only the in-tree
// `serde_json` consumes this encoding, so object-key compatibility with
// real JSON consumers is not a goal at this stage.
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v
            .as_arr()
            .ok_or_else(|| JsonError::expected("array of pairs", v.kind()))?;
        items.iter().map(<(K, V)>::from_json).collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}
impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v
            .as_arr()
            .ok_or_else(|| JsonError::expected("array of pairs", v.kind()))?;
        items.iter().map(<(K, V)>::from_json).collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v
            .as_arr()
            .ok_or_else(|| JsonError::expected("array", v.kind()))?;
        items.iter().map(T::from_json).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(u64::from_json(&(42u64).to_json()).unwrap(), 42);
        assert_eq!(i64::from_json(&(-7i64).to_json()).unwrap(), -7);
        assert_eq!(
            String::from_json(&"hi".to_string().to_json()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u32>::from_json(&None::<u32>.to_json()).unwrap(),
            None
        );
    }

    #[test]
    fn map_roundtrip_nonstring_keys() {
        let mut m = BTreeMap::new();
        m.insert(3u64, vec![1u8, 2, 3]);
        m.insert(9u64, vec![]);
        let back: BTreeMap<u64, Vec<u8>> = Deserialize::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn large_u64_lossless() {
        let x = u64::MAX - 3;
        assert_eq!(u64::from_json(&x.to_json()).unwrap(), x);
    }
}
