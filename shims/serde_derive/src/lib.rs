//! Derive macros for the in-tree `serde` stand-in.
//!
//! The container has no network access, so `syn`/`quote` are unavailable;
//! this crate parses the derive input by walking `proc_macro::TokenTree`s
//! directly and emits impls as strings. Supported shapes cover everything
//! the workspace derives on: named-field structs (with `#[serde(skip)]`)
//! and enums whose variants are unit or tuple-style.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    arity: usize,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    /// Tuple struct; newtypes (arity 1) serialize transparently like serde.
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consume leading `#[...]` attributes; returns true if any of them is
/// `#[serde(... skip ...)]`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while *pos + 1 < tokens.len() {
        match (&tokens[*pos], &tokens[*pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let body = g.stream().to_string();
                if body.starts_with("serde") && body.contains("skip") {
                    skip = true;
                }
                *pos += 2;
            }
            _ => break,
        }
    }
    skip
}

/// Consume an optional `pub` / `pub(...)` visibility.
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos);
    skip_vis(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct`/`enum`, got {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }

    match (kind.as_str(), &tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Struct {
                name,
                fields: parse_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        },
        (kind, _) => panic!("serde_derive shim: unsupported `{kind}` item `{name}`"),
    }
}

/// Number of fields in a parenthesized tuple-struct/variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let inner: Vec<TokenTree> = body.into_iter().collect();
    if inner.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut depth = 0i32;
    for (i, t) in inner.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            // A trailing comma (`struct X(T,)`) separates nothing.
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && i + 1 < inner.len() => {
                arity += 1
            }
            _ => {}
        }
    }
    arity
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = skip_attrs(&tokens, &mut pos);
        skip_vis(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other}"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive shim: expected `:` after `{name}`, got {other}"),
        }
        // Swallow the type: everything up to the next comma that sits outside
        // angle brackets. `>>` arrives as two separate `>` puncts, so simple
        // depth counting is exact.
        let mut depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other}"),
        };
        pos += 1;
        let mut arity = 0;
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = count_tuple_fields(g.stream());
                pos += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!(
                    "serde_derive shim: struct-style enum variants are not supported (`{name}`)"
                );
            }
            _ => {}
        }
        // Skip an optional `= discriminant` and the trailing comma.
        while pos < tokens.len() {
            if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, arity });
    }
    variants
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                pushes.push_str(&format!(
                    "__obj.push((\"{fname}\".to_string(), ::serde::Serialize::to_json(&self.{fname})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::Json {{\n\
                         let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Json)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Json::Obj(__obj)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                "::serde::Serialize::to_json(&self.0)".to_string()
            } else {
                let fields: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                    .collect();
                format!("::serde::Json::Arr(vec![{}])", fields.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::Json {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vname = &v.name;
                if v.arity == 0 {
                    arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Json::Str(\"{vname}\".to_string()),\n"
                    ));
                } else {
                    let binders: Vec<String> = (0..v.arity).map(|i| format!("__f{i}")).collect();
                    let fields: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_json({b})"))
                        .collect();
                    arms.push_str(&format!(
                        "{name}::{vname}({}) => ::serde::Json::Obj(vec![(\"{vname}\".to_string(), ::serde::Json::Arr(vec![{}]))]),\n",
                        binders.join(", "),
                        fields.join(", ")
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::Json {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive shim: generated Serialize impl does not parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                let fname = &f.name;
                if f.skip {
                    inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
                } else {
                    inits.push_str(&format!(
                        "{fname}: ::serde::field(__obj, \"{fname}\", \"{name}\")?,\n"
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json(__v: &::serde::Json) -> ::std::result::Result<Self, ::serde::JsonError> {{\n\
                         let __obj = __v.as_obj().ok_or_else(|| ::serde::JsonError::expected(\"object\", \"{name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_json(__v)?))")
            } else {
                let args: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Deserialize::from_json(&__arr[{i}])?"))
                    .collect();
                format!(
                    "let __arr = __v.as_arr().ok_or_else(|| ::serde::JsonError::expected(\"array\", \"{name}\"))?;\n\
                     if __arr.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::JsonError::expected(\"{arity}-element array\", \"{name}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({args}))",
                    args = args.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json(__v: &::serde::Json) -> ::std::result::Result<Self, ::serde::JsonError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in &variants {
                let vname = &v.name;
                if v.arity == 0 {
                    unit_arms.push_str(&format!(
                        "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                } else {
                    let args: Vec<String> = (0..v.arity)
                        .map(|i| format!("::serde::Deserialize::from_json(&__arr[{i}])?"))
                        .collect();
                    payload_arms.push_str(&format!(
                        "\"{vname}\" => {{\n\
                             if __arr.len() != {arity} {{\n\
                                 return ::std::result::Result::Err(::serde::JsonError(::std::format!(\n\
                                     \"variant {name}::{vname} expects {arity} fields, got {{}}\", __arr.len())));\n\
                             }}\n\
                             return ::std::result::Result::Ok({name}::{vname}({args}));\n\
                         }}\n",
                        arity = v.arity,
                        args = args.join(", ")
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json(__v: &::serde::Json) -> ::std::result::Result<Self, ::serde::JsonError> {{\n\
                         if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                             match __s {{\n\
                                 {unit_arms}\
                                 _ => return ::std::result::Result::Err(::serde::JsonError(::std::format!(\"unknown variant `{{}}` of {name}\", __s))),\n\
                             }}\n\
                         }}\n\
                         if let ::std::option::Option::Some(__pairs) = __v.as_obj() {{\n\
                             if __pairs.len() == 1 {{\n\
                                 static __EMPTY: &[::serde::Json] = &[];\n\
                                 let __arr = __pairs[0].1.as_arr().unwrap_or(__EMPTY);\n\
                                 match __pairs[0].0.as_str() {{\n\
                                     {payload_arms}\
                                     _ => {{}}\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         ::std::result::Result::Err(::serde::JsonError::expected(\"variant of {name}\", \"value\"))\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive shim: generated Deserialize impl does not parse")
}
