//! Offline stand-in for `criterion` (the container cannot reach crates.io).
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `sample_size`, `criterion_group!`, `criterion_main!` —
//! with honest `Instant`-based timing and a plain-text report instead of
//! criterion's statistical machinery. Good enough to keep the benches
//! compiling, runnable, and ballpark-comparable until the real crate can
//! be vendored.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A parameterized benchmark label, e.g. `from_parameter(65536)`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId {
            label: p.to_string(),
        }
    }

    pub fn new<S: Into<String>, P: Display>(function: S, p: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), p),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the closure given to `bench_function`; `iter` runs and times
/// the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
    sample_count: u32,
}

impl Bencher {
    fn new(sample_count: u32) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup pass.
        black_box(f());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn report(group: &str, name: &str, median: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            let bps = n as f64 / median.as_secs_f64();
            format!("  ({:.1} MiB/s)", bps / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            let eps = n as f64 / median.as_secs_f64();
            format!("  ({eps:.0} elem/s)")
        }
        _ => String::new(),
    };
    println!("bench {group}/{name}: median {median:?}{rate}");
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_count: u32,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = (n as u32).clamp(1, 100);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_count.min(Criterion::MAX_SAMPLES));
        f(&mut b);
        report(&self.name, &id.to_string(), b.median(), self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_count.min(Criterion::MAX_SAMPLES));
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.median(), self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// The shim keeps runs short: a handful of samples, one iter each.
    const MAX_SAMPLES: u32 = 10;

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_count: Self::MAX_SAMPLES,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
