//! Offline stand-in for `serde_json` over the in-tree `serde` shim.
//!
//! Implements the three entry points the workspace uses — [`to_vec`],
//! [`from_slice`], [`to_string_pretty`] — with a real JSON printer and a
//! recursive-descent parser, so metadb persistence round-trips and the
//! `repro` binary's result dumps are genuine JSON documents.

use serde::{Deserialize, Json, JsonError, Serialize};

pub type Error = JsonError;
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out.into_bytes())
}

/// Serialize to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_json(), 0, &mut out);
    Ok(out)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| JsonError(format!("invalid utf-8 in JSON input: {e}")))?;
    from_str(text)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError(format!(
            "trailing garbage at byte {} of JSON input",
            p.pos
        )));
    }
    T::from_json(&v)
}

// ----------------------------------------------------------------- printing

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no NaN/Infinity; degrade to null like serde_json's
        // default float behavior.
        out.push_str("null");
    }
}

fn write_compact(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::UInt(n) => out.push_str(&n.to_string()),
        Json::Float(f) => write_float(*f, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(v: &Json, depth: usize, out: &mut String) {
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(depth, out);
            out.push(']');
        }
        Json::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                indent(depth + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => {
                            return Err(JsonError(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => {
                            return Err(JsonError(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(JsonError(format!(
                "unexpected {:?} at byte {} of JSON input",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| JsonError(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError("unterminated escape in JSON string".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Combine UTF-16 surrogate pairs when present.
                            if (0xd800..0xdc00).contains(&cp)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if (0xdc00..0xe000).contains(&lo) {
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    out.push(char::from_u32(combined).unwrap_or('\u{fffd}'));
                                } else {
                                    // High surrogate not followed by a low
                                    // surrogate: both escapes are lone and
                                    // unrepresentable as chars.
                                    out.push('\u{fffd}');
                                    out.push(char::from_u32(lo).unwrap_or('\u{fffd}'));
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            }
                        }
                        other => {
                            return Err(JsonError(format!(
                                "invalid escape `\\{}` in JSON string",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(JsonError("unterminated JSON string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError("invalid \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| JsonError("invalid \\u escape".into()))
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError(format!("invalid number `{text}` in JSON input")))
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_nested() {
        let mut m: BTreeMap<String, Vec<(u64, String)>> = BTreeMap::new();
        m.insert("a\"b".into(), vec![(u64::MAX, "x\ny".into())]);
        m.insert("empty".into(), vec![]);
        let bytes = super::to_vec(&m).unwrap();
        let back: BTreeMap<String, Vec<(u64, String)>> = super::from_slice(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = vec![(1u32, -2.5f64), (3, 0.0)];
        let text = super::to_string_pretty(&v).unwrap();
        let back: Vec<(u32, f64)> = super::from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_unicode_escapes() {
        let s: String = super::from_str(r#""aé😀b""#).unwrap();
        assert_eq!(s, "aé😀b");
    }

    #[test]
    fn surrogate_pair_and_lone_surrogate() {
        // A valid escaped surrogate pair combines to one astral char.
        let s: String = super::from_str(r#""😀""#).unwrap();
        assert_eq!(s, "😀");
        // High surrogate + non-low-surrogate escape takes the paired-escape
        // branch and must degrade to U+FFFD + the second escape, not panic.
        let s: String = super::from_str(r#""\ud800\u0041""#).unwrap();
        assert_eq!(s, "\u{fffd}A");
        // High surrogate followed by a literal char.
        let s: String = super::from_str(r#""\ud800x""#).unwrap();
        assert_eq!(s, "\u{fffd}x");
    }

    #[test]
    fn out_of_range_int_is_error_not_wraparound() {
        assert!(super::from_str::<u64>("-1").is_err());
        assert!(super::from_str::<u8>("300").is_err());
        assert!(super::from_str::<i8>("-200").is_err());
        assert_eq!(super::from_str::<u8>("255").unwrap(), 255);
    }

    #[test]
    fn trailing_comma_newtype_derives_transparently() {
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Nt(u64);
        let text = super::to_string(&Nt(7)).unwrap();
        assert_eq!(text, "7");
        assert_eq!(super::from_str::<Nt>("7").unwrap(), Nt(7));
    }
}
