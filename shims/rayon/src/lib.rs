//! Offline stand-in for `rayon` (the container cannot reach crates.io).
//!
//! Exposes the entry points the workspace uses — `par_iter`,
//! `into_par_iter`, `par_chunks` via `rayon::prelude::*` — but returns the
//! corresponding *sequential* std iterators. Call sites stay
//! rayon-idiomatic (adapters like `map`/`enumerate`/`max_by`/`collect`
//! work unchanged), so swapping in the real crate later is a
//! manifest-only change; until then "parallel" paths simply run on one
//! thread.

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

/// `into_par_iter()` — sequential fallback of rayon's trait of the same name.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter()` — sequential fallback of rayon's by-reference trait.
pub trait IntoParallelRefIterator<'a> {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_chunks()` — sequential fallback of rayon's slice extension.
pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Sequential fallback of `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_surface_matches_std_adapters() {
        let v = vec![3u32, 1, 4, 1, 5];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let best = v
            .par_iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1))
            .map(|(i, _)| i);
        assert_eq!(best, Some(4));
        let owned: Vec<u32> = v.clone().into_par_iter().collect();
        assert_eq!(owned, v);
        let chunks: Vec<&[u32]> = v.par_chunks(2).collect();
        assert_eq!(chunks.len(), 3);
    }
}
