//! Offline stand-in for `rayon` (the container cannot reach crates.io) —
//! now backed by a **real** `std::thread` pool.
//!
//! Exposes the entry points the workspace uses — `par_iter`,
//! `into_par_iter`, `par_chunks` via `rayon::prelude::*`, plus `join` —
//! and executes the mapped stage on scoped worker threads with chunked
//! work distribution and an order-preserving collect. Call sites stay
//! rayon-idiomatic (adapters `map`/`enumerate`/`max_by`/`collect` work
//! unchanged), so swapping in the real crate later is a manifest-only
//! change; unlike the original sequential stand-in, "parallel" paths now
//! actually use the machine's cores.
//!
//! Determinism contract: results are collected **in input order** and
//! reductions (`max_by`) run over that ordered sequence, so every
//! consumer observes byte-identical results regardless of thread count.
//!
//! Thread count: `RAYON_NUM_THREADS` (if set) else
//! `std::thread::available_parallelism()`. Tests and benchmarks can pin
//! a count for the current thread's pool launches via
//! [`with_num_threads`].

use std::cell::Cell;
use std::cmp::Ordering;
use std::sync::{Mutex, OnceLock};

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

thread_local! {
    /// Per-thread override used by [`with_num_threads`]. Read by the
    /// thread that launches a pool, so it governs every parallel call
    /// made while the closure runs.
    static THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads a parallel stage launched from this thread
/// will use.
pub fn current_num_threads() -> usize {
    if let Some(n) = THREADS_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Run `f` with every pool launched from the current thread pinned to
/// `n` workers (the closest shim equivalent of rayon's
/// `ThreadPoolBuilder::num_threads`). Restores the previous setting on
/// exit, including on panic.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREADS_OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// Map `items` through `f` on a scoped worker pool, preserving order.
///
/// Work distribution is chunked: items are split into contiguous blocks
/// (several per worker for load balancing), workers claim blocks from a
/// shared queue, and the per-block outputs are stitched back together in
/// block order. A panic in any worker propagates to the caller when the
/// scope joins (no deadlock, no swallowed error).
fn run_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Several blocks per worker so a slow block doesn't serialize the
    // tail; block index restores input order afterwards.
    let block = n.div_ceil(threads * 4).max(1);
    let mut blocks: Vec<(usize, Vec<T>)> = Vec::with_capacity(n.div_ceil(block));
    let mut it = items.into_iter();
    let mut idx = 0usize;
    loop {
        let chunk: Vec<T> = it.by_ref().take(block).collect();
        if chunk.is_empty() {
            break;
        }
        blocks.push((idx, chunk));
        idx += 1;
    }
    // Workers pop from the back; order is restored by the sort below.
    let queue = Mutex::new(blocks);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(idx));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = queue.lock().unwrap().pop();
                let Some((i, chunk)) = next else { break };
                let out: Vec<R> = chunk.into_iter().map(f).collect();
                done.lock().unwrap().push((i, out));
            });
        }
    });
    let mut done = done.into_inner().unwrap();
    done.sort_unstable_by_key(|&(i, _)| i);
    let mut out = Vec::with_capacity(n);
    for (_, v) in done {
        out.extend(v);
    }
    out
}

/// An eager parallel iterator: the item list is materialized up front
/// (cheap — the workspace only parallelizes over slices, chunk lists and
/// already-collected record vectors) and the expensive mapped stage runs
/// on the pool.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn max_by<F: Fn(&T, &T) -> Ordering>(self, cmp: F) -> Option<T> {
        self.items.into_iter().max_by(cmp)
    }
}

/// The mapped stage of a [`ParIter`]; consuming it runs the pool.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_map(self.items, &self.f).into_iter().collect()
    }

    /// Parallel map, then an order-stable sequential reduction — same
    /// result (`std`'s "last maximum wins" tie-break) on any pool size.
    pub fn max_by<G: Fn(&R, &R) -> Ordering>(self, cmp: G) -> Option<R> {
        run_map(self.items, &self.f).into_iter().max_by(cmp)
    }

    pub fn enumerate(self) -> ParIter<(usize, R)> {
        ParIter {
            items: run_map(self.items, &self.f)
                .into_iter()
                .enumerate()
                .collect(),
        }
    }
}

/// `into_par_iter()` — pool-backed version of rayon's trait of the same
/// name.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter()` — pool-backed version of rayon's by-reference trait.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send,
{
    type Item = <&'a C as IntoIterator>::Item;
    fn par_iter(&'a self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_chunks()` — pool-backed version of rayon's slice extension.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Parallel `rayon::join`: `a` runs on a scoped worker while `b` runs on
/// the calling thread (sequential when the pool is pinned to one
/// thread). A panic in either closure propagates.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let ha = s.spawn(a);
        let rb = b();
        let ra = match ha.join() {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        };
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_surface_matches_std_adapters() {
        let v = vec![3u32, 1, 4, 1, 5];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let best = v
            .par_iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1))
            .map(|(i, _)| i);
        assert_eq!(best, Some(4));
        let owned: Vec<u32> = v.clone().into_par_iter().collect();
        assert_eq!(owned, v);
        let chunks: Vec<&[u32]> = v.par_chunks(2).collect();
        assert_eq!(chunks.len(), 3);
    }

    #[test]
    fn map_preserves_input_order_on_every_pool_size() {
        let items: Vec<usize> = (0..997).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got: Vec<usize> =
                with_num_threads(threads, || items.par_iter().map(|&x| x * 3 + 1).collect());
            assert_eq!(got, expect, "order broken at {threads} threads");
        }
    }

    #[test]
    fn max_by_tie_break_matches_sequential() {
        // std's max_by returns the *last* maximum; the pool must too.
        let v = vec![(0, 7u32), (1, 7), (2, 3), (3, 7)];
        for threads in [1, 4] {
            let got = with_num_threads(threads, || {
                v.par_iter().map(|&p| p).max_by(|a, b| a.1.cmp(&b.1))
            });
            assert_eq!(got, Some((3, 7)));
        }
    }

    #[test]
    fn worker_panic_propagates_not_deadlocks() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                let _: Vec<u32> = items
                    .par_iter()
                    .map(|&x| {
                        if x == 33 {
                            panic!("worker bang");
                        }
                        x
                    })
                    .collect();
            })
        });
        assert!(result.is_err(), "panic must cross the pool boundary");
    }

    #[test]
    fn join_runs_both_and_propagates_panics() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
        let r = std::panic::catch_unwind(|| join(|| panic!("left"), || 1));
        assert!(r.is_err());
    }

    #[test]
    fn with_num_threads_restores_on_exit() {
        let before = current_num_threads();
        with_num_threads(7, || assert_eq!(current_num_threads(), 7));
        assert_eq!(current_num_threads(), before);
        let _ = std::panic::catch_unwind(|| {
            with_num_threads(5, || panic!("boom"));
        });
        assert_eq!(current_num_threads(), before, "restore must survive panic");
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        let got: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(got.is_empty());
        let one: Vec<u32> = vec![9].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![10]);
    }
}
