//! Offline stand-in for `proptest` (the container cannot reach crates.io).
//!
//! Implements the surface `tests/property_tests.rs` uses: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, integer-range and
//! tuple strategies, `prop_map`, `collection::vec`, `option::of`,
//! `sample::Index`, and string strategies over a regex subset
//! (`[a-z]{1,8}`-style classes and quantifiers).
//!
//! Sampling is purely random (no shrinking, no failure persistence), but
//! the RNG is seeded deterministically from the test name, so a failing
//! case reproduces on every run until the code or the case count changes.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ------------------------------------------------------------------- rng

/// SplitMix64 — tiny, fast, and plenty for test-case generation.
pub struct TestRng(u64);

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// -------------------------------------------------------------- strategy

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values, like proptest's combinator of the same
    /// name.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

// ------------------------------------------------------------- arbitrary

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, roughly unit-scale values: quite enough for test inputs.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + rng.below(95) as u8) as char
    }
}

pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `Just(v)` — always yields a clone of `v`.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------- ranges

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

// ---------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ------------------------------------------------------- string patterns

/// `&str` is a strategy: the pattern is a regex *subset* — literal chars,
/// classes like `[a-z0-9_]`, and quantifiers `{n}`, `{m,n}`, `?`, `+`, `*`
/// (the unbounded ones capped at 8 repeats).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a char class or a literal.
        let mut alphabet: Vec<char> = Vec::new();
        match chars[i] {
            '[' => {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in pattern `{pattern}`");
                        for c in lo..=hi {
                            alphabet.push(c);
                        }
                        i += 3;
                    } else {
                        alphabet.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern `{pattern}`");
                i += 1; // consume ']'
            }
            '\\' => {
                assert!(
                    i + 1 < chars.len(),
                    "dangling escape in pattern `{pattern}`"
                );
                alphabet.push(chars[i + 1]);
                i += 2;
            }
            '.' => {
                for b in b' '..=b'~' {
                    alphabet.push(b as char);
                }
                i += 1;
            }
            c => {
                alphabet.push(c);
                i += 1;
            }
        }
        // Parse an optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .unwrap_or_else(|| {
                            panic!("unterminated quantifier in pattern `{pattern}`")
                        });
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse::<usize>().unwrap(),
                            hi.trim().parse::<usize>().unwrap(),
                        ),
                        None => {
                            let n = body.trim().parse::<usize>().unwrap();
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(
            !alphabet.is_empty(),
            "empty alphabet in pattern `{pattern}`"
        );
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

// ------------------------------------------------------------ collection

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element count for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        /// Inclusive upper bound.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------- option

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `option::of(strategy)` — `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

// ---------------------------------------------------------------- sample

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An abstract index into a not-yet-known-length collection.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Project onto `0..len`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

// ---------------------------------------------------------------- runner

pub mod test_runner {
    /// Per-block configuration; only `cases` is honored by the shim.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

// ---------------------------------------------------------------- macros

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                $body
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

// --------------------------------------------------------------- prelude

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn pattern_strategy_shapes() {
        let mut rng = TestRng::from_name("pat");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{1,3}[0-9]{0,2}", &mut rng);
            assert!((1..=5).contains(&s.len()), "bad sample {s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let head: String = s.chars().take_while(|c| c.is_ascii_lowercase()).collect();
            assert!((1..=3).contains(&head.len()));
        }
    }

    #[test]
    fn vec_and_tuple_strategies() {
        let mut rng = TestRng::from_name("vt");
        let strat = (0u32..3, crate::collection::vec(any::<u8>(), 2..5));
        for _ in 0..100 {
            let (n, v) = Strategy::sample(&strat, &mut rng);
            assert!(n < 3);
            assert!((2..=4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in any::<u64>(), len in 1usize..10) {
            prop_assert!(len >= 1);
            let v = vec![x; len];
            prop_assert_eq!(v.len(), len);
        }
    }
}
