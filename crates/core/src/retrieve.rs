//! VMI retrieval — the assembler (Algorithm 3).
//!
//! Fetches the stored base image and the requested packages, then
//! assembles a VMI: copy base (Fig. 5a band 1), create the guestfs handle
//! (band 2), `virt-sysprep` reset (band 3), import data + install
//! packages from the local repository (band 4).

use crate::repo::RepoState;
use xpl_guestfs::{FileOwner, GuestHandle, Vmi};
use xpl_pkg::dpkgdb::InstallReason;
use xpl_pkg::{Catalog, PackageId};
use xpl_store::{RetrieveReport, RetrieveRequest, StoreError};
use xpl_util::{Digest, FxHashMap, FxHashSet, IStr};

/// Labels of the four Figure 5a phases.
pub const PHASES: [&str; 4] = [
    "Base image copy",
    "Libguestfs handler creation",
    "VMI reset",
    "Import",
];

/// Run Algorithm 3 for `request`.
///
/// Retrieval is a read-only operation: it holds the operation gate in
/// read mode (any number of retrievals run concurrently; mutations —
/// which can release CAS blobs — wait for the write side) plus read
/// guards on the semantic section and the package index, held across
/// the assembly because the stored base is borrowed out of the guard.
///
/// Per-op metrics caveat: `duration` and `bytes_read` come from the
/// store's shared clock and device counters, so under *concurrent*
/// retrievals each report is an upper bound that may include a
/// neighbour's charges; with retrievals serialized they are exact. The
/// churn oracle therefore treats them as nonzero-ness witnesses, and
/// the figure pipelines (5a/5b) measure with one retrieval in flight.
pub fn retrieve(
    state: &RepoState,
    catalog: &Catalog,
    request: &RetrieveRequest,
) -> Result<(Vmi, RetrieveReport), StoreError> {
    let _gate = state.op_gate.read().unwrap();
    retrieve_impl(state, catalog, request, true).map(|(vmi, report, _)| (vmi, report))
}

/// The assembler body. `materialize` distinguishes the two callers:
///
/// * `true` — full Algorithm 3: charge the base copy, read every data
///   and package blob out of the repository, and materialize the disk.
/// * `false` — metadata-only assembly for [`retrieve_range`]: run the
///   identical resolution + guest-side tree construction (so the final
///   tree is byte-for-byte the one a full retrieval would lay out) but
///   skip the repository blob reads and the disk build; the range path
///   then fetches only the blob slices its extents overlap.
///
/// Callers hold the operation gate; this function takes the remaining
/// guards in lock order.
fn retrieve_impl(
    state: &RepoState,
    catalog: &Catalog,
    request: &RetrieveRequest,
    materialize: bool,
) -> Result<(Vmi, RetrieveReport, Vec<PackageId>), StoreError> {
    let env = state.env.clone();
    let t0 = env.clock.now();
    let reads_before = env.repo.stats().bytes_read;
    let mut report = RetrieveReport {
        image: request.name.clone(),
        ..Default::default()
    };

    // Read guards for the whole assembly, in lock order (semantic →
    // package_index). Publishes wait; other retrievals share.
    let semantic = state.semantic.read().unwrap();
    let package_index = state.package_index.read().unwrap();

    // ---- Locate a base + master serving this request (line 1–2). -----
    let key = request.base.key();
    let base = semantic
        .bases
        .iter()
        .find(|b| b.attrs.key() == key)
        .ok_or_else(|| StoreError::NotFound(format!("no base image for {key}")))?;
    let master = semantic
        .masters
        .get(&base.id)
        .ok_or_else(|| StoreError::Corrupt(format!("master missing for {}", base.id)))?;

    // Resolve requested primary packages against the master's package
    // union (the repository's view of available software).
    let mut roots: Vec<PackageId> = Vec::with_capacity(request.primary.len());
    for name in &request.primary {
        let iname = IStr::new(name);
        if let Some(v) = master.packages.get(&iname) {
            roots.push(v.pkg);
        } else if base.pkgdb.is_installed(iname) {
            // Provided by the base itself (Algorithm 3 line 7).
            continue;
        } else {
            return Err(StoreError::NotFound(format!(
                "package {name} not in repository"
            )));
        }
    }
    // Dependency closure; skip what the base provides.
    let closure = catalog
        .install_closure(&roots, request.base.arch)
        .map_err(StoreError::Resolve)?;
    let mut to_install: Vec<PackageId> = Vec::new();
    for id in closure {
        let meta = catalog.get(id);
        if base.pkgdb.is_installed(meta.name) {
            continue;
        }
        // Prefer the exact exported version; fall back to any exported
        // version of the same package (semantically similar assembly).
        if package_index.contains_key(&meta.identity()) {
            to_install.push(id);
        } else if let Some(alt) = package_index
            .values()
            .find(|p| catalog.get(p.package).name == meta.name)
        {
            to_install.push(alt.package);
        } else {
            return Err(StoreError::NotFound(format!(
                "package {} required but never published",
                meta.identity()
            )));
        }
    }

    // ---- Phase 1: base image copy. ------------------------------------
    let qcow_bytes = base.qcow_bytes;
    report.breakdown.measure(&env.clock, PHASES[0], || {
        if materialize {
            env.repo.charge_open(qcow_bytes);
            env.repo.charge_copy_to(&env.local, qcow_bytes);
        }
    });

    // Reconstruct the working image from the stored semantic snapshot.
    let mut vmi = Vmi {
        name: request.name.clone(),
        base: base.attrs.clone(),
        fs: base.fs.clone(),
        pkgdb: base.pkgdb.clone(),
        primary: roots.clone(),
        disk: xpl_vdisk::QcowImage::create(&request.name, 0),
    };

    // ---- Phase 2: guestfs handle. --------------------------------------
    let mut handle = report.breakdown.measure(&env.clock, PHASES[1], || {
        GuestHandle::launch(&env, &mut vmi)
    });

    // ---- Phase 3: reset. ------------------------------------------------
    report.breakdown.measure(&env.clock, PHASES[2], || {
        handle.sysprep_reset();
    });

    // ---- Phase 4: import (data + packages). -----------------------------
    let data = state.data_index.read().unwrap().get(&request.name).cloned();
    report
        .breakdown
        .measure(&env.clock, PHASES[3], || -> Result<(), StoreError> {
            // User data: prefer repository-stored data for this image name;
            // otherwise import what the request carries.
            let files = match &data {
                Some(d) => {
                    if materialize {
                        for digest in &d.digests {
                            state
                                .data_store
                                .get(digest)
                                .map_err(|_| StoreError::Corrupt(format!("data blob {digest}")))?;
                        }
                    }
                    d.files.clone()
                }
                None => request.user_data.clone(),
            };
            for f in files {
                env.local.charge_create(f.size as u64);
                env.local.charge_write(f.size as u64);
                handle.vmi_mut().fs.add_file(f);
            }

            // Packages: read the deb, register in the local repository, and
            // install through the guest package manager.
            for id in &to_install {
                let meta = catalog.get(*id);
                let indexed = package_index
                    .get(&meta.identity())
                    .or_else(|| {
                        package_index
                            .values()
                            .find(|p| catalog.get(p.package).name == meta.name)
                    })
                    .expect("checked during resolution");
                if materialize {
                    state.packages.get(&indexed.digest).map_err(|_| {
                        StoreError::Corrupt(format!("package blob {}", meta.identity()))
                    })?;
                }
                env.local.charge_fixed(env.costs.repo_scan_per_pkg);
                handle.install_package(catalog, indexed.package, InstallReason::Auto);
            }
            // Primary packages were installed as part of the loop; mark them.
            for &root in &roots {
                let name = catalog.get(root).name;
                handle.vmi_mut().pkgdb.mark_manual(name);
            }
            handle.refresh_status(catalog);
            Ok(())
        })?;

    // Materialize the delivered disk. No extra I/O charge: the assembled
    // image *is* the copied base file, mutated in place by the package
    // installs (whose costs were charged above); rebuild_disk is model
    // bookkeeping.
    if materialize {
        vmi.rebuild_disk();
    }

    report.duration = env.clock.since(t0);
    report.bytes_read = env.repo.stats().bytes_read - reads_before;
    Ok((vmi, report, to_install))
}

/// Serve only disk bytes `[start, start+len)` of the image `request`
/// describes, without assembling the whole disk.
///
/// Runs the same resolution + guest-side tree construction as
/// [`retrieve`] (metadata only — no blob reads, no disk build), maps the
/// range onto file extents with [`xpl_guestfs::materialize_range`], and
/// fetches just the overlapping content:
///
/// * user-data files stored in the repository — a ranged CAS read of
///   exactly the overlap ([`ContentStore::get_range`]);
/// * packages being installed — one full `.deb` read per *touched*
///   package (debs are fetched whole; untouched packages cost nothing);
/// * base-provided files — a repository read charged per overlap byte
///   (the stored base is seekable).
///
/// The returned bytes are byte-identical to slicing a full retrieval's
/// disk, and `bytes_read` reflects only the content above.
///
/// [`ContentStore::get_range`]: xpl_store::ContentStore::get_range
pub fn retrieve_range(
    state: &RepoState,
    catalog: &Catalog,
    request: &RetrieveRequest,
    start: u64,
    len: u64,
) -> Result<(Vec<u8>, RetrieveReport), StoreError> {
    let _gate = state.op_gate.read().unwrap();
    let env = state.env.clone();
    let t0 = env.clock.now();
    let reads_before = env.repo.stats().bytes_read;

    let (vmi, mut report, to_install) = retrieve_impl(state, catalog, request, false)?;
    let to_install: FxHashSet<PackageId> = to_install.into_iter().collect();

    // Blob addresses for the two repository-backed owners. Data files
    // and digests are parallel vectors from publish; images assembled
    // from request-carried user data have no stored blobs and fall back
    // to local generation (the bytes arrived with the request).
    let data = state.data_index.read().unwrap().get(&request.name).cloned();
    let data_digests: FxHashMap<IStr, Digest> = match &data {
        Some(d) => d
            .files
            .iter()
            .zip(d.digests.iter())
            .map(|(f, dg)| (f.path, *dg))
            .collect(),
        None => FxHashMap::default(),
    };
    let pkg_digests: FxHashMap<PackageId, Digest> = state
        .package_index
        .read()
        .unwrap()
        .values()
        .map(|p| (p.package, p.digest))
        .collect();

    let mut touched_pkgs: FxHashSet<PackageId> = FxHashSet::default();
    let bytes = report
        .breakdown
        .measure(&env.clock, "Range assemble", || {
            xpl_guestfs::materialize_range(&vmi.fs, start, len, |rec, off, l| {
                let local_slice = || {
                    let content = rec.content();
                    Ok(content[off as usize..(off + l) as usize].to_vec())
                };
                match rec.owner {
                    FileOwner::UserData => match data_digests.get(&rec.path) {
                        Some(dg) => state
                            .data_store
                            .get_range(dg, off, l)
                            .map_err(|e| format!("data blob for {}: {e:?}", rec.path)),
                        None => local_slice(),
                    },
                    FileOwner::Package(id) if to_install.contains(&id) => {
                        // A deb is fetched whole: charge the full blob
                        // the first time any of its files is touched.
                        if touched_pkgs.insert(id) {
                            if let Some(dg) = pkg_digests.get(&id) {
                                state
                                    .packages
                                    .get(dg)
                                    .map_err(|e| format!("package blob {dg}: {e:?}"))?;
                            }
                        }
                        local_slice()
                    }
                    // Base-provided content (including generated system
                    // files like the dpkg status database): a seekable
                    // read of the stored base, charged per overlap byte.
                    _ => {
                        env.repo.charge_open(l);
                        env.repo.charge_read(l);
                        local_slice()
                    }
                }
            })
        })
        .map_err(StoreError::Corrupt)?;
    env.local.charge_write(bytes.len() as u64);

    report.duration = env.clock.since(t0);
    report.bytes_read = env.repo.stats().bytes_read - reads_before;
    Ok((bytes, report))
}

#[cfg(test)]
mod tests {
    use crate::repo::ExpelliarmusRepo;
    use xpl_store::{ImageStore, RetrieveRequest, StoreError};
    use xpl_workloads::World;

    #[test]
    fn roundtrip_restores_package_set() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        let original = w.build_image("lamp");
        repo.publish(&w.catalog, &original).unwrap();
        let req = RetrieveRequest::for_image(&original, &w.catalog);
        let (got, report) = repo.retrieve(&w.catalog, &req).unwrap();
        assert_eq!(
            got.installed_package_set(&w.catalog),
            original.installed_package_set(&w.catalog)
        );
        assert!(
            report.duration.as_secs_f64() > 14.0,
            "copy+launch+reset floor"
        );
        // User data restored.
        assert_eq!(got.user_data_bytes(), original.user_data_bytes());
    }

    #[test]
    fn retrieval_has_four_phases() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        let redis = w.build_image("redis");
        repo.publish(&w.catalog, &redis).unwrap();
        let (_vmi, report) = repo
            .retrieve(&w.catalog, &RetrieveRequest::for_image(&redis, &w.catalog))
            .unwrap();
        for phase in crate::retrieve::PHASES {
            assert!(
                report.breakdown.get(phase).as_nanos() > 0,
                "phase {phase} missing from {report:?}"
            );
        }
    }

    #[test]
    fn range_retrieval_matches_disk_slice_and_reads_less() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        let original = w.build_image("lamp");
        repo.publish(&w.catalog, &original).unwrap();
        let req = RetrieveRequest::for_image(&original, &w.catalog);
        let (vmi, full) = repo.retrieve(&w.catalog, &req).unwrap();
        let size = vmi.disk.virtual_size();
        assert!(full.bytes_read > 0);
        let spans = [
            (0u64, 700u64),
            (511, 4 * 1024),
            (size / 2, 9000),
            (size.saturating_sub(100), 400), // clamped at the tail
            (size + 5, 10),                  // fully past the end → empty
            (123, 0),                        // empty request
        ];
        for (start, len) in spans {
            let (bytes, report) = repo.retrieve_range(&w.catalog, &req, start, len).unwrap();
            let end = start.saturating_add(len).min(size);
            let s = start.min(end);
            let want = vmi.disk.read_at(s, (end - s) as usize).unwrap();
            assert_eq!(bytes, want, "span ({start}, {len})");
            assert!(
                report.bytes_read < full.bytes_read,
                "span ({start}, {len}): range read {} vs full {}",
                report.bytes_read,
                full.bytes_read
            );
        }
    }

    #[test]
    fn range_retrieval_serves_functional_requests() {
        // The range path must also serve images never uploaded as such
        // (user data carried by the request, not the repository).
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        repo.publish(&w.catalog, &w.build_image("redis")).unwrap();
        repo.publish(&w.catalog, &w.build_image("nginx")).unwrap();
        let req = RetrieveRequest {
            name: "redis+nginx".into(),
            base: w.template.attrs.clone(),
            primary: vec!["redis-server".into(), "nginx".into()],
            user_data: vec![],
        };
        let (vmi, _) = repo.retrieve(&w.catalog, &req).unwrap();
        let size = vmi.disk.virtual_size();
        for (start, len) in [(0u64, 2048u64), (size / 3, 8192), (size - 64, 128)] {
            let (bytes, _) = repo.retrieve_range(&w.catalog, &req, start, len).unwrap();
            let end = start.saturating_add(len).min(size);
            let want = vmi.disk.read_at(start, (end - start) as usize).unwrap();
            assert_eq!(bytes, want, "span ({start}, {len})");
        }
    }

    #[test]
    fn functional_retrieval_without_exact_upload() {
        // Publish redis and nginx separately, then request an image with
        // BOTH — never uploaded as such. Monolithic stores cannot do this.
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        repo.publish(&w.catalog, &w.build_image("redis")).unwrap();
        repo.publish(&w.catalog, &w.build_image("nginx")).unwrap();
        let req = RetrieveRequest {
            name: "redis+nginx".into(),
            base: w.template.attrs.clone(),
            primary: vec!["redis-server".into(), "nginx".into()],
            user_data: vec![],
        };
        let (vmi, _) = repo.retrieve(&w.catalog, &req).unwrap();
        assert!(vmi.pkgdb.is_installed(xpl_util::IStr::new("redis-server")));
        assert!(vmi.pkgdb.is_installed(xpl_util::IStr::new("nginx")));
    }

    #[test]
    fn missing_package_is_clean_error() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        repo.publish(&w.catalog, &w.build_image("mini")).unwrap();
        let req = RetrieveRequest {
            name: "wants-redis".into(),
            base: w.template.attrs.clone(),
            primary: vec!["redis-server".into()],
            user_data: vec![],
        };
        match repo.retrieve(&w.catalog, &req) {
            Err(StoreError::NotFound(msg)) => assert!(msg.contains("redis"), "{msg}"),
            other => panic!("expected NotFound, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn empty_repo_retrieval_fails() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        let req = RetrieveRequest {
            name: "x".into(),
            base: w.template.attrs.clone(),
            primary: vec![],
            user_data: vec![],
        };
        assert!(matches!(
            repo.retrieve(&w.catalog, &req),
            Err(StoreError::NotFound(_))
        ));
    }
}
