//! VMI retrieval — the assembler (Algorithm 3).
//!
//! Fetches the stored base image and the requested packages, then
//! assembles a VMI: copy base (Fig. 5a band 1), create the guestfs handle
//! (band 2), `virt-sysprep` reset (band 3), import data + install
//! packages from the local repository (band 4).

use crate::repo::RepoState;
use xpl_guestfs::{GuestHandle, Vmi};
use xpl_pkg::dpkgdb::InstallReason;
use xpl_pkg::{Catalog, PackageId};
use xpl_store::{RetrieveReport, RetrieveRequest, StoreError};
use xpl_util::IStr;

/// Labels of the four Figure 5a phases.
pub const PHASES: [&str; 4] = [
    "Base image copy",
    "Libguestfs handler creation",
    "VMI reset",
    "Import",
];

/// Run Algorithm 3 for `request`.
///
/// Retrieval is a read-only operation: it holds the operation gate in
/// read mode (any number of retrievals run concurrently; mutations —
/// which can release CAS blobs — wait for the write side) plus read
/// guards on the semantic section and the package index, held across
/// the assembly because the stored base is borrowed out of the guard.
///
/// Per-op metrics caveat: `duration` and `bytes_read` come from the
/// store's shared clock and device counters, so under *concurrent*
/// retrievals each report is an upper bound that may include a
/// neighbour's charges; with retrievals serialized they are exact. The
/// churn oracle therefore treats them as nonzero-ness witnesses, and
/// the figure pipelines (5a/5b) measure with one retrieval in flight.
pub fn retrieve(
    state: &RepoState,
    catalog: &Catalog,
    request: &RetrieveRequest,
) -> Result<(Vmi, RetrieveReport), StoreError> {
    let _gate = state.op_gate.read().unwrap();
    let env = state.env.clone();
    let t0 = env.clock.now();
    let reads_before = env.repo.stats().bytes_read;
    let mut report = RetrieveReport {
        image: request.name.clone(),
        ..Default::default()
    };

    // Read guards for the whole assembly, in lock order (semantic →
    // package_index). Publishes wait; other retrievals share.
    let semantic = state.semantic.read().unwrap();
    let package_index = state.package_index.read().unwrap();

    // ---- Locate a base + master serving this request (line 1–2). -----
    let key = request.base.key();
    let base = semantic
        .bases
        .iter()
        .find(|b| b.attrs.key() == key)
        .ok_or_else(|| StoreError::NotFound(format!("no base image for {key}")))?;
    let master = semantic
        .masters
        .get(&base.id)
        .ok_or_else(|| StoreError::Corrupt(format!("master missing for {}", base.id)))?;

    // Resolve requested primary packages against the master's package
    // union (the repository's view of available software).
    let mut roots: Vec<PackageId> = Vec::with_capacity(request.primary.len());
    for name in &request.primary {
        let iname = IStr::new(name);
        if let Some(v) = master.packages.get(&iname) {
            roots.push(v.pkg);
        } else if base.pkgdb.is_installed(iname) {
            // Provided by the base itself (Algorithm 3 line 7).
            continue;
        } else {
            return Err(StoreError::NotFound(format!(
                "package {name} not in repository"
            )));
        }
    }
    // Dependency closure; skip what the base provides.
    let closure = catalog
        .install_closure(&roots, request.base.arch)
        .map_err(StoreError::Resolve)?;
    let mut to_install: Vec<PackageId> = Vec::new();
    for id in closure {
        let meta = catalog.get(id);
        if base.pkgdb.is_installed(meta.name) {
            continue;
        }
        // Prefer the exact exported version; fall back to any exported
        // version of the same package (semantically similar assembly).
        if package_index.contains_key(&meta.identity()) {
            to_install.push(id);
        } else if let Some(alt) = package_index
            .values()
            .find(|p| catalog.get(p.package).name == meta.name)
        {
            to_install.push(alt.package);
        } else {
            return Err(StoreError::NotFound(format!(
                "package {} required but never published",
                meta.identity()
            )));
        }
    }

    // ---- Phase 1: base image copy. ------------------------------------
    let qcow_bytes = base.qcow_bytes;
    report.breakdown.measure(&env.clock, PHASES[0], || {
        env.repo.charge_open(qcow_bytes);
        env.repo.charge_copy_to(&env.local, qcow_bytes);
    });

    // Reconstruct the working image from the stored semantic snapshot.
    let mut vmi = Vmi {
        name: request.name.clone(),
        base: base.attrs.clone(),
        fs: base.fs.clone(),
        pkgdb: base.pkgdb.clone(),
        primary: roots.clone(),
        disk: xpl_vdisk::QcowImage::create(&request.name, 0),
    };

    // ---- Phase 2: guestfs handle. --------------------------------------
    let mut handle = report.breakdown.measure(&env.clock, PHASES[1], || {
        GuestHandle::launch(&env, &mut vmi)
    });

    // ---- Phase 3: reset. ------------------------------------------------
    report.breakdown.measure(&env.clock, PHASES[2], || {
        handle.sysprep_reset();
    });

    // ---- Phase 4: import (data + packages). -----------------------------
    let data = state.data_index.read().unwrap().get(&request.name).cloned();
    report
        .breakdown
        .measure(&env.clock, PHASES[3], || -> Result<(), StoreError> {
            // User data: prefer repository-stored data for this image name;
            // otherwise import what the request carries.
            let files = match &data {
                Some(d) => {
                    for digest in &d.digests {
                        state
                            .data_store
                            .get(digest)
                            .map_err(|_| StoreError::Corrupt(format!("data blob {digest}")))?;
                    }
                    d.files.clone()
                }
                None => request.user_data.clone(),
            };
            for f in files {
                env.local.charge_create(f.size as u64);
                env.local.charge_write(f.size as u64);
                handle.vmi_mut().fs.add_file(f);
            }

            // Packages: read the deb, register in the local repository, and
            // install through the guest package manager.
            for id in &to_install {
                let meta = catalog.get(*id);
                let indexed = package_index
                    .get(&meta.identity())
                    .or_else(|| {
                        package_index
                            .values()
                            .find(|p| catalog.get(p.package).name == meta.name)
                    })
                    .expect("checked during resolution");
                state.packages.get(&indexed.digest).map_err(|_| {
                    StoreError::Corrupt(format!("package blob {}", meta.identity()))
                })?;
                env.local.charge_fixed(env.costs.repo_scan_per_pkg);
                handle.install_package(catalog, indexed.package, InstallReason::Auto);
            }
            // Primary packages were installed as part of the loop; mark them.
            for &root in &roots {
                let name = catalog.get(root).name;
                handle.vmi_mut().pkgdb.mark_manual(name);
            }
            handle.refresh_status(catalog);
            Ok(())
        })?;

    // Materialize the delivered disk. No extra I/O charge: the assembled
    // image *is* the copied base file, mutated in place by the package
    // installs (whose costs were charged above); rebuild_disk is model
    // bookkeeping.
    vmi.rebuild_disk();

    report.duration = env.clock.since(t0);
    report.bytes_read = env.repo.stats().bytes_read - reads_before;
    Ok((vmi, report))
}

#[cfg(test)]
mod tests {
    use crate::repo::ExpelliarmusRepo;
    use xpl_store::{ImageStore, RetrieveRequest, StoreError};
    use xpl_workloads::World;

    #[test]
    fn roundtrip_restores_package_set() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        let original = w.build_image("lamp");
        repo.publish(&w.catalog, &original).unwrap();
        let req = RetrieveRequest::for_image(&original, &w.catalog);
        let (got, report) = repo.retrieve(&w.catalog, &req).unwrap();
        assert_eq!(
            got.installed_package_set(&w.catalog),
            original.installed_package_set(&w.catalog)
        );
        assert!(
            report.duration.as_secs_f64() > 14.0,
            "copy+launch+reset floor"
        );
        // User data restored.
        assert_eq!(got.user_data_bytes(), original.user_data_bytes());
    }

    #[test]
    fn retrieval_has_four_phases() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        let redis = w.build_image("redis");
        repo.publish(&w.catalog, &redis).unwrap();
        let (_vmi, report) = repo
            .retrieve(&w.catalog, &RetrieveRequest::for_image(&redis, &w.catalog))
            .unwrap();
        for phase in crate::retrieve::PHASES {
            assert!(
                report.breakdown.get(phase).as_nanos() > 0,
                "phase {phase} missing from {report:?}"
            );
        }
    }

    #[test]
    fn functional_retrieval_without_exact_upload() {
        // Publish redis and nginx separately, then request an image with
        // BOTH — never uploaded as such. Monolithic stores cannot do this.
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        repo.publish(&w.catalog, &w.build_image("redis")).unwrap();
        repo.publish(&w.catalog, &w.build_image("nginx")).unwrap();
        let req = RetrieveRequest {
            name: "redis+nginx".into(),
            base: w.template.attrs.clone(),
            primary: vec!["redis-server".into(), "nginx".into()],
            user_data: vec![],
        };
        let (vmi, _) = repo.retrieve(&w.catalog, &req).unwrap();
        assert!(vmi.pkgdb.is_installed(xpl_util::IStr::new("redis-server")));
        assert!(vmi.pkgdb.is_installed(xpl_util::IStr::new("nginx")));
    }

    #[test]
    fn missing_package_is_clean_error() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        repo.publish(&w.catalog, &w.build_image("mini")).unwrap();
        let req = RetrieveRequest {
            name: "wants-redis".into(),
            base: w.template.attrs.clone(),
            primary: vec!["redis-server".into()],
            user_data: vec![],
        };
        match repo.retrieve(&w.catalog, &req) {
            Err(StoreError::NotFound(msg)) => assert!(msg.contains("redis"), "{msg}"),
            other => panic!("expected NotFound, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn empty_repo_retrieval_fails() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        let req = RetrieveRequest {
            name: "x".into(),
            base: w.template.attrs.clone(),
            primary: vec![],
            user_data: vec![],
        };
        assert!(matches!(
            repo.retrieve(&w.catalog, &req),
            Err(StoreError::NotFound(_))
        ));
    }
}
