//! Base-image selection (Algorithm 2).
//!
//! Given the base image left over after decomposition, pick which base to
//! keep: the new one, or an already-stored semantically identical one —
//! and compute the *replace list* of stored bases the chosen one makes
//! redundant (their master graphs' packages are all compatible with it).
//! Candidates are ranked by (more replaced bases, smaller base, already
//! stored) exactly as the paper's sort criteria describe.
//!
//! Pseudocode fixes (the published listing has two typos): line 16 must
//! destructure `j` (not `i` again), and `replaceList` must be reset per
//! candidate `i`; both are corrected here.

use crate::repo::SemanticState;
use xpl_pkg::BaseImageAttrs;
use xpl_semgraph::{compatibility, SemanticGraph};

/// Outcome of base-image selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// `None` ⇒ keep (store) the incoming base; `Some(id)` ⇒ reuse the
    /// stored base with that id.
    pub chosen_existing: Option<String>,
    /// Stored base ids made redundant by the choice (to be absorbed and
    /// deleted — Algorithm 1 lines 22–28).
    pub replace: Vec<String>,
}

/// One candidate row of Algorithm 2's `list3`/`list4`.
struct Candidate {
    /// `None` = the incoming base.
    id: Option<String>,
    base_graph: SemanticGraph,
    /// Union of the primary packages hosted on this base (for stored
    /// bases: the master's packages; for the incoming base: the incoming
    /// image's primary subgraph).
    hosted: SemanticGraph,
    replace: Vec<String>,
    base_size: u64,
}

/// Run Algorithm 2.
///
/// * `attrs`/`base_graph` — the incoming base image after decomposition.
/// * `primary_subgraph` — the incoming image's `G_I[PS]`.
pub fn select_base_image(
    semantic: &SemanticState,
    attrs: &BaseImageAttrs,
    base_graph: &SemanticGraph,
    primary_subgraph: &SemanticGraph,
) -> Selection {
    // list3: the incoming base + every stored base with simBI = 1.
    let mut candidates: Vec<Candidate> = vec![Candidate {
        id: None,
        base_graph: base_graph.clone(),
        hosted: primary_subgraph.clone(),
        replace: Vec::new(),
        base_size: base_graph.total_size(),
    }];
    for stored in semantic.bases_with_attrs(&attrs.key()) {
        if attrs.similarity(&stored.attrs) == 1.0 {
            if let Some(master) = semantic.masters.get(&stored.id) {
                candidates.push(Candidate {
                    id: Some(stored.id.clone()),
                    base_graph: stored.base_graph.clone(),
                    hosted: master.as_graph(),
                    replace: Vec::new(),
                    base_size: stored.base_graph.total_size(),
                });
            }
        }
    }

    // For each candidate i, collect every other candidate j it can
    // replace: i's base must be compatible with j's hosted packages
    // (Algorithm 2 lines 13–19). The *incoming* base participates as a
    // replaceable entry too — that is how a stored base qualifies at line
    // 30 via "BI ∈ replaceList". `can_host_incoming[i]` records that case;
    // `replace` keeps only stored ids (those are what Algorithm 1 deletes).
    let n = candidates.len();
    let mut can_host_incoming = vec![false; n];
    for i in 0..n {
        let mut replace = Vec::new();
        for j in 0..n {
            if i == j {
                continue;
            }
            if compatibility(&candidates[i].base_graph, &candidates[j].hosted) == 1.0 {
                match &candidates[j].id {
                    Some(jid) => replace.push(jid.clone()),
                    None => can_host_incoming[i] = true,
                }
            }
        }
        candidates[i].replace = replace;
    }

    // list4 sort (Algorithm 2 line 27): more replacements first, then
    // smaller base, then already-stored bases (avoid unnecessary storage).
    // The incoming base counts itself as hosted, mirroring the paper's
    // replace-list semantics where every candidate's list draws from the
    // same list3.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ca = &candidates[a];
        let cb = &candidates[b];
        let ra = ca.replace.len() + usize::from(can_host_incoming[a]);
        let rb = cb.replace.len() + usize::from(can_host_incoming[b]);
        rb.cmp(&ra)
            .then(ca.base_size.cmp(&cb.base_size))
            .then(cb.id.is_some().cmp(&ca.id.is_some()))
    });

    // Lines 28–32: first candidate that either *is* the incoming base or
    // can replace it.
    for &i in &order {
        let cand = &candidates[i];
        match &cand.id {
            None => {
                return Selection {
                    chosen_existing: None,
                    replace: cand.replace.clone(),
                };
            }
            Some(id) => {
                if can_host_incoming[i] {
                    return Selection {
                        chosen_existing: Some(id.clone()),
                        replace: cand.replace.clone(),
                    };
                }
            }
        }
    }
    // Line 33: fall back to storing the incoming base.
    Selection {
        chosen_existing: None,
        replace: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::ExpelliarmusRepo;
    use xpl_store::ImageStore;
    use xpl_workloads::World;

    fn graph_of(w: &World, name: &str) -> (SemanticGraph, SemanticGraph) {
        let vmi = w.build_image(name);
        let installed = vmi.pkgdb.installed_ids();
        let primary_set: std::collections::HashSet<_> = vmi.primary.iter().copied().collect();
        let base_roots: Vec<_> = vmi
            .pkgdb
            .manual_ids()
            .into_iter()
            .filter(|id| !primary_set.contains(id))
            .collect();
        let g = SemanticGraph::of_image(
            &w.catalog,
            name,
            vmi.base.clone(),
            &installed,
            &vmi.primary,
            &base_roots,
        );
        (g.base_subgraph(), g.primary_subgraph())
    }

    #[test]
    fn empty_repo_selects_incoming() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        let (base_g, prim_g) = graph_of(&w, "redis");
        let attrs = w.template.attrs.clone();
        let sem = repo.state.semantic.read().unwrap();
        let sel = select_base_image(&sem, &attrs, &base_g, &prim_g);
        assert_eq!(sel.chosen_existing, None);
        assert!(sel.replace.is_empty());
    }

    #[test]
    fn compatible_stored_base_reused() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        repo.publish(&w.catalog, &w.build_image("mini")).unwrap();
        assert_eq!(repo.base_count(), 1);

        let (base_g, prim_g) = graph_of(&w, "redis");
        let attrs = w.template.attrs.clone();
        let sem = repo.state.semantic.read().unwrap();
        let sel = select_base_image(&sem, &attrs, &base_g, &prim_g);
        assert!(
            sel.chosen_existing.is_some(),
            "should reuse the stored base"
        );
    }

    #[test]
    fn incompatible_attrs_not_considered() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        repo.publish(&w.catalog, &w.build_image("mini")).unwrap();

        let (mut base_g, prim_g) = graph_of(&w, "redis");
        let mut attrs = w.template.attrs.clone();
        attrs.version = "18.04".into();
        base_g.base = attrs.clone();
        let sem = repo.state.semantic.read().unwrap();
        let sel = select_base_image(&sem, &attrs, &base_g, &prim_g);
        assert_eq!(
            sel.chosen_existing, None,
            "different quadruple must store new base"
        );
    }
}

#[cfg(test)]
mod replacement_tests {
    use super::*;
    use crate::repo::{ExpelliarmusRepo, StoredBase};
    use xpl_pkg::{Arch, BaseImageAttrs, PackageId, Version};
    use xpl_semgraph::{PkgRole, PkgVertex};
    use xpl_util::IStr;

    fn vx(name: &str, version: &str, size: u64, role: PkgRole) -> PkgVertex {
        PkgVertex {
            pkg: PackageId(0),
            name: IStr::new(name),
            version: Version::parse(version),
            arch: Arch::Amd64,
            size,
            role,
        }
    }

    fn base_graph(extra: &[(&str, &str)]) -> SemanticGraph {
        let mut vs = vec![
            vx("libc6", "2.23", 1800, PkgRole::BaseMember),
            vx("bash", "4.4", 120, PkgRole::BaseMember),
        ];
        for (n, v) in extra {
            vs.push(vx(n, v, 100, PkgRole::BaseMember));
        }
        SemanticGraph::from_parts(
            "bi",
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            vs,
            vec![],
        )
    }

    fn prim_graph(pkgs: &[(&str, &str)]) -> SemanticGraph {
        let vs = pkgs
            .iter()
            .map(|(n, v)| vx(n, v, 300, PkgRole::Primary))
            .collect();
        SemanticGraph::from_parts(
            "ps",
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            vs,
            vec![],
        )
    }

    /// Inject a stored base + master directly into repository state
    /// (bypasses publish, to construct multi-base scenarios that the
    /// single-flavour worlds cannot reach).
    fn inject_base(repo: &ExpelliarmusRepo, id: &str, bg: SemanticGraph, ps: SemanticGraph) {
        let mut full = SemanticGraph::from_parts(id, bg.base.clone(), bg.vertices.clone(), vec![]);
        full.vertices.extend(ps.vertices.iter().cloned());
        let full = SemanticGraph::from_parts(id, bg.base.clone(), full.vertices, vec![]);
        let master = xpl_semgraph::MasterGraph::create(&full);
        let mut sem = repo.state.semantic.write().unwrap();
        sem.bases.push(StoredBase {
            id: id.to_string(),
            attrs: bg.base.clone(),
            fs: xpl_guestfs::FsTree::new(),
            pkgdb: xpl_pkg::DpkgDb::new(),
            qcow_bytes: bg.total_size(),
            base_graph: bg,
        });
        sem.masters.insert(id.to_string(), master);
    }

    #[test]
    fn candidate_replacing_more_bases_wins() {
        // Two stored bases with the same quadruple, mutually compatible
        // masters. The incoming base (same content class) must pick one
        // existing base and report the other as replaceable.
        let world = xpl_workloads::World::small();
        let repo = ExpelliarmusRepo::new(world.env());
        inject_base(
            &repo,
            "base:a",
            base_graph(&[]),
            prim_graph(&[("redis", "6.0")]),
        );
        inject_base(
            &repo,
            "base:b",
            base_graph(&[]),
            prim_graph(&[("nginx", "1.18")]),
        );

        let incoming_bg = base_graph(&[]);
        let incoming_ps = prim_graph(&[("postgres", "9.5")]);
        let sem = repo.state.semantic.read().unwrap();
        let sel = select_base_image(&sem, &incoming_bg.base.clone(), &incoming_bg, &incoming_ps);
        let chosen = sel.chosen_existing.expect("must reuse a stored base");
        assert!(chosen == "base:a" || chosen == "base:b");
        // The other stored base is redundant (compatible) → replace list.
        assert_eq!(sel.replace.len(), 1);
        assert_ne!(sel.replace[0], chosen);
    }

    #[test]
    fn incompatible_stored_base_not_replaced() {
        // base:b hosts a package pinned at a version that conflicts with
        // base:a's content → a cannot replace b.
        let world = xpl_workloads::World::small();
        let repo = ExpelliarmusRepo::new(world.env());
        // base:a ships libwidget 2.0 in its base.
        inject_base(
            &repo,
            "base:a",
            base_graph(&[("libwidget", "2.0")]),
            prim_graph(&[("redis", "6.0")]),
        );
        // base:b's master hosts a primary needing libwidget 1.0 exactly.
        inject_base(
            &repo,
            "base:b",
            base_graph(&[("libwidget", "1.0")]),
            prim_graph(&[("libwidget", "1.0")]),
        );

        // Incoming base matches a's flavour.
        let incoming_bg = base_graph(&[("libwidget", "2.0")]);
        let incoming_ps = prim_graph(&[("mongo", "3.6")]);
        let sem = repo.state.semantic.read().unwrap();
        let sel = select_base_image(&sem, &incoming_bg.base.clone(), &incoming_bg, &incoming_ps);
        // Whatever is chosen, base:b must not be replaced by a 2.0-flavour
        // base (its hosted package pins 1.0).
        if let Some(chosen) = &sel.chosen_existing {
            if chosen == "base:a" {
                assert!(!sel.replace.contains(&"base:b".to_string()));
            }
        } else {
            assert!(!sel.replace.contains(&"base:b".to_string()));
        }
    }

    #[test]
    fn publish_after_replacement_keeps_invariants() {
        // End-to-end: two synthetic bases, then a real publish that can
        // consolidate them; invariants must hold afterwards.
        let world = xpl_workloads::World::small();
        let repo = ExpelliarmusRepo::new(world.env());
        use xpl_store::ImageStore;
        repo.publish(&world.catalog, &world.build_image("mini"))
            .unwrap();
        repo.publish(&world.catalog, &world.build_image("redis"))
            .unwrap();
        repo.publish(&world.catalog, &world.build_image("lamp"))
            .unwrap();
        repo.check_invariants().unwrap();
        assert_eq!(repo.base_count(), 1, "one quadruple → one base");
    }
}
