//! `xpl-core` — the Expelliarmus VMI management system (paper §IV).
//!
//! Components, mapping one-to-one onto Figure 2:
//!
//! * [`analyzer`] — the **semantic analyzer**: builds a VMI's semantic
//!   graph through the guest package manager and computes its similarity
//!   against the per-(type, distro, ver, arch) master graphs.
//! * [`publish`] — the **VMI decomposer** (Algorithm 1): stores
//!   non-redundant packages and user data, strips the image down to its
//!   base image, and updates master graphs.
//! * [`select`] — the **base-image selection** algorithm (Algorithm 2):
//!   picks a semantically compatible base image and a replace-list of
//!   stored bases it makes redundant.
//! * [`retrieve`] — the **VMI assembler** (Algorithm 3): copies the base
//!   image, resets it, imports user data and installs the requested
//!   packages from the local repository.
//! * [`repo`] — [`ExpelliarmusRepo`]: the repository tying these together
//!   behind the common [`xpl_store::ImageStore`] interface.

pub mod analyzer;
pub mod publish;
pub mod repo;
pub mod retrieve;
pub mod select;

pub use publish::PublishMode;
pub use repo::ExpelliarmusRepo;
