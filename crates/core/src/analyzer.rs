//! The semantic analyzer (§IV-B).
//!
//! Builds the uploaded VMI's semantic graph by querying the guest package
//! manager through the launched handle, then compares it against the
//! master graphs sharing its attribute quadruple. The master-graph design
//! means one comparison per quadruple instead of one per stored image; the
//! paper reports <100 ms of similarity computation per VMI, which is what
//! the `sim_per_vertex` charge reproduces.

use crate::repo::SemanticState;
use xpl_guestfs::{GuestHandle, Vmi};
use xpl_pkg::Catalog;
use xpl_semgraph::SemanticGraph;
use xpl_simio::{SimDuration, SimEnv};

/// Result of analyzing an uploaded image.
pub struct Analysis {
    pub graph: SemanticGraph,
    /// Best similarity against a same-quadruple master (0 if none exists —
    /// Table II row 1 reports 0 for Mini on the empty repository).
    pub similarity: f64,
    /// Base id of the most similar master.
    pub best_master: Option<String>,
}

/// Analyze `vmi` through `handle`, consulting the current masters. The
/// caller passes the semantic section it already holds (publish runs
/// under the mutation gate, so the read guard is uncontended).
pub fn analyze(
    env: &SimEnv,
    semantic: &SemanticState,
    catalog: &Catalog,
    handle: &GuestHandle<'_>,
    vmi: &Vmi,
) -> Analysis {
    // Graph construction: one package-manager query per installed package
    // (charged inside `installed_packages`).
    let installed = handle.installed_packages(catalog);
    // Base roots: manually installed packages that are not primaries —
    // i.e. the essential/base install the template provided.
    let primary_set: std::collections::HashSet<_> = vmi.primary.iter().copied().collect();
    let base_roots: Vec<_> = vmi
        .pkgdb
        .manual_ids()
        .into_iter()
        .filter(|id| !primary_set.contains(id))
        .collect();
    let graph = SemanticGraph::of_image(
        catalog,
        &vmi.name,
        vmi.base.clone(),
        &installed,
        &vmi.primary,
        &base_roots,
    );

    // Similarity against each master with the same attribute quadruple.
    let key = vmi.base.key();
    let mut best: Option<(String, f64)> = None;
    for base in semantic.bases_with_attrs(&key) {
        if let Some(master) = semantic.masters.get(&base.id) {
            let compared =
                graph.package_count() + master.package_count() + master.base_vertices.len();
            env.local
                .charge_fixed(SimDuration(env.costs.sim_per_vertex.0 * compared as u64));
            let s = master.similarity_to(&graph);
            if best.as_ref().is_none_or(|(_, b)| s > *b) {
                best = Some((base.id.clone(), s));
            }
        }
    }
    let (best_master, similarity) = match best {
        Some((id, s)) => (Some(id), s),
        None => (None, 0.0),
    };
    Analysis {
        graph,
        similarity,
        best_master,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::ExpelliarmusRepo;
    use xpl_store::ImageStore;
    use xpl_workloads::World;

    #[test]
    fn first_image_has_zero_similarity() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        let mut mini = w.build_image("mini");
        let env = repo.env().clone();
        let handle = GuestHandle::launch(&env, &mut mini);
        let vmi_copy = handle.vmi().clone();
        let sem = repo.state.semantic.read().unwrap();
        let a = analyze(&env, &sem, &w.catalog, &handle, &vmi_copy);
        assert_eq!(a.similarity, 0.0);
        assert!(a.best_master.is_none());
        assert!(a.graph.package_count() > 3);
    }

    #[test]
    fn second_similar_image_scores_high() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        let mini = w.build_image("mini");
        repo.publish(&w.catalog, &mini).unwrap();

        let mut redis = w.build_image("redis");
        let env = repo.env().clone();
        let handle = GuestHandle::launch(&env, &mut redis);
        let vmi_copy = handle.vmi().clone();
        let sem = repo.state.semantic.read().unwrap();
        let a = analyze(&env, &sem, &w.catalog, &handle, &vmi_copy);
        assert!(
            a.similarity > 0.5,
            "redis vs mini-master similarity {}",
            a.similarity
        );
        assert!(a.best_master.is_some());
    }

    #[test]
    fn similarity_computation_is_fast_in_sim_time() {
        // The paper claims <100 ms similarity cost per VMI; verify the
        // charged time for the analysis phase is of that order.
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        repo.publish(&w.catalog, &w.build_image("mini")).unwrap();
        let mut redis = w.build_image("redis");
        let env = repo.env().clone();
        let handle = GuestHandle::launch(&env, &mut redis);
        let vmi_copy = handle.vmi().clone();
        let sem = repo.state.semantic.read().unwrap();
        let t0 = env.clock.now();
        analyze(&env, &sem, &w.catalog, &handle, &vmi_copy);
        let dt = env.clock.since(t0).as_secs_f64();
        assert!(dt < 0.2, "analysis charged {dt}s");
    }
}
