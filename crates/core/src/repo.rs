//! The Expelliarmus repository.
//!
//! State layout mirrors Figure 2's "VMI database": a package store
//! (content-addressed `.deb` blobs + identity index), a user-data store,
//! the stored base images (one qcow2 per surviving base), the master
//! graphs, and a metadata database.

use xpl_guestfs::{FsTree, Vmi};
use xpl_metadb::{ColumnDef, Database, Schema, Value};
use xpl_pkg::{BaseImageAttrs, Catalog, DpkgDb, PackageId};
use xpl_semgraph::{MasterGraph, SemanticGraph};
use xpl_simio::SimEnv;
use xpl_store::{
    ContentStore, DeleteReport, ImageStore, PublishReport, RetrieveReport, RetrieveRequest,
    StoreError,
};
use xpl_util::{Digest, FxHashMap};

use crate::publish::PublishMode;

/// A stored base image: the serialized qcow2 (accounted by size) plus the
/// semantic snapshot needed for reassembly.
pub struct StoredBase {
    pub id: String,
    pub attrs: BaseImageAttrs,
    /// Filesystem of the reset base image.
    pub fs: FsTree,
    /// Installed packages of the base.
    pub pkgdb: DpkgDb,
    /// Size of the stored qcow2, materialized bytes.
    pub qcow_bytes: u64,
    /// Base-image subgraph.
    pub base_graph: SemanticGraph,
}

/// An exported package in the index.
#[derive(Clone)]
pub struct IndexedPackage {
    pub digest: Digest,
    pub package: PackageId,
    pub installed_size: u64,
}

/// Stored user data of one image.
#[derive(Clone, Default)]
pub struct StoredData {
    pub files: Vec<xpl_guestfs::FileRecord>,
    pub digests: Vec<Digest>,
}

/// Internal repository state shared by the algorithm modules.
pub struct RepoState {
    pub env: SimEnv,
    pub mode: PublishMode,
    /// `.deb` blobs.
    pub packages: ContentStore,
    /// identity (`name=version/arch`) → blob + metadata.
    pub package_index: FxHashMap<String, IndexedPackage>,
    /// User-data blobs.
    pub data_store: ContentStore,
    /// image name → its user-data manifest.
    pub data_index: FxHashMap<String, StoredData>,
    pub bases: Vec<StoredBase>,
    /// base id → master graph.
    pub masters: FxHashMap<String, MasterGraph>,
    /// Metadata DB (charged against the repository device).
    pub db: Database,
    /// Image names published (for duplicate detection / stats).
    pub published: Vec<String>,
    /// image name → package blob digests its latest publish references.
    /// The churn oracle checks CAS refcounts against this exact map.
    pub image_packages: FxHashMap<String, Vec<Digest>>,
}

impl RepoState {
    pub fn new(env: SimEnv, mode: PublishMode) -> Self {
        let mut db = Database::on_device(std::sync::Arc::clone(&env.repo));
        db.create_table(Schema::new(
            "packages",
            vec![
                ColumnDef::indexed("identity"),
                ColumnDef::plain("digest"),
                ColumnDef::plain("deb_size"),
            ],
        ))
        .expect("fresh db");
        db.create_table(Schema::new(
            "bases",
            vec![
                ColumnDef::indexed("id"),
                ColumnDef::plain("attrs"),
                ColumnDef::plain("qcow_bytes"),
            ],
        ))
        .expect("fresh db");
        db.create_table(Schema::new(
            "images",
            vec![
                ColumnDef::indexed("name"),
                ColumnDef::plain("base_id"),
                ColumnDef::plain("similarity"),
            ],
        ))
        .expect("fresh db");
        RepoState {
            packages: ContentStore::new(std::sync::Arc::clone(&env.repo)),
            data_store: ContentStore::new(std::sync::Arc::clone(&env.repo)),
            package_index: FxHashMap::default(),
            data_index: FxHashMap::default(),
            bases: Vec::new(),
            masters: FxHashMap::default(),
            db,
            published: Vec::new(),
            image_packages: FxHashMap::default(),
            env,
            mode,
        }
    }

    /// Release one image reference to a package blob. When the last
    /// reference drops, the blob, its identity index entries and its
    /// metadata rows go with it. Returns freed bytes.
    pub fn release_package_ref(&mut self, digest: &Digest) -> Result<u64, StoreError> {
        let freed = self
            .packages
            .release(digest)
            .map_err(|_| StoreError::Corrupt(format!("package blob {digest}")))?;
        if freed > 0 {
            // Linear scan over the index, but only on last-ref frees — the
            // cold path of delete/upgrade, never publish or retrieve.
            let identities: Vec<String> = self
                .package_index
                .iter()
                .filter(|(_, p)| p.digest == *digest)
                .map(|(identity, _)| identity.clone())
                .collect();
            for identity in identities {
                self.package_index.remove(&identity);
                if let Ok(rows) = self
                    .db
                    .find_by("packages", "identity", &Value::from(identity))
                {
                    for row in rows {
                        let _ = self.db.delete("packages", row);
                    }
                }
            }
        }
        Ok(freed)
    }

    pub fn base_by_id(&self, id: &str) -> Option<&StoredBase> {
        self.bases.iter().find(|b| b.id == id)
    }

    pub fn bases_with_attrs(&self, key: &str) -> Vec<&StoredBase> {
        self.bases.iter().filter(|b| b.attrs.key() == key).collect()
    }

    pub fn remove_base(&mut self, id: &str) -> Option<StoredBase> {
        let pos = self.bases.iter().position(|b| b.id == id)?;
        self.masters.remove(id);
        Some(self.bases.remove(pos))
    }

    /// Repository footprint: package blobs + data blobs + base qcow2s +
    /// metadata payload.
    pub fn repo_bytes(&self) -> u64 {
        self.packages.unique_bytes()
            + self.data_store.unique_bytes()
            + self.bases.iter().map(|b| b.qcow_bytes).sum::<u64>()
            + self.db.payload_bytes()
    }
}

/// The Expelliarmus repository (public API).
pub struct ExpelliarmusRepo {
    pub(crate) state: RepoState,
}

impl ExpelliarmusRepo {
    /// Standard (similarity-aware) repository.
    pub fn new(env: SimEnv) -> Self {
        ExpelliarmusRepo {
            state: RepoState::new(env, PublishMode::Expelliarmus),
        }
    }

    /// Variant used in Figure 4b's "Semantic" series: decomposes but
    /// exports every package regardless of repository contents.
    pub fn with_mode(env: SimEnv, mode: PublishMode) -> Self {
        ExpelliarmusRepo {
            state: RepoState::new(env, mode),
        }
    }

    pub fn base_count(&self) -> usize {
        self.state.bases.len()
    }

    pub fn package_count(&self) -> usize {
        self.state.package_index.len()
    }

    pub fn masters(&self) -> impl Iterator<Item = &MasterGraph> {
        self.state.masters.values()
    }

    pub fn env(&self) -> &SimEnv {
        &self.state.env
    }

    /// Repository invariants (exercised by integration tests):
    /// 1. exactly one master graph per stored base;
    /// 2. every master's members' packages are compatible with its base
    ///    (compatibility = 1 by §III-H);
    /// 3. no two stored bases share the same attribute quadruple *and*
    ///    mutually compatible masters (the selection algorithm must have
    ///    consolidated them).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.state.masters.len() != self.state.bases.len() {
            return Err(format!(
                "{} masters vs {} bases",
                self.state.masters.len(),
                self.state.bases.len()
            ));
        }
        for base in &self.state.bases {
            let master = self
                .state
                .masters
                .get(&base.id)
                .ok_or_else(|| format!("base {} has no master", base.id))?;
            let mgraph = master.as_graph();
            let comp = xpl_semgraph::compatibility(&base.base_graph, &mgraph);
            if comp != 1.0 {
                return Err(format!(
                    "master of {} incompatible with its base: {comp}",
                    base.id
                ));
            }
        }
        Ok(())
    }
}

impl ImageStore for ExpelliarmusRepo {
    fn name(&self) -> &'static str {
        "Expelliarmus"
    }

    fn publish(&mut self, catalog: &Catalog, vmi: &Vmi) -> Result<PublishReport, StoreError> {
        crate::publish::publish(&mut self.state, catalog, vmi)
    }

    fn retrieve(
        &mut self,
        catalog: &Catalog,
        request: &RetrieveRequest,
    ) -> Result<(Vmi, RetrieveReport), StoreError> {
        crate::retrieve::retrieve(&mut self.state, catalog, request)
    }

    fn delete(&mut self, name: &str) -> Result<DeleteReport, StoreError> {
        let env = self.state.env.clone();
        let t0 = env.clock.now();
        let before = self.state.repo_bytes();
        let known = self.state.image_packages.contains_key(name)
            || self.state.data_index.contains_key(name)
            || self.state.published.iter().any(|n| n == name);
        if !known {
            return Err(StoreError::NotFound(name.to_string()));
        }
        let mut units = 0usize;
        if let Some(refs) = self.state.image_packages.remove(name) {
            for digest in refs {
                if self.state.release_package_ref(&digest)? > 0 {
                    units += 1;
                }
            }
        }
        if let Some(data) = self.state.data_index.remove(name) {
            for digest in &data.digests {
                let freed = self
                    .state
                    .data_store
                    .release(digest)
                    .map_err(|_| StoreError::Corrupt(format!("data blob {digest}")))?;
                if freed > 0 {
                    units += 1;
                }
            }
        }
        self.state.published.retain(|n| n != name);
        if let Ok(rows) = self.state.db.find_by("images", "name", &Value::from(name)) {
            for row in rows {
                let _ = self.state.db.delete("images", row);
            }
        }
        // Stored bases and master graphs are shared substrate across all
        // published images; deletes keep them (Algorithm 1's consolidation
        // already bounds their number).
        Ok(DeleteReport {
            image: name.to_string(),
            duration: env.clock.since(t0),
            bytes_freed: before.saturating_sub(self.state.repo_bytes()),
            units_removed: units,
        })
    }

    fn repo_bytes(&self) -> u64 {
        self.state.repo_bytes()
    }

    fn check_integrity(&self) -> Result<(), String> {
        self.check_invariants()?;
        let st = &self.state;
        // Package CAS refcounts == live image references, exactly.
        let mut expected: FxHashMap<Digest, u32> = FxHashMap::default();
        for refs in st.image_packages.values() {
            for d in refs {
                *expected.entry(*d).or_insert(0) += 1;
            }
        }
        st.packages
            .audit_refs(&expected)
            .map_err(|e| format!("package CAS: {e}"))?;
        for (identity, p) in &st.package_index {
            if !st.packages.contains(&p.digest) {
                return Err(format!("index entry {identity} points at a missing blob"));
            }
        }
        // Data CAS refcounts == live data manifests.
        let mut expected_data: FxHashMap<Digest, u32> = FxHashMap::default();
        for data in st.data_index.values() {
            for d in &data.digests {
                *expected_data.entry(*d).or_insert(0) += 1;
            }
        }
        st.data_store
            .audit_refs(&expected_data)
            .map_err(|e| format!("data CAS: {e}"))?;
        for name in st.data_index.keys() {
            if !st.published.iter().any(|n| n == name) {
                return Err(format!("data manifest for unpublished image {name}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_workloads::World;

    #[test]
    fn fresh_repo_is_empty() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        assert_eq!(repo.repo_bytes(), 0);
        assert_eq!(repo.base_count(), 0);
        assert_eq!(repo.package_count(), 0);
        repo.check_invariants().unwrap();
    }
}
