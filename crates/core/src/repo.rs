//! The Expelliarmus repository.
//!
//! State layout mirrors Figure 2's "VMI database": a package store
//! (content-addressed `.deb` blobs + identity index), a user-data store,
//! the stored base images (one qcow2 per surviving base), the master
//! graphs, and a metadata database.
//!
//! # Concurrency model
//!
//! [`RepoState`] is no longer one big `&mut` value: each section is
//! independently lockable so an operation holds only the shards it
//! touches —
//!
//! * the package and user-data CAS are digest-sharded and internally
//!   synchronized (`xpl_store::cas`);
//! * `package_index`, `data_index`, `published` and `image_packages` are
//!   `RwLock`s held for map access only;
//! * `semantic` (stored bases + master graphs) is one `RwLock`, because
//!   base selection and master consolidation read and write them as a
//!   unit;
//! * the metadata database is a `Mutex` (row operations are short).
//!
//! Retrievals take only read guards and run concurrently with each
//! other and hold the `op_gate` in read mode, so a same-name delete or
//! upgrade-publish can never free CAS blobs out from under an in-flight
//! assembly. Publishes and deletes hold `op_gate` in write mode:
//! Algorithm 1 is order-sensitive (similarity scores, base selection and
//! master consolidation all depend on what is already stored), so
//! repository mutations serialize — which also keeps replayed traces
//! deterministic. Lock order: `op_gate` → `semantic` →
//! `package_index` → `data_index` → `published` → `image_packages` →
//! `db`; guards of later locks are never held while acquiring earlier
//! ones.

use std::sync::{Mutex, RwLock};

use xpl_guestfs::{FsTree, Vmi};
use xpl_metadb::{ColumnDef, Database, Schema, Value};
use xpl_pkg::{BaseImageAttrs, Catalog, DpkgDb, PackageId};
use xpl_semgraph::{MasterGraph, SemanticGraph};
use xpl_simio::SimEnv;
use xpl_store::{
    ContentStore, DeleteReport, ImageStore, PublishReport, RetrieveReport, RetrieveRequest,
    StoreError,
};
use xpl_util::{Digest, FxHashMap};

use crate::publish::PublishMode;

/// A stored base image: the serialized qcow2 (accounted by size) plus the
/// semantic snapshot needed for reassembly.
pub struct StoredBase {
    pub id: String,
    pub attrs: BaseImageAttrs,
    /// Filesystem of the reset base image.
    pub fs: FsTree,
    /// Installed packages of the base.
    pub pkgdb: DpkgDb,
    /// Size of the stored qcow2, materialized bytes.
    pub qcow_bytes: u64,
    /// Base-image subgraph.
    pub base_graph: SemanticGraph,
}

/// An exported package in the index.
#[derive(Clone)]
pub struct IndexedPackage {
    pub digest: Digest,
    pub package: PackageId,
    pub installed_size: u64,
}

/// Stored user data of one image.
#[derive(Clone, Default)]
pub struct StoredData {
    pub files: Vec<xpl_guestfs::FileRecord>,
    pub digests: Vec<Digest>,
}

/// The semantic section of the repository: stored bases and their master
/// graphs. Selection (Algorithm 2) and consolidation (Algorithm 1 lines
/// 22–28) read and write these together, so they share one lock.
#[derive(Default)]
pub struct SemanticState {
    pub bases: Vec<StoredBase>,
    /// base id → master graph.
    pub masters: FxHashMap<String, MasterGraph>,
}

impl SemanticState {
    pub fn base_by_id(&self, id: &str) -> Option<&StoredBase> {
        self.bases.iter().find(|b| b.id == id)
    }

    pub fn bases_with_attrs(&self, key: &str) -> Vec<&StoredBase> {
        self.bases.iter().filter(|b| b.attrs.key() == key).collect()
    }

    pub fn remove_base(&mut self, id: &str) -> Option<StoredBase> {
        let pos = self.bases.iter().position(|b| b.id == id)?;
        self.masters.remove(id);
        Some(self.bases.remove(pos))
    }

    pub fn qcow_bytes_total(&self) -> u64 {
        self.bases.iter().map(|b| b.qcow_bytes).sum()
    }
}

/// Internal repository state shared by the algorithm modules.
pub struct RepoState {
    pub env: SimEnv,
    pub mode: PublishMode,
    /// `.deb` blobs (digest-sharded, internally synchronized).
    pub packages: ContentStore,
    /// identity (`name=version/arch`) → blob + metadata.
    pub package_index: RwLock<FxHashMap<String, IndexedPackage>>,
    /// User-data blobs.
    pub data_store: ContentStore,
    /// image name → its user-data manifest.
    pub data_index: RwLock<FxHashMap<String, StoredData>>,
    /// Stored bases + master graphs.
    pub semantic: RwLock<SemanticState>,
    /// Metadata DB (charged against the repository device).
    pub db: Mutex<Database>,
    /// Image names published (for duplicate detection / stats).
    pub published: RwLock<Vec<String>>,
    /// image name → package blob digests its latest publish references.
    /// The churn oracle checks CAS refcounts against this exact map.
    pub image_packages: RwLock<FxHashMap<String, Vec<Digest>>>,
    /// The operation gate: publish/delete hold it in write mode
    /// (Algorithm 1 is order-sensitive, so mutations serialize — and a
    /// mutation can release CAS blobs, which must never happen under an
    /// in-flight retrieval); retrievals hold it in read mode and run
    /// concurrently with each other.
    pub op_gate: RwLock<()>,
}

impl RepoState {
    pub fn new(env: SimEnv, mode: PublishMode) -> Self {
        Self::with_durable(env, mode, None, None)
    }

    /// Repository whose package and user-data CAS write through to
    /// durable log-structured backends (see `xpl_persist`).
    pub fn with_durable(
        env: SimEnv,
        mode: PublishMode,
        packages: Option<std::sync::Arc<xpl_persist::DurableContentStore>>,
        data: Option<std::sync::Arc<xpl_persist::DurableContentStore>>,
    ) -> Self {
        let mut db = Database::on_device(std::sync::Arc::clone(&env.repo));
        db.create_table(Schema::new(
            "packages",
            vec![
                ColumnDef::indexed("identity"),
                ColumnDef::plain("digest"),
                ColumnDef::plain("deb_size"),
            ],
        ))
        .expect("fresh db");
        db.create_table(Schema::new(
            "bases",
            vec![
                ColumnDef::indexed("id"),
                ColumnDef::plain("attrs"),
                ColumnDef::plain("qcow_bytes"),
            ],
        ))
        .expect("fresh db");
        db.create_table(Schema::new(
            "images",
            vec![
                ColumnDef::indexed("name"),
                ColumnDef::plain("base_id"),
                ColumnDef::plain("similarity"),
            ],
        ))
        .expect("fresh db");
        let attach =
            |durable: Option<std::sync::Arc<xpl_persist::DurableContentStore>>| match durable {
                Some(d) => ContentStore::new_durable(std::sync::Arc::clone(&env.repo), d),
                None => ContentStore::new(std::sync::Arc::clone(&env.repo)),
            };
        RepoState {
            packages: attach(packages),
            data_store: attach(data),
            package_index: RwLock::new(FxHashMap::default()),
            data_index: RwLock::new(FxHashMap::default()),
            semantic: RwLock::new(SemanticState::default()),
            db: Mutex::new(db),
            published: RwLock::new(Vec::new()),
            image_packages: RwLock::new(FxHashMap::default()),
            op_gate: RwLock::new(()),
            env,
            mode,
        }
    }

    /// Release one image reference to a package blob. When the last
    /// reference drops, the blob, its identity index entries and its
    /// metadata rows go with it. Returns freed bytes.
    pub fn release_package_ref(&self, digest: &Digest) -> Result<u64, StoreError> {
        let freed = self
            .packages
            .release(digest)
            .map_err(|_| StoreError::Corrupt(format!("package blob {digest}")))?;
        if freed > 0 {
            // Linear scan over the index, but only on last-ref frees — the
            // cold path of delete/upgrade, never publish or retrieve.
            let identities: Vec<String> = {
                let index = self.package_index.read().unwrap();
                index
                    .iter()
                    .filter(|(_, p)| p.digest == *digest)
                    .map(|(identity, _)| identity.clone())
                    .collect()
            };
            for identity in identities {
                self.package_index.write().unwrap().remove(&identity);
                let mut db = self.db.lock().unwrap();
                if let Ok(rows) = db.find_by("packages", "identity", &Value::from(identity)) {
                    for row in rows {
                        let _ = db.delete("packages", row);
                    }
                }
            }
        }
        Ok(freed)
    }

    /// Repository footprint: package blobs + data blobs + base qcow2s +
    /// metadata payload.
    pub fn repo_bytes(&self) -> u64 {
        self.packages.unique_bytes()
            + self.data_store.unique_bytes()
            + self.semantic.read().unwrap().qcow_bytes_total()
            + self.db.lock().unwrap().payload_bytes()
    }
}

/// The Expelliarmus repository (public API).
pub struct ExpelliarmusRepo {
    pub(crate) state: RepoState,
}

impl ExpelliarmusRepo {
    /// Standard (similarity-aware) repository.
    pub fn new(env: SimEnv) -> Self {
        ExpelliarmusRepo {
            state: RepoState::new(env, PublishMode::Expelliarmus),
        }
    }

    /// Variant used in Figure 4b's "Semantic" series: decomposes but
    /// exports every package regardless of repository contents.
    pub fn with_mode(env: SimEnv, mode: PublishMode) -> Self {
        ExpelliarmusRepo {
            state: RepoState::new(env, mode),
        }
    }

    /// Fully durable repository: the package and user-data CAS write
    /// through to `xpl-persist` log-structured stores, so a crash of
    /// the medium recovers (WAL replay over the manifest) to exactly
    /// the in-memory content state — checked op-for-op by the churn
    /// oracle's `Crash`/`Recover` handling.
    pub fn new_durable(
        env: SimEnv,
        packages: std::sync::Arc<xpl_persist::DurableContentStore>,
        data: std::sync::Arc<xpl_persist::DurableContentStore>,
    ) -> Self {
        ExpelliarmusRepo {
            state: RepoState::with_durable(
                env,
                PublishMode::Expelliarmus,
                Some(packages),
                Some(data),
            ),
        }
    }

    /// Builder: select the codec tier of both content-addressed
    /// sections (package blobs and user-data blobs). The repository's
    /// size ledger and fingerprints are logical, so they are
    /// codec-invariant; the tier changes only the in-memory
    /// representation and the real CPU of (de)compression.
    pub fn with_tier(mut self, tier: xpl_store::TierPolicy) -> Self {
        self.state.packages = self.state.packages.with_tier(tier);
        self.state.data_store = self.state.data_store.with_tier(tier);
        self
    }

    pub fn base_count(&self) -> usize {
        self.state.semantic.read().unwrap().bases.len()
    }

    pub fn package_count(&self) -> usize {
        self.state.package_index.read().unwrap().len()
    }

    /// Snapshot of the master graphs (cloned out of the semantic lock).
    pub fn masters(&self) -> Vec<MasterGraph> {
        self.state
            .semantic
            .read()
            .unwrap()
            .masters
            .values()
            .cloned()
            .collect()
    }

    pub fn env(&self) -> &SimEnv {
        &self.state.env
    }

    /// Repository invariants (exercised by integration tests):
    /// 1. exactly one master graph per stored base;
    /// 2. every master's members' packages are compatible with its base
    ///    (compatibility = 1 by §III-H);
    /// 3. no two stored bases share the same attribute quadruple *and*
    ///    mutually compatible masters (the selection algorithm must have
    ///    consolidated them).
    pub fn check_invariants(&self) -> Result<(), String> {
        let sem = self.state.semantic.read().unwrap();
        if sem.masters.len() != sem.bases.len() {
            return Err(format!(
                "{} masters vs {} bases",
                sem.masters.len(),
                sem.bases.len()
            ));
        }
        for base in &sem.bases {
            let master = sem
                .masters
                .get(&base.id)
                .ok_or_else(|| format!("base {} has no master", base.id))?;
            let mgraph = master.as_graph();
            let comp = xpl_semgraph::compatibility(&base.base_graph, &mgraph);
            if comp != 1.0 {
                return Err(format!(
                    "master of {} incompatible with its base: {comp}",
                    base.id
                ));
            }
        }
        Ok(())
    }
}

impl ImageStore for ExpelliarmusRepo {
    fn name(&self) -> &'static str {
        "Expelliarmus"
    }

    fn attach_obs(&self, reg: &std::sync::Arc<xpl_obs::Registry>) {
        // Both shards share one registry: their `cas.*` counters resolve
        // to the same metric names, so the snapshot reports the
        // repository-wide aggregate (relaxed adds commute).
        self.state.packages.attach_obs(reg);
        self.state.data_store.attach_obs(reg);
    }

    fn publish(&self, catalog: &Catalog, vmi: &Vmi) -> Result<PublishReport, StoreError> {
        crate::publish::publish(&self.state, catalog, vmi)
    }

    fn retrieve(
        &self,
        catalog: &Catalog,
        request: &RetrieveRequest,
    ) -> Result<(Vmi, RetrieveReport), StoreError> {
        crate::retrieve::retrieve(&self.state, catalog, request)
    }

    fn retrieve_range(
        &self,
        catalog: &Catalog,
        request: &RetrieveRequest,
        start: u64,
        len: u64,
    ) -> Result<(Vec<u8>, RetrieveReport), StoreError> {
        crate::retrieve::retrieve_range(&self.state, catalog, request, start, len)
    }

    fn delete(&self, name: &str) -> Result<DeleteReport, StoreError> {
        let _gate = self.state.op_gate.write().unwrap();
        let env = self.state.env.clone();
        let t0 = env.clock.now();
        let before = self.state.repo_bytes();
        // One guard per probe (guards of `||` operands live to the end of
        // the statement — keep them from overlapping out of lock order).
        let in_packages = { self.state.image_packages.read().unwrap().contains_key(name) };
        let in_data = { self.state.data_index.read().unwrap().contains_key(name) };
        let in_published = {
            self.state
                .published
                .read()
                .unwrap()
                .iter()
                .any(|n| n == name)
        };
        let known = in_packages || in_data || in_published;
        if !known {
            return Err(StoreError::NotFound(name.to_string()));
        }
        let mut units = 0usize;
        let refs = self.state.image_packages.write().unwrap().remove(name);
        if let Some(refs) = refs {
            for digest in refs {
                if self.state.release_package_ref(&digest)? > 0 {
                    units += 1;
                }
            }
        }
        let data = self.state.data_index.write().unwrap().remove(name);
        if let Some(data) = data {
            for digest in &data.digests {
                let freed = self
                    .state
                    .data_store
                    .release(digest)
                    .map_err(|_| StoreError::Corrupt(format!("data blob {digest}")))?;
                if freed > 0 {
                    units += 1;
                }
            }
        }
        self.state.published.write().unwrap().retain(|n| n != name);
        {
            let mut db = self.state.db.lock().unwrap();
            if let Ok(rows) = db.find_by("images", "name", &Value::from(name)) {
                for row in rows {
                    let _ = db.delete("images", row);
                }
            }
        }
        // Stored bases and master graphs are shared substrate across all
        // published images; deletes keep them (Algorithm 1's consolidation
        // already bounds their number).
        Ok(DeleteReport {
            image: name.to_string(),
            duration: env.clock.since(t0),
            bytes_freed: before.saturating_sub(self.state.repo_bytes()),
            units_removed: units,
        })
    }

    fn repo_bytes(&self) -> u64 {
        self.state.repo_bytes()
    }

    fn check_integrity(&self) -> Result<(), String> {
        self.check_invariants()?;
        let st = &self.state;
        // Package CAS refcounts == live image references, exactly.
        let mut expected: FxHashMap<Digest, u32> = FxHashMap::default();
        for refs in st.image_packages.read().unwrap().values() {
            for d in refs {
                *expected.entry(*d).or_insert(0) += 1;
            }
        }
        st.packages
            .audit_refs(&expected)
            .map_err(|e| format!("package CAS: {e}"))?;
        for (identity, p) in st.package_index.read().unwrap().iter() {
            if !st.packages.contains(&p.digest) {
                return Err(format!("index entry {identity} points at a missing blob"));
            }
        }
        // Data CAS refcounts == live data manifests.
        let mut expected_data: FxHashMap<Digest, u32> = FxHashMap::default();
        for data in st.data_index.read().unwrap().values() {
            for d in &data.digests {
                *expected_data.entry(*d).or_insert(0) += 1;
            }
        }
        st.data_store
            .audit_refs(&expected_data)
            .map_err(|e| format!("data CAS: {e}"))?;
        {
            let data_index = st.data_index.read().unwrap();
            let published = st.published.read().unwrap();
            for name in data_index.keys() {
                if !published.iter().any(|n| n == name) {
                    return Err(format!("data manifest for unpublished image {name}"));
                }
            }
        }
        Ok(())
    }

    fn check_integrity_deep(&self) -> Result<(), String> {
        self.check_integrity()?;
        self.state
            .packages
            .check_integrity(true)
            .map_err(|e| format!("package CAS content: {e}"))?;
        self.state
            .data_store
            .check_integrity(true)
            .map_err(|e| format!("data CAS content: {e}"))
    }

    fn maintain(&self) -> xpl_store::MaintainReport {
        // Take the gate in write mode: maintenance is a mutation of the
        // representation and must not race an in-flight retrieval.
        let _gate = self.state.op_gate.write().unwrap();
        let t0 = self.state.env.clock.now();
        let pkgs = self.state.packages.maintain();
        let data = self.state.data_store.maintain();
        xpl_store::MaintainReport {
            duration: self.state.env.clock.since(t0),
            scanned: pkgs.scanned + data.scanned,
            promoted: pkgs.promoted + data.promoted,
            demoted: pkgs.demoted + data.demoted,
            bytes_delta: 0,
        }
    }

    fn cas_fingerprints(&self) -> Vec<(String, String)> {
        vec![
            (
                "packages".to_string(),
                self.state.packages.state_fingerprint(),
            ),
            (
                "data".to_string(),
                self.state.data_store.state_fingerprint(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_workloads::World;

    #[test]
    fn fresh_repo_is_empty() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        assert_eq!(repo.repo_bytes(), 0);
        assert_eq!(repo.base_count(), 0);
        assert_eq!(repo.package_count(), 0);
        repo.check_invariants().unwrap();
    }
}
