//! VMI publishing — the decomposer (Algorithm 1).
//!
//! Steps, following the listing: extract the primary-package subgraph;
//! store packages absent from the repository (lines 2–5); store user data
//! (line 6); remove primary packages, user data and unused dependencies
//! from the image (lines 7–11); select a base image (line 14); store the
//! new base + master graph, or merge into the selected base's master
//! (lines 15–21); absorb and delete replaced bases (lines 22–28).
//!
//! Publishing holds the repository's operation gate in write mode for
//! its whole run: Algorithm 1 is order-sensitive (similarity, base
//! selection and master consolidation all read the evolving repository),
//! so publishes serialize — and because retrievals hold the same gate in
//! read mode, a publish can never release a replaced generation's CAS
//! blobs while an assembly is reading them.

use crate::analyzer;
use crate::repo::{IndexedPackage, RepoState, StoredBase, StoredData};
use crate::select::select_base_image;
use xpl_guestfs::{GuestHandle, Vmi};
use xpl_metadb::Value;
use xpl_pkg::Catalog;
use xpl_semgraph::MasterGraph;
use xpl_store::{PublishReport, StoreError};
use xpl_util::{Digest, IStr};

/// Publishing behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PublishMode {
    /// Full Expelliarmus: exports only packages the repository lacks.
    Expelliarmus,
    /// Figure 4b's "Semantic" variant: decomposes the image but exports
    /// every package of the primary subgraph regardless of what is stored
    /// (no similarity-driven skipping). Storage is still deduplicated by
    /// content; only the export work differs.
    SemanticDecomposition,
}

/// Run Algorithm 1 for `vmi`.
pub fn publish(
    state: &RepoState,
    catalog: &Catalog,
    vmi: &Vmi,
) -> Result<PublishReport, StoreError> {
    let _gate = state.op_gate.write().unwrap();
    let env = state.env.clone();
    let t0 = env.clock.now();
    let bytes_before = state.repo_bytes();
    let mut report = PublishReport {
        image: vmi.name.clone(),
        ..Default::default()
    };

    // Work on a private copy: decomposition is destructive.
    let mut work = vmi.clone();
    let mut handle = report.breakdown.measure(&env.clock, "handle", || {
        GuestHandle::launch(&env, &mut work)
    });

    // ---- Semantic analysis (§IV-B). --------------------------------
    let vmi_snapshot = handle.vmi().clone();
    let analysis = report.breakdown.measure(&env.clock, "analyze", || {
        let semantic = state.semantic.read().unwrap();
        analyzer::analyze(&env, &semantic, catalog, &handle, &vmi_snapshot)
    });
    report.similarity = analysis.similarity;
    let graph = analysis.graph;
    let primary_sub = graph.primary_subgraph();

    // ---- Export non-redundant packages (lines 1–5). -----------------
    // Every package this image's primary subgraph touches takes one CAS
    // reference (new export or `add_ref` on a stored blob), so that
    // delete/re-publish can release exactly this image's share later.
    let mut exported = 0usize;
    let mut package_refs: Vec<Digest> = Vec::with_capacity(primary_sub.vertices.len());
    report.breakdown.measure(
        &env.clock,
        "export packages",
        || -> Result<(), StoreError> {
            for v in &primary_sub.vertices {
                let meta = catalog.get(v.pkg);
                let identity = meta.identity();
                let indexed_digest = state
                    .package_index
                    .read()
                    .unwrap()
                    .get(&identity)
                    .map(|p| p.digest);
                if let Some(digest) = indexed_digest {
                    if state.mode == PublishMode::SemanticDecomposition {
                        // The variant rebuilds the package anyway; the CAS
                        // dedups it, and the put doubles as this image's ref.
                        let deb = handle.export_deb(catalog, v.pkg);
                        let was_new = state.packages.put_with_digest(deb.digest, &deb.bytes);
                        debug_assert!(!was_new);
                    } else {
                        // An indexed identity whose blob is gone is corruption;
                        // recording the phantom ref would poison the ledger.
                        state.packages.add_ref(digest).map_err(|_| {
                            StoreError::Corrupt(format!("indexed package blob missing: {identity}"))
                        })?;
                    }
                    package_refs.push(digest);
                    continue;
                }
                // Rebuild the binary package through the guest (charged by
                // installed size) and store it.
                let deb = handle.export_deb(catalog, v.pkg);
                state.packages.put_with_digest(deb.digest, &deb.bytes);
                state.package_index.write().unwrap().insert(
                    identity.clone(),
                    IndexedPackage {
                        digest: deb.digest,
                        package: v.pkg,
                        installed_size: meta.installed_size,
                    },
                );
                let _ = state.db.lock().unwrap().insert(
                    "packages",
                    vec![
                        Value::from(identity),
                        Value::from(deb.digest.to_hex()),
                        Value::from(deb.bytes.len() as u64),
                    ],
                );
                package_refs.push(deb.digest);
                exported += 1;
            }
            Ok(())
        },
    )?;
    report.units_stored = exported;

    // ---- Store user data (line 6). -----------------------------------
    // On re-publish the previous generation's data manifest comes back
    // here and is released after the new one holds its references.
    let old_data = report.breakdown.measure(&env.clock, "store data", || {
        let mut stored = StoredData::default();
        for f in handle.vmi().user_data_files() {
            let content = f.content();
            let (digest, _) = state.data_store.put(&content);
            stored.files.push(f);
            stored.digests.push(digest);
        }
        state
            .data_index
            .write()
            .unwrap()
            .insert(handle.vmi().name.clone(), stored)
    });

    // ---- Strip the image down to the base (lines 7–11). --------------
    report.breakdown.measure(&env.clock, "strip", || {
        let primary_names: Vec<IStr> = handle
            .vmi()
            .primary
            .iter()
            .map(|&id| catalog.get(id).name)
            .collect();
        for name in primary_names {
            handle.remove_package(catalog, name);
        }
        handle.autoremove(catalog);
        let work = handle.vmi_mut();
        let junk = work.fs.remove_junk();
        let data = work.fs.remove_user_data();
        env.local.charge_fixed(env.costs.pkg_remove(junk + data));
    });

    // ---- Base-image selection (line 14 / Algorithm 2). ---------------
    let base_graph = graph.base_subgraph();
    let base_attrs = handle.vmi().base.clone();
    let selection = report.breakdown.measure(&env.clock, "select base", || {
        let semantic = state.semantic.read().unwrap();
        select_base_image(&semantic, &base_attrs, &base_graph, &primary_sub)
    });

    let base_id = match &selection.chosen_existing {
        None => {
            // Store the incoming base (lines 15–17): reset, repack,
            // upload, create its master graph.
            let id = format!(
                "base:{}:{}",
                base_attrs.key(),
                state.semantic.read().unwrap().bases.len()
            );
            report.breakdown.measure(&env.clock, "store base", || {
                handle.sysprep_reset();
                let work = handle.vmi_mut();
                work.primary.clear();
                work.refresh_status_file(catalog);
                work.rebuild_disk();
                let packed = work.disk.serialize();
                let qcow_bytes = packed.len() as u64;
                env.local.charge_fixed(xpl_simio::SimDuration(
                    env.costs.base_pack_per_byte.0
                        * qcow_bytes.saturating_mul(xpl_util::SCALE_FACTOR),
                ));
                env.local.charge_copy_to(&env.repo, qcow_bytes);
                let _ = state.db.lock().unwrap().insert(
                    "bases",
                    vec![
                        Value::from(id.clone()),
                        Value::from(work.base.key()),
                        Value::from(qcow_bytes),
                    ],
                );
                let mut semantic = state.semantic.write().unwrap();
                semantic.bases.push(StoredBase {
                    id: id.clone(),
                    attrs: work.base.clone(),
                    fs: work.fs.clone(),
                    pkgdb: work.pkgdb.clone(),
                    qcow_bytes,
                    base_graph: base_graph.clone(),
                });
                semantic
                    .masters
                    .insert(id.clone(), MasterGraph::create(&graph));
            });
            id
        }
        Some(id) => {
            // Merge into the existing master (lines 19–21).
            let mut semantic = state.semantic.write().unwrap();
            let master = semantic
                .masters
                .get_mut(id)
                .ok_or_else(|| StoreError::Corrupt(format!("master missing for base {id}")))?;
            master.absorb(&graph);
            id.clone()
        }
    };

    drop(handle);
    let image_name = work.name.clone();

    // ---- Absorb and delete replaced bases (lines 22–28). -------------
    {
        let mut semantic = state.semantic.write().unwrap();
        for replaced_id in &selection.replace {
            if replaced_id == &base_id {
                continue;
            }
            if let Some(replaced_master) = semantic.masters.get(replaced_id).cloned() {
                if let Some(master) = semantic.masters.get_mut(&base_id) {
                    master.absorb_master(&replaced_master);
                }
            }
            semantic.remove_base(replaced_id);
        }
    }

    let new_row = state
        .db
        .lock()
        .unwrap()
        .insert(
            "images",
            vec![
                Value::from(image_name.clone()),
                Value::from(base_id),
                Value::from((report.similarity * 1000.0) as u64),
            ],
        )
        .ok();
    {
        let mut published = state.published.write().unwrap();
        if !published.iter().any(|n| n == &image_name) {
            published.push(image_name.clone());
        }
    }

    // ---- Release the replaced generation (re-publish / upgrade). -----
    // The new generation already holds its references, so content shared
    // across generations survives the release.
    let old_refs = state
        .image_packages
        .write()
        .unwrap()
        .insert(image_name.clone(), package_refs);
    if let Some(old_refs) = old_refs {
        for digest in old_refs {
            state.release_package_ref(&digest)?;
        }
    }
    if let Some(old_data) = old_data {
        for digest in &old_data.digests {
            state
                .data_store
                .release(digest)
                .map_err(|_| StoreError::Corrupt(format!("stale data blob {digest}")))?;
        }
    }
    {
        let mut db = state.db.lock().unwrap();
        if let Ok(rows) = db.find_by("images", "name", &Value::from(image_name.clone())) {
            for row in rows {
                if Some(row) != new_row {
                    let _ = db.delete("images", row);
                }
            }
        }
    }

    report.duration = env.clock.since(t0);
    let after = state.repo_bytes();
    report.bytes_added = after.saturating_sub(bytes_before);
    report.bytes_freed = bytes_before.saturating_sub(after);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use crate::repo::ExpelliarmusRepo;
    use crate::PublishMode;
    use xpl_store::ImageStore;
    use xpl_workloads::World;

    #[test]
    fn first_publish_stores_base_and_packages() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        let redis = w.build_image("redis");
        let report = repo.publish(&w.catalog, &redis).unwrap();
        assert_eq!(repo.base_count(), 1);
        assert!(repo.package_count() >= 1, "redis package exported");
        assert!(
            report.duration.as_secs_f64() > 7.0,
            "at least the launch cost"
        );
        assert_eq!(report.similarity, 0.0);
        repo.check_invariants().unwrap();
    }

    #[test]
    fn second_publish_shares_base() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        repo.publish(&w.catalog, &w.build_image("mini")).unwrap();
        let size_after_mini = repo.repo_bytes();
        let report = repo.publish(&w.catalog, &w.build_image("redis")).unwrap();
        assert_eq!(repo.base_count(), 1, "base shared, not duplicated");
        assert!(report.similarity > 0.5);
        let growth = repo.repo_bytes() - size_after_mini;
        assert!(
            growth < size_after_mini / 4,
            "publishing redis should add only its packages; grew {growth}"
        );
        repo.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_publish_adds_almost_nothing() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        repo.publish(&w.catalog, &w.build_image("redis")).unwrap();
        let before = repo.repo_bytes();
        let report = repo.publish(&w.catalog, &w.build_image("redis")).unwrap();
        assert_eq!(report.units_stored, 0, "nothing new to export");
        let growth = repo.repo_bytes() - before;
        assert!(growth < 2_000, "only metadata rows, grew {growth}");
    }

    #[test]
    fn semantic_mode_exports_everything_but_stores_once() {
        let w = World::small();
        let full = ExpelliarmusRepo::new(w.env());
        let sem = ExpelliarmusRepo::with_mode(w.env(), PublishMode::SemanticDecomposition);
        for name in ["redis", "lamp"] {
            full.publish(&w.catalog, &w.build_image(name)).unwrap();
            sem.publish(&w.catalog, &w.build_image(name)).unwrap();
        }
        // Re-publishing redis: the variant rebuilds all its packages.
        let r_full = full.publish(&w.catalog, &w.build_image("redis")).unwrap();
        let r_sem = sem.publish(&w.catalog, &w.build_image("redis")).unwrap();
        assert_eq!(r_full.units_stored, 0);
        assert!(r_sem.duration > r_full.duration, "variant must be slower");
        // Storage identical (CAS dedups the rebuilt packages).
        assert_eq!(full.package_count(), sem.package_count());
    }

    #[test]
    fn publish_time_dominated_by_exports() {
        let w = World::small();
        let repo = ExpelliarmusRepo::new(w.env());
        repo.publish(&w.catalog, &w.build_image("mini")).unwrap();
        let lamp = repo.publish(&w.catalog, &w.build_image("lamp")).unwrap();
        let export = lamp.breakdown.get("export packages");
        assert!(
            export.as_secs_f64() > lamp.breakdown.get("select base").as_secs_f64(),
            "exports {export} should dominate selection"
        );
    }
}
