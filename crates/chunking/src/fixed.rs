//! Fixed-size chunking.
//!
//! Jin & Miller's study (cited in the paper's related work) found fixed-
//! size chunking at block level to be *more* effective than variable-size
//! chunking for VM images, detecting up to 70 % identical content; the
//! block-dedup baseline uses this chunker by default.

use crate::ChunkSpan;

/// Slice `data` into `block_size` chunks; the final chunk may be short.
pub fn chunk_fixed(data: &[u8], block_size: usize) -> Vec<ChunkSpan> {
    assert!(block_size > 0, "block size must be positive");
    let mut spans = Vec::with_capacity(data.len() / block_size + 1);
    let mut offset = 0;
    while offset < data.len() {
        let len = block_size.min(data.len() - offset);
        spans.push(ChunkSpan { offset, len });
        offset += len;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans_cover;

    #[test]
    fn exact_division() {
        let data = vec![0u8; 4096];
        let spans = chunk_fixed(&data, 1024);
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().all(|s| s.len == 1024));
        assert!(spans_cover(&spans, data.len()));
    }

    #[test]
    fn trailing_short_chunk() {
        let data = vec![0u8; 4100];
        let spans = chunk_fixed(&data, 1024);
        assert_eq!(spans.len(), 5);
        assert_eq!(spans.last().unwrap().len, 4);
        assert!(spans_cover(&spans, data.len()));
    }

    #[test]
    fn empty_input() {
        assert!(chunk_fixed(&[], 512).is_empty());
    }

    #[test]
    fn single_byte() {
        let spans = chunk_fixed(&[42], 512);
        assert_eq!(spans, vec![ChunkSpan { offset: 0, len: 1 }]);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        chunk_fixed(&[1, 2, 3], 0);
    }

    #[test]
    fn shift_destroys_fixed_dedup() {
        // The classic fixed-chunking weakness: a 1-byte insertion shifts
        // every boundary, so almost nothing dedups. (CDC fixes this —
        // see rabin.rs.)
        let mut rng = xpl_util::SplitMix64::new(3);
        let mut base = vec![0u8; 64 * 1024];
        rng.fill_bytes(&mut base);
        let mut shifted = vec![0xEE];
        shifted.extend_from_slice(&base);

        let mut ix = crate::ChunkIndex::new();
        ix.ingest(&base, &chunk_fixed(&base, 4096));
        let before = ix.unique_bytes();
        ix.ingest(&shifted, &chunk_fixed(&shifted, 4096));
        let added = ix.unique_bytes() - before;
        assert!(
            added as f64 > 0.9 * shifted.len() as f64,
            "expected almost no dedup after shift; added only {added}"
        );
    }
}
