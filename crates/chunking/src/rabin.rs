//! Rabin-style rolling fingerprint and content-defined chunking.
//!
//! Rabin (1981) fingerprinting treats a byte window as a polynomial over
//! GF(2) reduced by an irreducible polynomial; the key property for
//! chunking is *rolling* evaluation — the fingerprint of window
//! `[i+1, i+w]` derives from `[i, i+w-1]` in O(1). Chunk boundaries are
//! declared where `fingerprint & mask == magic`, making them content-
//! defined: an insertion only disturbs boundaries near the edit.
//!
//! This implementation uses the standard table-driven polynomial rolling
//! hash (the same construction LBFS popularized).

use crate::ChunkSpan;

/// Window width in bytes for the rolling fingerprint.
pub const WINDOW: usize = 48;

/// Irreducible polynomial of degree 53 (same class as LBFS's choice).
const POLY: u64 = 0x003D_A335_8B4D_C173;

/// Precomputed tables for O(1) rolling.
pub struct RabinTables {
    /// `mod_table[b]` = `(b << 53) mod POLY` — reduction of the incoming
    /// high byte.
    mod_table: [u64; 256],
    /// `out_table[b]` = contribution of byte `b` leaving the window.
    out_table: [u64; 256],
}

fn poly_mod_shift(mut value: u64, shift_bits: u32) -> u64 {
    // Compute (value << shift_bits) mod POLY bit by bit.
    for _ in 0..shift_bits {
        value <<= 1;
        if value & (1 << 53) != 0 {
            value ^= POLY | (1 << 53);
        }
    }
    value
}

impl RabinTables {
    pub fn new() -> Self {
        let mut mod_table = [0u64; 256];
        let mut out_table = [0u64; 256];
        for b in 0..256u64 {
            mod_table[b as usize] = poly_mod_shift(b, 53);
            // A byte leaving the window was multiplied by x^(8*(WINDOW-1)).
            out_table[b as usize] = poly_mod_shift(b, (8 * (WINDOW - 1)) as u32);
        }
        RabinTables {
            mod_table,
            out_table,
        }
    }
}

impl Default for RabinTables {
    fn default() -> Self {
        Self::new()
    }
}

fn tables() -> &'static RabinTables {
    use std::sync::OnceLock;
    static T: OnceLock<RabinTables> = OnceLock::new();
    T.get_or_init(RabinTables::new)
}

/// The rolling fingerprint state over a fixed-width window.
///
/// The window starts zeroed, and a zero byte's leaving contribution is
/// zero (`out_table[0] == 0`), so removal is unconditional — no warm-up
/// counter in the per-byte path.
pub struct RollingHash {
    window: [u8; WINDOW],
    pos: usize,
    fp: u64,
    /// Cached once at construction so the per-byte hot path never pays
    /// the `OnceLock` atomic load.
    tables: &'static RabinTables,
}

impl Default for RollingHash {
    fn default() -> Self {
        Self::new()
    }
}

impl RollingHash {
    pub fn new() -> Self {
        RollingHash {
            window: [0; WINDOW],
            pos: 0,
            fp: 0,
            tables: tables(),
        }
    }

    /// Push one byte; returns the fingerprint after the push.
    #[inline]
    pub fn push(&mut self, b: u8) -> u64 {
        let t = self.tables;
        let old = self.window[self.pos];
        self.window[self.pos] = b;
        self.pos += 1;
        if self.pos == WINDOW {
            self.pos = 0;
        }
        // Remove the leaving byte's contribution (a no-op while the
        // window is still filling: the zeroed slots contribute nothing).
        self.fp ^= t.out_table[old as usize];
        // Shift in the new byte: fp = (fp * x^8 + b) mod POLY.
        let high = (self.fp >> 45) as usize & 0xFF;
        self.fp = ((self.fp << 8) | b as u64) & ((1 << 53) - 1);
        self.fp ^= t.mod_table[high];
        self.fp
    }

    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    pub fn reset(&mut self) {
        self.window = [0; WINDOW];
        self.pos = 0;
        self.fp = 0;
    }
}

/// Parameters for content-defined chunking.
#[derive(Clone, Copy, Debug)]
pub struct CdcParams {
    pub min_size: usize,
    /// Average chunk size; must be a power of two (defines the boundary
    /// mask).
    pub avg_size: usize,
    pub max_size: usize,
}

impl CdcParams {
    /// The classic 2/8/16 KiB configuration scaled by `avg`.
    pub fn with_avg(avg_size: usize) -> Self {
        assert!(
            avg_size.is_power_of_two(),
            "average size must be a power of two"
        );
        CdcParams {
            min_size: avg_size / 4,
            avg_size,
            max_size: avg_size * 4,
        }
    }
}

/// Content-defined chunking of `data`.
///
/// Hot-path structure: the fingerprint only matters once a chunk reaches
/// `min_size` (no boundary can be declared earlier), and it depends only
/// on the last [`WINDOW`] bytes — so after each boundary the scan skips
/// ahead `min_size - WINDOW` bytes and warms the window on the remainder.
/// Byte-identical to the naive push-every-byte scan: a fresh window is
/// all zeros, whose polynomial contributions vanish (`out_table[0] == 0`),
/// so the fingerprint at every checked position is unchanged.
pub fn chunk_cdc(data: &[u8], params: CdcParams) -> Vec<ChunkSpan> {
    assert!(params.min_size >= 1);
    assert!(params.avg_size.is_power_of_two());
    assert!(params.min_size <= params.avg_size && params.avg_size <= params.max_size);
    let mask = (params.avg_size - 1) as u64;
    // Boundary condition: low bits equal a fixed magic (not all-zeros, to
    // avoid degenerate behaviour on zero-filled regions). Masked once,
    // outside the loop.
    let magic = mask & 0x1FFF_FFFF_5A5A_5A5A;

    let n = data.len();
    let mut spans = Vec::with_capacity(n / params.avg_size + 2);
    let mut start = 0usize;
    let mut hash = RollingHash::new();
    if params.min_size > WINDOW {
        // Fast path: skip ahead `min_size - WINDOW`, warm the window with
        // no boundary checks, then run a fingerprint-only scan (the
        // max-size cut is the loop bound, not a per-byte comparison).
        while start < n {
            let check_from = start + params.min_size - 1;
            if check_from >= n {
                spans.push(ChunkSpan {
                    offset: start,
                    len: n - start,
                });
                break;
            }
            for &b in &data[start + params.min_size - WINDOW..check_from] {
                hash.push(b);
            }
            let hard_cut = start + params.max_size - 1;
            let check_end = hard_cut.min(n - 1);
            let mut cut = None;
            for (k, &b) in data[check_from..=check_end].iter().enumerate() {
                if (hash.push(b) & mask) == magic {
                    cut = Some(check_from + k);
                    break;
                }
            }
            if cut.is_none() && check_end == hard_cut {
                cut = Some(hard_cut);
            }
            match cut {
                Some(i) => {
                    spans.push(ChunkSpan {
                        offset: start,
                        len: i - start + 1,
                    });
                    start = i + 1;
                    hash.reset();
                }
                None => {
                    spans.push(ChunkSpan {
                        offset: start,
                        len: n - start,
                    });
                    break;
                }
            }
        }
    } else {
        // Generic path (tiny min sizes): check every position.
        let mut i = 0usize;
        while i < n {
            let fp = hash.push(data[i]);
            let len = i - start + 1;
            let boundary =
                (len >= params.min_size && (fp & mask) == magic) || len >= params.max_size;
            if boundary {
                spans.push(ChunkSpan { offset: start, len });
                start = i + 1;
                hash.reset();
            }
            i += 1;
        }
        if start < n {
            spans.push(ChunkSpan {
                offset: start,
                len: n - start,
            });
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spans_cover, ChunkIndex};

    fn random_data(seed: u64, len: usize) -> Vec<u8> {
        let mut rng = xpl_util::SplitMix64::new(seed);
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    #[test]
    fn rolling_hash_is_windowed() {
        // Fingerprint must depend only on the last WINDOW bytes.
        let a = random_data(1, 300);
        let b = random_data(2, 300);
        let mut ha = RollingHash::new();
        let mut hb = RollingHash::new();
        for &x in &a {
            ha.push(x);
        }
        for &x in &b {
            hb.push(x);
        }
        // Feed both the same trailing window.
        let tail = random_data(3, WINDOW);
        let mut fa = 0;
        let mut fb = 0;
        for &x in &tail {
            fa = ha.push(x);
            fb = hb.push(x);
        }
        assert_eq!(fa, fb, "window property violated");
    }

    #[test]
    fn rolling_differs_for_different_windows() {
        let mut h1 = RollingHash::new();
        let mut h2 = RollingHash::new();
        let mut f1 = 0;
        let mut f2 = 0;
        for i in 0..WINDOW {
            f1 = h1.push(i as u8);
            f2 = h2.push((i as u8).wrapping_add(1));
        }
        assert_ne!(f1, f2);
    }

    #[test]
    fn cdc_covers_input() {
        for len in [0usize, 1, 100, 5000, 100_000] {
            let data = random_data(len as u64 + 10, len);
            let spans = chunk_cdc(&data, CdcParams::with_avg(4096));
            assert!(spans_cover(&spans, len), "len {len}");
        }
    }

    #[test]
    fn cdc_respects_bounds() {
        let data = random_data(42, 200_000);
        let p = CdcParams::with_avg(4096);
        let spans = chunk_cdc(&data, p);
        for (i, s) in spans.iter().enumerate() {
            assert!(s.len <= p.max_size, "chunk {i} too big: {}", s.len);
            if i + 1 != spans.len() {
                assert!(s.len >= p.min_size, "chunk {i} too small: {}", s.len);
            }
        }
    }

    #[test]
    fn cdc_average_in_expected_band() {
        let data = random_data(77, 1 << 20);
        let p = CdcParams::with_avg(4096);
        let spans = chunk_cdc(&data, p);
        let avg = data.len() as f64 / spans.len() as f64;
        // Truncated-geometric expectation: roughly avg_size±50 %.
        assert!(
            (2048.0..8192.0).contains(&avg),
            "average chunk {avg} outside expected band"
        );
    }

    #[test]
    fn cdc_boundaries_survive_insertion() {
        // The CDC selling point: a single-byte insertion near the front
        // must leave most chunks (and hence dedup) intact.
        let base = random_data(5, 256 * 1024);
        let mut edited = base.clone();
        edited.insert(1000, 0x55);

        let p = CdcParams::with_avg(4096);
        let mut ix = ChunkIndex::new();
        ix.ingest(&base, &chunk_cdc(&base, p));
        let before = ix.unique_bytes();
        ix.ingest(&edited, &chunk_cdc(&edited, p));
        let added = ix.unique_bytes() - before;
        assert!(
            (added as f64) < 0.10 * edited.len() as f64,
            "CDC should re-find most chunks after insertion; added {added} of {}",
            edited.len()
        );
    }

    #[test]
    fn cdc_deterministic() {
        let data = random_data(9, 50_000);
        let a = chunk_cdc(&data, CdcParams::with_avg(2048));
        let b = chunk_cdc(&data, CdcParams::with_avg(2048));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_region_hits_max_size() {
        // All-zero data never matches the nonzero magic, so chunks max out.
        let data = vec![0u8; 100_000];
        let p = CdcParams::with_avg(4096);
        let spans = chunk_cdc(&data, p);
        for s in &spans[..spans.len() - 1] {
            assert_eq!(s.len, p.max_size);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_avg_rejected() {
        CdcParams::with_avg(3000);
    }
}
