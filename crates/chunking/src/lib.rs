//! `xpl-chunking` — fixed-size and content-defined chunking.
//!
//! The related work the paper positions against (Jin & Miller; Jayaram et
//! al.; Liquid; Crab) deduplicates VM images at *block* level, with either
//! fixed-size chunks or Rabin-fingerprint content-defined chunks (CDC).
//! This crate implements both so the block-level baselines and the
//! chunk-size ablation can be reproduced.
//!
//! * [`fixed::chunk_fixed`] — straight slicing at a block size.
//! * [`rabin`] — a rolling Rabin-style fingerprint and a CDC chunker with
//!   min/average/max bounds.
//! * [`ChunkIndex`] — a content-addressed chunk set measuring dedup.

pub mod fixed;
pub mod rabin;

use xpl_util::{Digest, FxHashMap, Sha256};

/// A chunk boundary description: offset and length within the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkSpan {
    pub offset: usize,
    pub len: usize,
}

/// Verify a chunking covers the input exactly (tests + debug assertions).
pub fn spans_cover(spans: &[ChunkSpan], total_len: usize) -> bool {
    let mut pos = 0;
    for s in spans {
        if s.offset != pos || s.len == 0 {
            return false;
        }
        pos += s.len;
    }
    pos == total_len || (total_len == 0 && spans.is_empty())
}

/// Content-addressed chunk store measuring deduplication.
#[derive(Default)]
pub struct ChunkIndex {
    chunks: FxHashMap<Digest, u64>,
    unique_bytes: u64,
    total_bytes: u64,
}

impl ChunkIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a chunk; returns `true` if it was new.
    pub fn insert(&mut self, data: &[u8]) -> bool {
        self.total_bytes += data.len() as u64;
        let d = Sha256::digest(data);
        match self.chunks.entry(d) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() += 1;
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(1);
                self.unique_bytes += data.len() as u64;
                true
            }
        }
    }

    /// Ingest a whole buffer with the given chunk spans.
    pub fn ingest(&mut self, data: &[u8], spans: &[ChunkSpan]) {
        debug_assert!(spans_cover(spans, data.len()));
        for s in spans {
            self.insert(&data[s.offset..s.offset + s.len]);
        }
    }

    pub fn unique_chunks(&self) -> usize {
        self.chunks.len()
    }

    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Dedup factor: logical bytes / stored bytes (≥ 1.0).
    pub fn dedup_factor(&self) -> f64 {
        if self.unique_bytes == 0 {
            1.0
        } else {
            self.total_bytes as f64 / self.unique_bytes as f64
        }
    }

    pub fn contains(&self, d: &Digest) -> bool {
        self.chunks.contains_key(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_counts_unique_bytes() {
        let mut ix = ChunkIndex::new();
        assert!(ix.insert(b"aaaa"));
        assert!(!ix.insert(b"aaaa"));
        assert!(ix.insert(b"bbbb"));
        assert_eq!(ix.unique_chunks(), 2);
        assert_eq!(ix.unique_bytes(), 8);
        assert_eq!(ix.total_bytes(), 12);
        assert!((ix.dedup_factor() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn spans_cover_checks() {
        let spans = [
            ChunkSpan { offset: 0, len: 4 },
            ChunkSpan { offset: 4, len: 2 },
        ];
        assert!(spans_cover(&spans, 6));
        assert!(!spans_cover(&spans, 7));
        assert!(!spans_cover(&spans[1..], 2));
        assert!(spans_cover(&[], 0));
    }

    #[test]
    fn duplicate_buffers_dedup_fully() {
        let data = vec![7u8; 4096];
        let spans = fixed::chunk_fixed(&data, 512);
        let mut ix = ChunkIndex::new();
        ix.ingest(&data, &spans);
        ix.ingest(&data, &spans);
        // All 512-byte chunks of constant data are identical → 1 unique.
        assert_eq!(ix.unique_chunks(), 1);
        assert_eq!(ix.total_bytes(), 8192);
        assert_eq!(ix.unique_bytes(), 512);
    }
}
