//! `xpl-workloads` — the synthetic evaluation world.
//!
//! The paper evaluates on synthetic Ubuntu images built with
//! `virt-builder`: the four images from the Mirage/Hemera studies (Mini,
//! Base, Desktop, IDE) plus fifteen AWS-marketplace-style stacks
//! (Table II), and a 40×-successive-IDE-build sequence (Figure 3c). This
//! crate regenerates that world deterministically:
//!
//! * [`catalog`] — a ~2.4 k-package Ubuntu-16.04-like catalog: a named
//!   essential core, generated base filler (the ~1.85 GB base install),
//!   and hand-sized application stacks. Stack installed sizes are chosen
//!   so the paper's publish-time column emerges from the cost model
//!   (publish ≈ launch + 0.4 µs/byte exported + 0.29 s/package).
//! * [`recipes`] — the 19 Table II image recipes in upload order (primary
//!   packages, per-image unique junk — caches/logs the semantic publisher
//!   discards but file-level systems store — and user data), plus the
//!   40-build IDE sequence.
//! * [`world`] — [`World`]: catalog + base template + builders, with
//!   [`World::standard`] (full evaluation scale) and [`World::small`]
//!   (fast scale for unit tests and doctests).

//! # Beyond the paper's fixed catalog
//!
//! The crate also generates arbitrarily scaled churn workloads:
//!
//! * [`scaled`] — [`ScaledWorld`]: a seeded catalog/recipe generator
//!   whose package universe and image count are parameters, with
//!   per-image upgrade generations for republish workloads.
//! * [`trace`] — [`Trace`]: deterministic lifecycle traces (publish /
//!   retrieve / upgrade / delete / burst) the churn oracle replays
//!   against every store in lockstep.

pub mod catalog;
pub mod recipes;
pub mod scaled;
pub mod serve;
pub mod trace;
pub mod world;

pub use recipes::{ide_build_recipe, table2_recipes, Table2Row, TABLE2_PAPER};
pub use scaled::{ScaleConfig, ScaledWorld};
pub use serve::{ServeConfig, ServeRequestSpec, ServeSchedule};
pub use trace::{Trace, TraceConfig, TraceOp};
pub use world::World;
