//! The assembled evaluation world.

use crate::catalog::{base_system_files, small_catalog, standard_catalog};
use crate::recipes::{ide_build_recipe, table2_recipes};
use xpl_guestfs::{BaseTemplate, ImageBuilder, ImageRecipe, Vmi};
use xpl_pkg::{Arch, BaseImageAttrs, Catalog};
use xpl_simio::SimEnv;

/// Catalog + base template + recipes: everything needed to regenerate the
/// paper's workloads.
pub struct World {
    pub catalog: Catalog,
    pub template: BaseTemplate,
    recipes: Vec<ImageRecipe>,
}

impl World {
    /// The full evaluation world (19 Table II images + 40 IDE builds
    /// available via [`World::ide_build`]).
    pub fn standard() -> World {
        let catalog = standard_catalog(40);
        let template = BaseTemplate::build(
            &catalog,
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            &["ubuntu-minimal"],
            &base_system_files(),
            0x16_04,
        )
        .expect("standard base template must resolve");
        World {
            catalog,
            template,
            recipes: table2_recipes(),
        }
    }

    /// A miniature world for unit tests, doctests and quick examples.
    pub fn small() -> World {
        let catalog = small_catalog();
        let template = BaseTemplate::build(
            &catalog,
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            &["ubuntu-minimal"],
            &[("/boot/vmlinuz".to_string(), 2048)],
            0x5A11,
        )
        .expect("small base template must resolve");
        let recipes = vec![
            ImageRecipe::new("mini", &[]),
            ImageRecipe::new("redis", &["redis-server"]).with_user_data(512, 1),
            ImageRecipe::new("nginx", &["nginx"]).with_user_data(256, 2),
            ImageRecipe::new("lamp", &["apache2", "mysql-server-5.7", "php7.0"])
                .with_junk(512, 8, 9)
                .with_user_data(512, 3),
        ];
        World {
            catalog,
            template,
            recipes,
        }
    }

    /// A fresh simulated environment (testbed profile, zeroed clock).
    pub fn env(&self) -> SimEnv {
        SimEnv::testbed()
    }

    /// Recipe names in upload order.
    pub fn image_names(&self) -> Vec<&str> {
        self.recipes.iter().map(|r| r.name.as_str()).collect()
    }

    pub fn recipe(&self, name: &str) -> Option<&ImageRecipe> {
        self.recipes.iter().find(|r| r.name == name)
    }

    /// Build one image by recipe name (deterministic).
    pub fn build_image(&self, name: &str) -> Vmi {
        let recipe = self
            .recipe(name)
            .unwrap_or_else(|| panic!("unknown image recipe: {name}"));
        ImageBuilder::new(&self.catalog, &self.template)
            .build(recipe)
            .unwrap_or_else(|e| panic!("building {name} failed: {e}"))
    }

    /// Build the k-th successive IDE build (standard world only; the
    /// catalog carries 40 bumped version sets).
    pub fn ide_build(&self, k: u32) -> Vmi {
        ImageBuilder::new(&self.catalog, &self.template)
            .build(&ide_build_recipe(k))
            .unwrap_or_else(|e| panic!("building IDE build {k} failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_util::bytesize::nominal_gb;

    #[test]
    fn small_world_builds_images() {
        let w = World::small();
        let mini = w.build_image("mini");
        let redis = w.build_image("redis");
        assert!(redis.mounted_bytes() > mini.mounted_bytes());
        assert!(redis
            .pkgdb
            .is_installed(xpl_util::IStr::new("redis-server")));
        assert_eq!(w.image_names(), vec!["mini", "redis", "nginx", "lamp"]);
    }

    #[test]
    fn small_world_deterministic() {
        let w = World::small();
        let a = w.build_image("lamp");
        let b = w.build_image("lamp");
        assert_eq!(a.disk.serialize(), b.disk.serialize());
    }

    // The standard-world tests are heavier (seconds); they pin the
    // workload's Table II shape.
    #[test]
    fn standard_mini_matches_table2_scale() {
        let w = World::standard();
        let mini = w.build_image("Mini");
        let gb = nominal_gb(mini.mounted_bytes());
        assert!((1.75..2.1).contains(&gb), "Mini mounted {gb:.3} GB");
        let files = mini.file_count();
        assert!((60_000..90_000).contains(&files), "Mini files {files}");
    }

    #[test]
    fn standard_mounted_sizes_track_paper_ordering() {
        let w = World::standard();
        let mini = w.build_image("Mini");
        let cassandra = w.build_image("Cassandra");
        let ide = w.build_image("IDE");
        let elastic = w.build_image("Elastic Stack");
        // Paper: Mini 1.913 < Cassandra 2.531 < IDE 2.727; Elastic 2.671.
        assert!(mini.mounted_bytes() < cassandra.mounted_bytes());
        assert!(cassandra.mounted_bytes() < ide.mounted_bytes());
        assert!(elastic.mounted_bytes() > cassandra.mounted_bytes());
        // Elastic has by far the most files (paper: 103 719).
        assert!(elastic.file_count() > ide.file_count());
    }

    #[test]
    fn ide_builds_differ_only_modestly() {
        let w = World::standard();
        let b0 = w.ide_build(0);
        let b1 = w.ide_build(1);
        // Same primary set, bumped versions.
        assert_eq!(b0.primary.len(), b1.primary.len());
        let s0 = b0.installed_package_set(&w.catalog);
        let s1 = b1.installed_package_set(&w.catalog);
        let diff = s0.symmetric_difference(&s1).count();
        assert_eq!(diff, 6, "3 packages × 2 versions differ, got {diff}");
        // Mounted sizes nearly equal.
        let delta = b0.mounted_bytes().abs_diff(b1.mounted_bytes());
        assert!(delta < b0.mounted_bytes() / 50, "delta {delta}");
    }
}
