//! Deterministic lifecycle traces.
//!
//! A [`Trace`] is a seeded sequence of repository lifecycle operations —
//! publish, retrieve (whole-image and byte-range), upgrade-and-republish,
//! delete, and flash-crowd retrieval bursts — over a catalog of image
//! names. The generator is a
//! SplitMix64-threaded state machine: the same seed over the same name
//! list produces a byte-identical trace (see [`Trace::render`]), which
//! is what lets the churn oracle assert reproducibility end to end.
//!
//! Ops only ever reference *live* images (published and not deleted), so
//! any replay failure is a store bug, not a generator artifact. Deleted
//! images may be re-published later at a bumped generation — the
//! re-publish path one-shot experiments never exercise.

use xpl_util::{Sha256, SplitMix64};

/// One lifecycle operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// First-time publish, or re-publish after a delete.
    Publish { image: String, generation: u32 },
    /// Retrieve the image's current generation.
    Retrieve { image: String },
    /// Retrieve only a byte range of the image's disk. `start_frac` is
    /// a position in 1/256ths of the disk (the generator does not know
    /// disk sizes; the replayer scales it), `len` is in bytes.
    RetrieveRange {
        image: String,
        start_frac: u32,
        len: u32,
    },
    /// Upgrade-and-republish: same name, next generation.
    Upgrade { image: String, generation: u32 },
    /// Remove the image from the repository.
    Delete { image: String },
    /// Flash crowd: `count` back-to-back retrievals.
    Burst { image: String, count: u32 },
    /// Temperature-driven maintenance: every store re-encodes hot
    /// content onto its fast codec and demotes cooled content, per its
    /// tier policy. Logical content is pinned; a no-op for untiered
    /// stores.
    Maintain,
    /// Power-cut the durable medium (torn WAL tail, unsynced bytes
    /// lost). A no-op for purely in-memory replicas.
    Crash,
    /// Reopen the durable store from the medium: manifest load + WAL
    /// replay; the oracle checks the recovered state converges to the
    /// uncrashed in-memory run.
    Recover,
}

impl TraceOp {
    /// Canonical one-line form (the byte-identity the oracle hashes).
    pub fn render(&self) -> String {
        match self {
            TraceOp::Publish { image, generation } => format!("publish {image} gen={generation}"),
            TraceOp::Retrieve { image } => format!("retrieve {image}"),
            TraceOp::RetrieveRange {
                image,
                start_frac,
                len,
            } => format!("range {image} frac={start_frac} len={len}"),
            TraceOp::Upgrade { image, generation } => format!("upgrade {image} gen={generation}"),
            TraceOp::Delete { image } => format!("delete {image}"),
            TraceOp::Burst { image, count } => format!("burst {image} x{count}"),
            TraceOp::Maintain => "maintain".to_string(),
            TraceOp::Crash => "crash".to_string(),
            TraceOp::Recover => "recover".to_string(),
        }
    }
}

/// Generator parameters. The op mix is fixed; scale comes from `ops`.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    pub seed: u64,
    /// Number of trace entries (a burst counts as one entry).
    pub ops: usize,
}

/// A generated lifecycle trace.
#[derive(Clone, Debug)]
pub struct Trace {
    pub seed: u64,
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Generate a trace over `images` (catalog order matters: it seeds
    /// the publish order).
    pub fn generate(images: &[String], cfg: &TraceConfig) -> Trace {
        assert!(!images.is_empty(), "trace needs at least one image");
        let mut rng = SplitMix64::new(cfg.seed).derive("lifecycle-trace");
        let mut pool: Vec<String> = images.to_vec();
        pool.reverse(); // pop() takes catalog order
        let mut retired: Vec<(String, u32)> = Vec::new();
        let mut live: Vec<(String, u32)> = Vec::new();
        let mut ops = Vec::with_capacity(cfg.ops);

        while ops.len() < cfg.ops {
            let roll = rng.next_f64();
            let op = if live.is_empty() || (roll < 0.18 && !(pool.is_empty() && retired.is_empty()))
            {
                // Publish: fresh catalog images first, then resurrect
                // deleted ones at a bumped generation.
                let (image, generation) = if let Some(name) = pool.pop() {
                    (name, 0)
                } else {
                    let idx = rng.next_below(retired.len() as u64) as usize;
                    let (name, gen) = retired.swap_remove(idx);
                    (name, gen + 1)
                };
                live.push((image.clone(), generation));
                TraceOp::Publish { image, generation }
            } else {
                let idx = rng.next_below(live.len() as u64) as usize;
                if roll < 0.54 {
                    TraceOp::Retrieve {
                        image: live[idx].0.clone(),
                    }
                } else if roll < 0.60 {
                    TraceOp::RetrieveRange {
                        image: live[idx].0.clone(),
                        start_frac: rng.next_below(256) as u32,
                        len: rng.next_range(512, 16 * 1024) as u32,
                    }
                } else if roll < 0.75 {
                    live[idx].1 += 1;
                    TraceOp::Upgrade {
                        image: live[idx].0.clone(),
                        generation: live[idx].1,
                    }
                } else if roll < 0.85 && live.len() > 2 {
                    let (image, gen) = live.swap_remove(idx);
                    retired.push((image.clone(), gen));
                    TraceOp::Delete { image }
                } else if roll < 0.88 {
                    TraceOp::Maintain
                } else {
                    TraceOp::Burst {
                        image: live[idx].0.clone(),
                        count: rng.next_range(3, 8) as u32,
                    }
                }
            };
            ops.push(op);
        }
        Trace {
            seed: cfg.seed,
            ops,
        }
    }

    /// Inject `count` crash-recovery pairs at deterministic positions:
    /// a `Crash` immediately followed by a `Recover`, never before the
    /// first op (crashing an empty repository recovers trivially).
    /// Positions derive from `seed` alone, so the same call on the
    /// same trace is byte-identical.
    pub fn inject_crashes(&mut self, seed: u64, count: usize) {
        if self.ops.is_empty() || count == 0 {
            return;
        }
        let mut rng = SplitMix64::new(seed).derive("crash-injection");
        let mut positions: Vec<usize> = (0..count)
            .map(|_| 1 + rng.next_below(self.ops.len() as u64) as usize)
            .collect();
        // Insert back-to-front so earlier positions stay valid.
        positions.sort_unstable();
        for &pos in positions.iter().rev() {
            self.ops.insert(pos, TraceOp::Recover);
            self.ops.insert(pos, TraceOp::Crash);
        }
    }

    /// Canonical textual form, one op per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(&op.render());
            out.push('\n');
        }
        out
    }

    /// SHA-256 of [`Trace::render`] — the reproducibility fingerprint.
    pub fn digest_hex(&self) -> String {
        Sha256::digest(self.render().as_bytes()).to_hex()
    }

    /// Count ops of each kind: (publish, retrieve, upgrade, delete,
    /// burst). Range retrievals count as retrieves here; see
    /// [`Trace::range_retrieves`] for their own tally.
    pub fn mix(&self) -> (usize, usize, usize, usize, usize) {
        let mut m = (0, 0, 0, 0, 0);
        for op in &self.ops {
            match op {
                TraceOp::Publish { .. } => m.0 += 1,
                TraceOp::Retrieve { .. } | TraceOp::RetrieveRange { .. } => m.1 += 1,
                TraceOp::Upgrade { .. } => m.2 += 1,
                TraceOp::Delete { .. } => m.3 += 1,
                TraceOp::Burst { .. } => m.4 += 1,
                TraceOp::Maintain | TraceOp::Crash | TraceOp::Recover => {}
            }
        }
        m
    }

    /// Count of maintenance ops (tallied separately from [`Trace::mix`],
    /// like crashes: maintenance touches no image).
    pub fn maintains(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Maintain))
            .count()
    }

    /// Count of range-retrieval ops.
    pub fn range_retrieves(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::RetrieveRange { .. }))
            .count()
    }

    /// Count of injected crash-recovery pairs.
    pub fn crashes(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Crash))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("img-{i:03}")).collect()
    }

    #[test]
    fn same_seed_byte_identical() {
        let cfg = TraceConfig { seed: 99, ops: 400 };
        let a = Trace::generate(&names(20), &cfg);
        let b = Trace::generate(&names(20), &cfg);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.digest_hex(), b.digest_hex());
    }

    #[test]
    fn different_seed_differs() {
        let a = Trace::generate(&names(20), &TraceConfig { seed: 1, ops: 200 });
        let b = Trace::generate(&names(20), &TraceConfig { seed: 2, ops: 200 });
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn all_op_kinds_appear_at_scale() {
        let t = Trace::generate(&names(24), &TraceConfig { seed: 7, ops: 500 });
        let (p, r, u, d, b) = t.mix();
        assert_eq!(p + r + u + d + b + t.maintains(), 500);
        assert!(p > 0 && r > 0 && u > 0 && d > 0 && b > 0, "{:?}", t.mix());
        assert!(t.maintains() > 0, "no maintenance ops at scale");
        assert!(t.range_retrieves() > 0, "no range retrievals at scale");
        assert!(
            t.ops.iter().all(|op| match op {
                TraceOp::RetrieveRange {
                    start_frac, len, ..
                } => *start_frac < 256 && (512..=16 * 1024).contains(len),
                _ => true,
            }),
            "range parameters out of bounds"
        );
    }

    #[test]
    fn ops_only_touch_live_images() {
        use std::collections::HashMap;
        let t = Trace::generate(&names(16), &TraceConfig { seed: 3, ops: 600 });
        let mut live: HashMap<&str, u32> = HashMap::new();
        for op in &t.ops {
            match op {
                TraceOp::Publish { image, generation } => {
                    assert!(!live.contains_key(image.as_str()), "double publish {image}");
                    live.insert(image, *generation);
                }
                TraceOp::Upgrade { image, generation } => {
                    let g = live.get_mut(image.as_str()).expect("upgrade of dead image");
                    assert_eq!(*generation, *g + 1, "generation must step by one");
                    *g = *generation;
                }
                TraceOp::Retrieve { image }
                | TraceOp::RetrieveRange { image, .. }
                | TraceOp::Burst { image, .. } => {
                    assert!(live.contains_key(image.as_str()), "op on dead {image}");
                }
                TraceOp::Delete { image } => {
                    assert!(live.remove(image.as_str()).is_some(), "delete dead {image}");
                }
                TraceOp::Maintain | TraceOp::Crash | TraceOp::Recover => {}
            }
        }
    }

    #[test]
    fn crash_injection_is_deterministic_and_paired() {
        let cfg = TraceConfig { seed: 5, ops: 200 };
        let mut a = Trace::generate(&names(12), &cfg);
        let mut b = Trace::generate(&names(12), &cfg);
        a.inject_crashes(42, 3);
        b.inject_crashes(42, 3);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.crashes(), 3);
        assert_eq!(a.ops.len(), 206);
        // Every crash is immediately followed by its recover, and the
        // trace never starts with one.
        assert!(!matches!(a.ops[0], TraceOp::Crash | TraceOp::Recover));
        for (i, op) in a.ops.iter().enumerate() {
            if matches!(op, TraceOp::Crash) {
                assert!(matches!(a.ops[i + 1], TraceOp::Recover), "at {i}");
            }
        }
        let mut c = Trace::generate(&names(12), &cfg);
        c.inject_crashes(43, 3);
        assert_ne!(a.render(), c.render(), "different seed, different spots");
    }

    #[test]
    fn republish_after_delete_bumps_generation() {
        // Long trace over few images: deletes must eventually recycle.
        let t = Trace::generate(&names(6), &TraceConfig { seed: 11, ops: 800 });
        assert!(
            t.ops
                .iter()
                .any(|op| matches!(op, TraceOp::Publish { generation, .. } if *generation > 0)),
            "expected a resurrection publish"
        );
    }
}
