//! Parameterized scaled worlds for churn workloads.
//!
//! `World::standard()` regenerates the paper's fixed 19-image catalog;
//! the churn simulator needs worlds whose package universe and image
//! catalog scale arbitrarily (and deterministically) beyond that. A
//! [`ScaledWorld`] is generated from a [`ScaleConfig`] seed:
//!
//! * a small essential base (reused from the fast test catalog),
//! * `shared_libs` generated library packages — the cross-image
//!   deduplication fodder every recipe samples from,
//! * one dedicated application package per image, registered at
//!   `versions` ascending versions so upgrade-and-republish traces can
//!   pin successive generations,
//! * `images` recipes, each combining its dedicated app, a sampled set
//!   of shared libs, per-generation junk and stable user data.
//!
//! Upgrades bump only the image's *dedicated* app (plus its fresh junk);
//! shared libs never change version. That keeps the master graph's
//! newest-version-wins union aligned with every image's latest
//! generation, which is what makes exact differential comparison across
//! all five stores possible under churn.

use crate::catalog::{add_pkg, small_catalog};
use xpl_guestfs::{BaseTemplate, ImageBuilder, ImageRecipe, Vmi};
use xpl_pkg::meta::Section;
use xpl_pkg::{Arch, BaseImageAttrs, Catalog, Version};
use xpl_util::SplitMix64;

/// Nominal MB in materialized bytes (the workspace-wide 1/1024 scale).
const MB: u64 = 1024;

/// Parameters of a generated world.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Seeds every generated name, size and sample below.
    pub seed: u64,
    /// Shared library packages (cross-image dedup fodder).
    pub shared_libs: usize,
    /// Catalog images, each with a dedicated app package.
    pub images: usize,
    /// Versions registered per dedicated app (upgrade headroom).
    pub versions: u32,
}

impl ScaleConfig {
    /// Fast scale for `cargo test`: tiny images, still well beyond the
    /// paper's 19-image catalog.
    pub fn small(seed: u64) -> ScaleConfig {
        ScaleConfig {
            seed,
            shared_libs: 12,
            images: 32,
            versions: 5,
        }
    }

    /// Heavier scale for release-mode stress runs.
    pub fn standard(seed: u64) -> ScaleConfig {
        ScaleConfig {
            seed,
            shared_libs: 60,
            images: 120,
            versions: 8,
        }
    }
}

/// One generated image recipe.
#[derive(Clone, Debug)]
pub struct ScaledRecipe {
    pub name: String,
    /// The image's dedicated application package (the upgrade target).
    pub app: String,
    /// Shared libraries this image also requests as primaries.
    pub libs: Vec<String>,
    junk_bytes: u64,
    junk_files: u32,
    data_bytes: u64,
    seed: u64,
}

/// A generated catalog + base template + recipe set.
pub struct ScaledWorld {
    pub catalog: Catalog,
    pub template: BaseTemplate,
    pub config: ScaleConfig,
    recipes: Vec<ScaledRecipe>,
}

fn app_name(i: usize) -> String {
    format!("app-{i:03}")
}

fn app_version(v: u32) -> Version {
    Version::parse(&format!("1.{v}.0"))
}

impl ScaledWorld {
    /// Generate the world. Same config → byte-identical catalog, recipes
    /// and images.
    pub fn generate(cfg: &ScaleConfig) -> ScaledWorld {
        assert!(cfg.versions >= 1 && cfg.images >= 1 && cfg.shared_libs >= 1);
        let mut catalog = small_catalog();
        let mut rng = SplitMix64::new(cfg.seed).derive("scaled-world");

        for j in 0..cfg.shared_libs {
            let inst = rng.next_range(1, 4);
            let files = rng.next_range(6, 20) as usize;
            add_pkg(
                &mut catalog,
                &format!("scaledlib-{j:02}"),
                "1.0-1",
                inst,
                files,
                &["libc6"],
                Section::Libs,
                false,
            );
        }
        for i in 0..cfg.images {
            let name = app_name(i);
            let inst = rng.next_range(2, 10);
            let files = rng.next_range(8, 40) as usize;
            // One fixed shared-lib dependency per app keeps closures
            // interesting without coupling upgrade targets.
            let dep = format!("scaledlib-{:02}", rng.next_below(cfg.shared_libs as u64));
            for v in 0..cfg.versions {
                add_pkg(
                    &mut catalog,
                    &name,
                    &app_version(v).to_string(),
                    inst,
                    files,
                    &["libc6", dep.as_str()],
                    Section::Servers,
                    false,
                );
            }
        }

        let template = BaseTemplate::build(
            &catalog,
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            &["ubuntu-minimal"],
            &[("/boot/vmlinuz".to_string(), 2048)],
            0x5CA1ED,
        )
        .expect("scaled base template must resolve");

        let mut recipes = Vec::with_capacity(cfg.images);
        for i in 0..cfg.images {
            let mut libs = Vec::new();
            let lib_count = rng.next_range(0, 2) as usize;
            while libs.len() < lib_count {
                let lib = format!("scaledlib-{:02}", rng.next_below(cfg.shared_libs as u64));
                if !libs.contains(&lib) {
                    libs.push(lib);
                }
            }
            recipes.push(ScaledRecipe {
                name: format!("img-{i:03}"),
                app: app_name(i),
                libs,
                junk_bytes: rng.next_range(1, 3) * MB,
                junk_files: rng.next_range(6, 18) as u32,
                data_bytes: rng.next_range(1, 2) * MB,
                seed: rng.next_u64(),
            });
        }

        ScaledWorld {
            catalog,
            template,
            config: *cfg,
            recipes,
        }
    }

    /// Recipe names in catalog order.
    pub fn image_names(&self) -> Vec<String> {
        self.recipes.iter().map(|r| r.name.clone()).collect()
    }

    pub fn recipe(&self, name: &str) -> Option<&ScaledRecipe> {
        self.recipes.iter().find(|r| r.name == name)
    }

    /// Build `name` at a lifecycle generation. Generation 0 is the first
    /// publish; upgrades pin the dedicated app to the next registered
    /// version (capped at the catalog's newest) and refresh the image's
    /// fresh-junk population, while stable junk, user data and shared
    /// libs are untouched — the partial stability churn dedup exploits.
    pub fn build(&self, name: &str, generation: u32) -> Vmi {
        let r = self
            .recipe(name)
            .unwrap_or_else(|| panic!("unknown scaled recipe: {name}"));
        let pinned = generation.min(self.config.versions - 1);
        let mut primary: Vec<&str> = vec![r.app.as_str()];
        primary.extend(r.libs.iter().map(String::as_str));
        let stable = r.junk_bytes - r.junk_bytes / 3;
        let fresh = r.junk_bytes / 3;
        let recipe = ImageRecipe::new(&r.name, &primary)
            .with_pin(&r.app, app_version(pinned))
            .with_junk(stable.max(1), r.junk_files.max(1), r.seed ^ 0x57AB1E)
            .with_junk(
                fresh.max(1),
                (r.junk_files / 2).max(1),
                r.seed ^ 0xF4E54 ^ (0x9E37 + generation as u64),
            )
            .with_user_data(r.data_bytes, r.seed ^ 0xDA7A);
        ImageBuilder::new(&self.catalog, &self.template)
            .build(&recipe)
            .unwrap_or_else(|e| panic!("building {name} gen {generation} failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ScaleConfig::small(42);
        let a = ScaledWorld::generate(&cfg);
        let b = ScaledWorld::generate(&cfg);
        assert_eq!(a.image_names(), b.image_names());
        let va = a.build("img-005", 2);
        let vb = b.build("img-005", 2);
        assert_eq!(va.disk.serialize(), vb.disk.serialize());
    }

    #[test]
    fn scales_beyond_standard_catalog() {
        let w = ScaledWorld::generate(&ScaleConfig::small(7));
        assert!(w.image_names().len() > 19, "must exceed the paper's 19");
        // Dedicated app + versions all registered.
        let ids = w.catalog.versions_of(xpl_util::IStr::new("app-000"));
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn upgrade_bumps_only_the_dedicated_app() {
        let w = ScaledWorld::generate(&ScaleConfig::small(7));
        let g0 = w.build("img-003", 0);
        let g1 = w.build("img-003", 1);
        let s0 = g0.installed_package_set(&w.catalog);
        let s1 = g1.installed_package_set(&w.catalog);
        let diff: Vec<_> = s0.symmetric_difference(&s1).collect();
        assert_eq!(diff.len(), 2, "one app at two versions: {diff:?}");
        assert!(diff.iter().all(|d| d.starts_with("app-003=")));
    }

    #[test]
    fn generation_cap_keeps_newest_version() {
        let w = ScaledWorld::generate(&ScaleConfig::small(7));
        let capped = w.build("img-001", 99);
        let last = w.build("img-001", 4);
        assert_eq!(
            capped.installed_package_set(&w.catalog),
            last.installed_package_set(&w.catalog)
        );
    }
}
