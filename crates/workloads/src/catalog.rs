//! The synthetic Ubuntu-16.04-like package catalog.
//!
//! Three populations:
//! 1. A **named essential core** (libc6, dpkg, perl-base — with the
//!    Figure 1 dependency cycle — bash, coreutils, apt, systemd, …).
//! 2. **Generated base filler** — ~400 library/util packages that bring
//!    the base install to ≈1.85 GB nominal across ≈70 k files (matching
//!    the paper's 75 k-file, 1.9 GB Mini image).
//! 3. **Application stacks** — the AWS-style stacks of Table II, with
//!    installed sizes chosen so the publish-time column emerges from the
//!    cost model (see crate docs).
//!
//! All sizes in the builder helpers are **nominal MB**; they are scaled to
//! materialized bytes (÷1024) internally.

use xpl_pkg::catalog::PackageSpec;
use xpl_pkg::meta::{Dependency, FileManifest, PkgFile, Section};
use xpl_pkg::{Arch, Catalog, Version};
use xpl_util::{IStr, SplitMix64};

/// Nominal MB → materialized bytes (1 MB nominal = 1 KiB real).
pub fn mb(nominal_mb: u64) -> u64 {
    nominal_mb * 1024
}

/// Deterministically distribute `total` bytes over `n` files for a
/// package, with stable paths and version-dependent content for ~70 % of
/// files (a rebuilt version changes most, but not all, of its payload —
/// that partial stability is what block/file dedup exploits across
/// successive builds).
pub fn gen_manifest(name: &str, version: &str, total: u64, n: usize) -> FileManifest {
    if n == 0 || total == 0 {
        return FileManifest::default();
    }
    let mut rng = SplitMix64::new(0x4D414E49).derive(name).derive(version);
    // Weights: 10 % of files are "big" (binaries/archives), the rest small.
    let weights: Vec<u64> = (0..n)
        .map(|_| {
            if rng.chance(0.10) {
                rng.next_range(30, 600)
            } else {
                rng.next_range(1, 14)
            }
        })
        .collect();
    let wsum: u64 = weights.iter().sum();
    let mut files = Vec::with_capacity(n);
    let mut assigned = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let size = if i + 1 == n {
            total - assigned
        } else {
            ((total as u128 * w as u128) / wsum as u128) as u64
        }
        .max(1);
        assigned = (assigned + size).min(total);
        let dir = match i % 5 {
            0 => "lib",
            1 => "share",
            2 => "share/doc",
            3 => "etc",
            _ => "libexec",
        };
        let path = if i == 0 {
            format!("/usr/bin/{name}")
        } else {
            format!("/usr/{dir}/{name}/f{i}")
        };
        // 70 % of files change content on version bumps; 30 % are stable
        // (docs, data files) — keyed without the version.
        let seed_rng = if i % 10 < 7 {
            SplitMix64::new(0xC0)
                .derive(name)
                .derive(version)
                .derive(&path)
        } else {
            SplitMix64::new(0xC0).derive(name).derive(&path)
        };
        files.push(PkgFile {
            path: IStr::new(&path),
            size: size.min(u32::MAX as u64) as u32,
            seed: seed_rng.clone().next_u64(),
        });
    }
    FileManifest { files }
}

/// Register one package. `inst_mb` is nominal; `deb` defaults to
/// installed/3.2 (the packed-vs-installed ratio the paper leans on).
#[allow(clippy::too_many_arguments)]
pub fn add_pkg(
    c: &mut Catalog,
    name: &str,
    version: &str,
    inst_mb: u64,
    files: usize,
    deps: &[&str],
    section: Section,
    essential: bool,
) -> xpl_pkg::PackageId {
    let installed = mb(inst_mb).max(files as u64);
    let spec = PackageSpec {
        name: name.to_string(),
        version: Version::parse(version),
        arch: if section == Section::Misc && name.contains("fonts") {
            Arch::All
        } else {
            Arch::Amd64
        },
        section,
        essential,
        deb_size: (installed as f64 / 3.2) as u64 + 1,
        installed_size: installed,
        depends: deps.iter().map(|d| Dependency::any(d)).collect(),
        manifest: gen_manifest(name, version, installed, files),
    };
    c.add(spec)
}

/// Names of the named essential-core packages (base-image roots).
pub const CORE_ROOTS: &[&str] = &["ubuntu-minimal"];

/// Build the full standard catalog. `ide_builds` adds that many bumped
/// versions of the IDE rebuild set (Figure 3c workload).
pub fn standard_catalog(ide_builds: u32) -> Catalog {
    let mut c = Catalog::new();

    // ---- Named essential core (with the Figure 1 cycle). -------------
    add_pkg(
        &mut c,
        "libc6",
        "2.23-0ubuntu11",
        11,
        120,
        &["perl-base"],
        Section::Base,
        true,
    );
    add_pkg(
        &mut c,
        "perl-base",
        "5.22.1-9ubuntu0.6",
        6,
        90,
        &["dpkg"],
        Section::Base,
        true,
    );
    add_pkg(
        &mut c,
        "dpkg",
        "1.18.4ubuntu1.6",
        7,
        130,
        &["libc6"],
        Section::Base,
        true,
    );
    add_pkg(
        &mut c,
        "bash",
        "4.3-14ubuntu1.4",
        5,
        60,
        &["libc6"],
        Section::Base,
        true,
    );
    add_pkg(
        &mut c,
        "coreutils",
        "8.25-2ubuntu3",
        14,
        110,
        &["libc6"],
        Section::Base,
        true,
    );
    add_pkg(
        &mut c,
        "apt",
        "1.2.32",
        4,
        85,
        &["libc6", "dpkg"],
        Section::Base,
        true,
    );
    add_pkg(
        &mut c,
        "systemd",
        "229-4ubuntu21",
        16,
        240,
        &["libc6"],
        Section::Base,
        true,
    );
    add_pkg(
        &mut c,
        "util-linux",
        "2.27.1",
        9,
        140,
        &["libc6"],
        Section::Base,
        true,
    );
    add_pkg(
        &mut c,
        "libssl1.0.0",
        "1.0.2g-1ubuntu4",
        3,
        12,
        &["libc6"],
        Section::Libs,
        false,
    );
    add_pkg(
        &mut c,
        "python2.7",
        "2.7.12-1ubuntu0",
        28,
        900,
        &["libc6"],
        Section::Interpreters,
        false,
    );
    add_pkg(
        &mut c,
        "openssh-server",
        "7.2p2",
        5,
        70,
        &["libc6", "libssl1.0.0"],
        Section::Servers,
        false,
    );
    add_pkg(
        &mut c,
        "cloud-init",
        "18.4",
        4,
        180,
        &["python2.7"],
        Section::Utils,
        false,
    );

    // ---- Generated base filler: ~400 packages, ≈1.65 GB, ≈64 k files. -
    let mut rng = SplitMix64::new(0xBA5E);
    for i in 0..400 {
        let name = match i % 4 {
            0 => format!("libbase{i}"),
            1 => format!("util-{i}"),
            2 => format!("locale-pack-{i}"),
            _ => format!("sys-mod-{i}"),
        };
        let inst = rng.next_range(2, 6); // 2–6 MB nominal each, avg 4.0
        let files = rng.next_range(95, 245) as usize;
        let dep: &[&str] = if i % 3 == 0 {
            &["libc6"]
        } else {
            &["libc6", "bash"]
        };
        add_pkg(
            &mut c,
            &name,
            "1.0-1",
            inst,
            files,
            dep,
            Section::Libs,
            false,
        );
    }
    // Meta-package that pulls the whole base in.
    {
        let mut deps: Vec<Dependency> = vec![
            "libc6",
            "bash",
            "coreutils",
            "apt",
            "systemd",
            "util-linux",
            "python2.7",
            "openssh-server",
            "cloud-init",
            "libssl1.0.0",
        ]
        .into_iter()
        .map(Dependency::any)
        .collect();
        for i in 0..400u32 {
            let name = match i % 4 {
                0 => format!("libbase{i}"),
                1 => format!("util-{i}"),
                2 => format!("locale-pack-{i}"),
                _ => format!("sys-mod-{i}"),
            };
            deps.push(Dependency::any(&name));
        }
        c.add(PackageSpec {
            name: "ubuntu-minimal".into(),
            version: Version::parse("1.361.4"),
            arch: Arch::Amd64,
            section: Section::Base,
            essential: true,
            deb_size: 2,
            installed_size: 6,
            depends: deps,
            manifest: FileManifest::default(),
        });
    }

    // ---- Application stacks (Table II). Sizes fit the cost model. ----
    use Section::*;
    add_pkg(
        &mut c,
        "libjemalloc1",
        "3.6.0",
        2,
        10,
        &["libc6"],
        Libs,
        false,
    );
    add_pkg(
        &mut c,
        "redis-server",
        "3.0.6-1ubuntu0.4",
        6,
        40,
        &["libc6", "libjemalloc1"],
        Databases,
        false,
    );
    add_pkg(
        &mut c,
        "redis-tools",
        "3.0.6-1ubuntu0.4",
        2,
        12,
        &["libc6"],
        Databases,
        false,
    );

    add_pkg(
        &mut c,
        "postgresql-common",
        "173ubuntu0.3",
        12,
        300,
        &["perl-base"],
        Databases,
        false,
    );
    add_pkg(
        &mut c,
        "libpq5",
        "9.5.25",
        4,
        30,
        &["libc6", "libssl1.0.0"],
        Libs,
        false,
    );
    add_pkg(
        &mut c,
        "postgresql-9.5",
        "9.5.25-0ubuntu0",
        58,
        900,
        &["libc6", "libpq5", "postgresql-common"],
        Databases,
        false,
    );
    add_pkg(
        &mut c,
        "postgresql-client-9.5",
        "9.5.25-0ubuntu0",
        8,
        180,
        &["libpq5"],
        Databases,
        false,
    );

    add_pkg(
        &mut c,
        "python-django",
        "1.8.7-1ubuntu5.15",
        14,
        1500,
        &["python2.7"],
        Web,
        false,
    );
    add_pkg(
        &mut c,
        "python-pip",
        "8.1.1-2ubuntu0.6",
        6,
        300,
        &["python2.7"],
        Devel,
        false,
    );
    add_pkg(
        &mut c,
        "python-setuptools",
        "20.7.0-1",
        8,
        400,
        &["python2.7"],
        Devel,
        false,
    );

    add_pkg(
        &mut c,
        "erlang-base",
        "18.3-dfsg-1ubuntu3.1",
        32,
        800,
        &["libc6"],
        Interpreters,
        false,
    );
    add_pkg(
        &mut c,
        "rabbitmq-server",
        "3.5.7-1ubuntu0.16",
        13,
        350,
        &["erlang-base"],
        Servers,
        false,
    );

    add_pkg(
        &mut c,
        "apache2",
        "2.4.18-2ubuntu3.17",
        12,
        280,
        &["libc6", "libssl1.0.0"],
        Web,
        false,
    );
    add_pkg(
        &mut c,
        "mysql-server-5.7",
        "5.7.33-0ubuntu0.16",
        55,
        600,
        &["libc6"],
        Databases,
        false,
    );
    add_pkg(
        &mut c,
        "mysql-client-5.7",
        "5.7.33-0ubuntu0.16",
        9,
        120,
        &["libc6"],
        Databases,
        false,
    );
    add_pkg(
        &mut c,
        "php7.0",
        "7.0.33-0ubuntu0.16",
        10,
        420,
        &["libc6"],
        Interpreters,
        false,
    );
    add_pkg(
        &mut c,
        "libapache2-mod-php7.0",
        "7.0.33",
        2,
        40,
        &["apache2", "php7.0"],
        Web,
        false,
    );

    add_pkg(
        &mut c,
        "libmozjs185",
        "1.8.5-2",
        18,
        90,
        &["libc6"],
        Libs,
        false,
    );
    add_pkg(
        &mut c,
        "couchdb",
        "1.6.0-0ubuntu7",
        55,
        700,
        &["erlang-base", "libmozjs185"],
        Databases,
        false,
    );

    add_pkg(
        &mut c,
        "openjdk-8-jre-headless",
        "8u141-b15",
        39,
        650,
        &["libc6"],
        Interpreters,
        false,
    );
    add_pkg(
        &mut c,
        "cassandra",
        "3.7",
        50,
        420,
        &["openjdk-8-jre-headless"],
        Databases,
        false,
    );
    add_pkg(
        &mut c,
        "tomcat8",
        "8.0.32-1ubuntu1.13",
        134,
        800,
        &["openjdk-8-jre-headless"],
        Web,
        false,
    );

    add_pkg(
        &mut c,
        "pgadmin3",
        "1.22.0-1",
        121,
        900,
        &["libpq5"],
        Databases,
        false,
    );
    add_pkg(
        &mut c,
        "php-pgsql",
        "7.0.33",
        3,
        25,
        &["php7.0", "libpq5"],
        Web,
        false,
    );

    add_pkg(
        &mut c,
        "nginx",
        "1.10.3-0ubuntu0.16",
        34,
        90,
        &["libc6", "libssl1.0.0"],
        Web,
        false,
    );
    add_pkg(&mut c, "php-fpm", "7.0.33", 8, 120, &["php7.0"], Web, false);
    add_pkg(
        &mut c,
        "php-mysql",
        "7.0.33",
        2,
        30,
        &["php7.0"],
        Web,
        false,
    );

    add_pkg(
        &mut c,
        "mongodb-org-server",
        "3.6.23",
        120,
        160,
        &["libc6"],
        Databases,
        false,
    );
    add_pkg(
        &mut c,
        "mongodb-org-mongos",
        "3.6.23",
        35,
        40,
        &["libc6"],
        Databases,
        false,
    );
    add_pkg(
        &mut c,
        "mongodb-org-tools",
        "3.6.23",
        53,
        60,
        &["libc6"],
        Databases,
        false,
    );

    add_pkg(
        &mut c,
        "owncloud-files",
        "10.0.3",
        150,
        11_500,
        &["php7.0", "apache2"],
        Web,
        false,
    );
    add_pkg(
        &mut c,
        "php-owncloud-mods",
        "10.0.3",
        34,
        3_000,
        &["php7.0"],
        Web,
        false,
    );

    add_pkg(
        &mut c,
        "xorg",
        "7.7+13ubuntu3",
        45,
        2_200,
        &["libc6"],
        Desktop,
        false,
    );
    add_pkg(&mut c, "fonts-core", "2016.02", 8, 300, &[], Desktop, false);
    let mut drng = SplitMix64::new(0xDE57);
    for i in 0..120 {
        let inst = drng.next_range(1, 5); // avg ≈ 2.8 MB
        let files = drng.next_range(40, 140) as usize;
        add_pkg(
            &mut c,
            &format!("desktop-pkg-{i}"),
            "1.2",
            inst,
            files,
            &["xorg"],
            Desktop,
            false,
        );
    }
    add_pkg(
        &mut c,
        "vsftpd",
        "3.0.3-3ubuntu2",
        3,
        40,
        &["libc6"],
        Servers,
        false,
    );
    add_pkg(
        &mut c,
        "nfs-common",
        "1.2.8",
        4,
        80,
        &["libc6"],
        Servers,
        false,
    );
    add_pkg(
        &mut c,
        "postfix",
        "3.1.0-3",
        6,
        200,
        &["libc6"],
        Servers,
        false,
    );
    add_pkg(
        &mut c,
        "dovecot-core",
        "2.2.22",
        8,
        250,
        &["libc6", "libssl1.0.0"],
        Servers,
        false,
    );

    add_pkg(
        &mut c,
        "eclipse-platform",
        "3.18.1-1",
        173,
        3_000,
        &["openjdk-8-jre-headless"],
        Devel,
        false,
    );
    add_pkg(
        &mut c,
        "build-essential",
        "12.1ubuntu2",
        70,
        1_300,
        &["libc6"],
        Devel,
        false,
    );
    add_pkg(
        &mut c,
        "python3-dev",
        "3.5.1-3",
        30,
        800,
        &["libc6"],
        Devel,
        false,
    );
    add_pkg(
        &mut c,
        "gdb",
        "7.11.1-0ubuntu1",
        12,
        150,
        &["libc6"],
        Devel,
        false,
    );
    add_pkg(
        &mut c,
        "maven",
        "3.3.9-3",
        24,
        400,
        &["openjdk-8-jre-headless"],
        Devel,
        false,
    );
    for i in 0..7 {
        add_pkg(
            &mut c,
            &format!("ide-tool-{i}"),
            "1.0",
            1,
            30,
            &["libc6"],
            Devel,
            false,
        );
    }

    add_pkg(
        &mut c,
        "jenkins",
        "2.346.1",
        140,
        900,
        &["openjdk-8-jre-headless"],
        Devel,
        false,
    );
    add_pkg(
        &mut c,
        "apache-solr",
        "5.5.5",
        160,
        1_200,
        &["openjdk-8-jre-headless"],
        Servers,
        false,
    );

    add_pkg(
        &mut c,
        "ruby2.3",
        "2.3.1-2ubuntu0.16",
        28,
        1_100,
        &["libc6"],
        Interpreters,
        false,
    );
    add_pkg(
        &mut c,
        "rails-bundle",
        "4.2.6-1",
        90,
        8_000,
        &["ruby2.3"],
        Web,
        false,
    );
    add_pkg(
        &mut c,
        "redmine",
        "3.2.1-2",
        144,
        10_300,
        &["rails-bundle"],
        Web,
        false,
    );

    add_pkg(
        &mut c,
        "elasticsearch",
        "5.6.16",
        170,
        700,
        &["openjdk-8-jre-headless"],
        Servers,
        false,
    );
    add_pkg(
        &mut c,
        "logstash",
        "5.6.16",
        140,
        600,
        &["openjdk-8-jre-headless"],
        Servers,
        false,
    );
    add_pkg(
        &mut c,
        "kibana",
        "5.6.16",
        85,
        26_500,
        &["libc6"],
        Servers,
        false,
    );

    // ---- Successive-build versions (Figure 3c). -----------------------
    // Each build rebuilds the same three packages with bumped versions:
    // ~66 MB nominal of fresh installed content per build.
    for b in 1..=ide_builds {
        add_pkg(
            &mut c,
            "maven",
            &format!("3.3.{}-3", 9 + b),
            24,
            400,
            &["openjdk-8-jre-headless"],
            Devel,
            false,
        );
        add_pkg(
            &mut c,
            "gdb",
            &format!("7.{}.1-0ubuntu1", 11 + b),
            12,
            150,
            &["libc6"],
            Devel,
            false,
        );
        add_pkg(
            &mut c,
            "python3-dev",
            &format!("3.5.{}-3", 1 + b),
            30,
            800,
            &["libc6"],
            Devel,
            false,
        );
    }

    c
}

/// The extra unpackaged system files of the base install (boot, initrd,
/// ld cache, locale archives): `(path, nominal KB)` pairs expanded to the
/// builder's `(String, u32)` input.
pub fn base_system_files() -> Vec<(String, u32)> {
    let mut rng = SplitMix64::new(0x5157EB);
    let mut out = Vec::with_capacity(4200);
    out.push(("/boot/vmlinuz-4.4.0-142-generic".to_string(), mb(7) as u32));
    out.push((
        "/boot/initrd.img-4.4.0-142-generic".to_string(),
        mb(38) as u32,
    ));
    out.push(("/etc/ld.so.cache".to_string(), mb(1) as u32));
    out.push(("/usr/lib/locale/locale-archive".to_string(), mb(10) as u32));
    for i in 0..4200 {
        // ≈65 MB nominal of small config/cache plumbing over many files.
        let size = rng.next_range(1, 30) as u32; // 1–30 KB nominal
        let dir = match i % 4 {
            0 => "etc",
            1 => "var/lib/systemd",
            2 => "usr/share/mime",
            _ => "var/lib/dpkg/info",
        };
        out.push((format!("/{dir}/sysfile-{i}"), size));
    }
    out
}

/// Tiny catalog + names for fast tests and doctests.
pub fn small_catalog() -> Catalog {
    let mut c = Catalog::new();
    add_pkg(
        &mut c,
        "libc6",
        "2.23",
        2,
        15,
        &["perl-base"],
        Section::Base,
        true,
    );
    add_pkg(
        &mut c,
        "perl-base",
        "5.22",
        1,
        8,
        &["dpkg"],
        Section::Base,
        true,
    );
    add_pkg(
        &mut c,
        "dpkg",
        "1.18",
        1,
        9,
        &["libc6"],
        Section::Base,
        true,
    );
    add_pkg(&mut c, "bash", "4.3", 1, 6, &["libc6"], Section::Base, true);
    add_pkg(
        &mut c,
        "coreutils",
        "8.25",
        2,
        12,
        &["libc6"],
        Section::Base,
        true,
    );
    add_pkg(
        &mut c,
        "libssl1.0.0",
        "1.0.2",
        1,
        4,
        &["libc6"],
        Section::Libs,
        false,
    );
    add_pkg(
        &mut c,
        "redis-server",
        "3.0.6",
        3,
        10,
        &["libc6"],
        Section::Databases,
        false,
    );
    add_pkg(
        &mut c,
        "nginx",
        "1.10.3",
        2,
        8,
        &["libc6", "libssl1.0.0"],
        Section::Web,
        false,
    );
    add_pkg(
        &mut c,
        "mysql-server-5.7",
        "5.7.33",
        4,
        14,
        &["libc6"],
        Section::Databases,
        false,
    );
    add_pkg(
        &mut c,
        "php7.0",
        "7.0.33",
        2,
        11,
        &["libc6"],
        Section::Interpreters,
        false,
    );
    add_pkg(
        &mut c,
        "apache2",
        "2.4.18",
        2,
        9,
        &["libc6", "libssl1.0.0"],
        Section::Web,
        false,
    );
    c.add(PackageSpec {
        name: "ubuntu-minimal".into(),
        version: Version::parse("1.0"),
        arch: Arch::Amd64,
        section: Section::Base,
        essential: true,
        deb_size: 1,
        installed_size: 2,
        depends: ["libc6", "bash", "coreutils"]
            .iter()
            .map(|d| Dependency::any(d))
            .collect(),
        manifest: FileManifest::default(),
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_builds() {
        let c = standard_catalog(0);
        assert!(c.len() > 550, "catalog has {} packages", c.len());
        assert!(c.newest("libc6").is_some());
        assert!(c.newest("elasticsearch").is_some());
    }

    #[test]
    fn base_closure_is_about_right() {
        // The base install should come out at ≈1.8 GB nominal (Mini's
        // mounted size minus junk/data/status headroom).
        let c = standard_catalog(0);
        let root = c.newest("ubuntu-minimal").unwrap();
        let closure = c.install_closure(&[root], Arch::Amd64).unwrap();
        assert!(closure.len() > 400, "base has {} packages", closure.len());
        let total: u64 = closure.iter().map(|&id| c.get(id).installed_size).sum();
        let nominal_gb = (total * 1024) as f64 / (1u64 << 30) as f64;
        assert!(
            (1.55..2.05).contains(&nominal_gb),
            "base install {nominal_gb:.2} GB nominal"
        );
        let files: usize = closure
            .iter()
            .map(|&id| c.get(id).manifest.file_count())
            .sum();
        assert!((55_000..90_000).contains(&files), "base has {files} files");
    }

    #[test]
    fn figure1_cycle_present() {
        let c = standard_catalog(0);
        let libc = c.newest("libc6").unwrap();
        let closure = c.install_closure(&[libc], Arch::Amd64).unwrap();
        let names: Vec<&str> = closure.iter().map(|&id| c.get(id).name.as_str()).collect();
        assert!(names.contains(&"perl-base") && names.contains(&"dpkg"));
    }

    #[test]
    fn ide_build_versions_added() {
        let c = standard_catalog(3);
        let mavens = c.versions_of(IStr::new("maven"));
        assert_eq!(mavens.len(), 4); // base + 3 builds
                                     // Versions strictly ascending.
        for w in mavens.windows(2) {
            assert!(c.get(w[0]).version < c.get(w[1]).version);
        }
    }

    #[test]
    fn manifests_deterministic_and_sized() {
        let m1 = gen_manifest("pkg", "1.0", 10_000, 50);
        let m2 = gen_manifest("pkg", "1.0", 10_000, 50);
        assert_eq!(m1, m2);
        assert_eq!(m1.file_count(), 50);
        let total = m1.total_bytes();
        assert!((9_000..=11_000).contains(&total), "total {total}");
    }

    #[test]
    fn version_bump_changes_most_not_all_content() {
        let a = gen_manifest("maven", "3.3.9", 50_000, 100);
        let b = gen_manifest("maven", "3.3.10", 50_000, 100);
        let changed = a
            .files
            .iter()
            .zip(b.files.iter())
            .filter(|(x, y)| x.seed != y.seed)
            .count();
        assert!((55..=85).contains(&changed), "{changed}/100 files changed");
    }

    #[test]
    fn small_catalog_resolves() {
        let c = small_catalog();
        let redis = c.newest("redis-server").unwrap();
        let closure = c.install_closure(&[redis], Arch::Amd64).unwrap();
        assert!(closure.len() >= 2);
    }
}
