//! Deterministic multi-tenant serving schedules.
//!
//! A [`ServeSchedule`] is the load half of the registry harness:
//! thousands of simulated clients issuing retrieve-heavy traffic with
//! Zipf-skewed image popularity (a few images are hot, most are cold —
//! the access pattern every registry trace study reports) and skewed
//! tenant demand (tenant 0 is the heavy hitter). Everything derives
//! from one seed through SplitMix64, and arrivals use only integer
//! arithmetic and exactly-rounded f64 ops (`+ - * /`), so the same
//! config produces a byte-identical schedule on any host — the same
//! contract [`crate::Trace`] honors, with the same render/digest
//! fingerprint pattern.
//!
//! The schedule is plain data (names and byte ranges, no store or
//! registry types); `xpl-bench`'s serve driver turns it into registry
//! requests against a real store.

use xpl_util::{Sha256, SplitMix64};

/// Serving-schedule generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    pub seed: u64,
    /// Simulated tenants; tenant 0 gets the most traffic.
    pub tenants: u32,
    /// Total requests across all tenants.
    pub requests: usize,
    /// Integer Zipf exponent for image popularity (1 = classic 1/rank;
    /// larger is hotter). Integer so weights need only exact f64
    /// division, never `powf`.
    pub zipf_exponent: u32,
    /// Per-256 chance a retrieval is a byte-range read instead of a
    /// full image (the trace convention: frac-of-disk addressing).
    pub range_per_256: u32,
    /// Mean virtual inter-arrival gap; actual gaps are uniform in
    /// `[mean/2, 3·mean/2)`.
    pub mean_interarrival_ns: u64,
}

impl ServeConfig {
    /// Retrieve-heavy defaults at a given seed: 8 tenants, 2000
    /// requests, classic Zipf, ~12% range reads, 400 µs mean gap.
    pub fn new(seed: u64) -> ServeConfig {
        ServeConfig {
            seed,
            tenants: 8,
            requests: 2000,
            zipf_exponent: 1,
            range_per_256: 32,
            mean_interarrival_ns: 400_000,
        }
    }
}

/// One scheduled client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeRequestSpec {
    pub tenant: u32,
    /// Virtual arrival time; the schedule is sorted by this field.
    pub arrival_ns: u64,
    pub image: String,
    /// `Some((start_frac, len_bytes))` for a range read, `start_frac`
    /// in 256ths of the disk size.
    pub range: Option<(u32, u32)>,
}

impl ServeRequestSpec {
    /// Canonical one-line form (what [`ServeSchedule::digest_hex`]
    /// hashes).
    pub fn render(&self) -> String {
        match self.range {
            None => format!(
                "t={} tenant={} retrieve {}",
                self.arrival_ns, self.tenant, self.image
            ),
            Some((frac, len)) => format!(
                "t={} tenant={} range {} frac={frac} len={len}",
                self.arrival_ns, self.tenant, self.image
            ),
        }
    }
}

/// A generated serving schedule: requests sorted by arrival time.
#[derive(Clone, Debug)]
pub struct ServeSchedule {
    pub seed: u64,
    pub requests: Vec<ServeRequestSpec>,
}

/// Cumulative Zipf weights over `n` ranks: `w(rank) = rank^-exponent`
/// computed by repeated exact division.
fn zipf_cumulative(n: usize, exponent: u32) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for rank in 1..=n {
        let mut w = 1.0f64;
        for _ in 0..exponent {
            w /= rank as f64;
        }
        total += w;
        cum.push(total);
    }
    cum
}

/// Draw a rank from cumulative weights.
fn zipf_sample(cum: &[f64], rng: &mut SplitMix64) -> usize {
    let u = rng.next_f64() * cum[cum.len() - 1];
    cum.partition_point(|&c| c <= u).min(cum.len() - 1)
}

impl ServeSchedule {
    /// Generate a schedule over `images`. Popularity rank is a seeded
    /// permutation of the catalog (so the hot set is not just the first
    /// catalog entries), tenants draw Zipf-skewed demand, and arrivals
    /// accumulate uniform gaps around the configured mean.
    pub fn generate(images: &[String], cfg: &ServeConfig) -> ServeSchedule {
        assert!(
            !images.is_empty(),
            "serve schedule needs at least one image"
        );
        assert!(cfg.tenants > 0, "serve schedule needs at least one tenant");
        let mut rng = SplitMix64::new(cfg.seed).derive("serve-schedule");

        // Fisher–Yates: popularity rank -> catalog image.
        let mut by_rank: Vec<&String> = images.iter().collect();
        for i in (1..by_rank.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            by_rank.swap(i, j);
        }
        let image_cum = zipf_cumulative(by_rank.len(), cfg.zipf_exponent);
        let tenant_cum = zipf_cumulative(cfg.tenants as usize, 1);

        let mut arrival = 0u64;
        let mut requests = Vec::with_capacity(cfg.requests);
        for _ in 0..cfg.requests {
            let gap_lo = cfg.mean_interarrival_ns / 2;
            arrival += gap_lo + rng.next_below(cfg.mean_interarrival_ns.max(1));
            let tenant = zipf_sample(&tenant_cum, &mut rng) as u32;
            let image = by_rank[zipf_sample(&image_cum, &mut rng)].clone();
            let range = if rng.next_below(256) < cfg.range_per_256 as u64 {
                Some((
                    rng.next_below(256) as u32,
                    rng.next_range(512, 16 * 1024) as u32,
                ))
            } else {
                None
            };
            requests.push(ServeRequestSpec {
                tenant,
                arrival_ns: arrival,
                image,
                range,
            });
        }
        ServeSchedule {
            seed: cfg.seed,
            requests,
        }
    }

    /// Canonical textual form, one request per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.requests {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }

    /// SHA-256 of [`ServeSchedule::render`] — the reproducibility
    /// fingerprint.
    pub fn digest_hex(&self) -> String {
        Sha256::digest(self.render().as_bytes()).to_hex()
    }

    /// Requests per tenant, indexed by tenant id.
    pub fn per_tenant(&self, tenants: u32) -> Vec<usize> {
        let mut counts = vec![0usize; tenants as usize];
        for r in &self.requests {
            counts[r.tenant as usize] += 1;
        }
        counts
    }

    /// Count of range-read requests.
    pub fn range_reads(&self) -> usize {
        self.requests.iter().filter(|r| r.range.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("img-{i:03}")).collect()
    }

    #[test]
    fn same_seed_byte_identical() {
        let cfg = ServeConfig::new(1234);
        let a = ServeSchedule::generate(&names(32), &cfg);
        let b = ServeSchedule::generate(&names(32), &cfg);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.digest_hex(), b.digest_hex());
        let c = ServeSchedule::generate(&names(32), &ServeConfig::new(1235));
        assert_ne!(a.digest_hex(), c.digest_hex());
    }

    #[test]
    fn arrivals_sorted_and_mix_sane() {
        let cfg = ServeConfig::new(7);
        let s = ServeSchedule::generate(&names(40), &cfg);
        assert_eq!(s.requests.len(), cfg.requests);
        assert!(s
            .requests
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        let ranges = s.range_reads();
        assert!(ranges > 0 && ranges < cfg.requests / 4, "{ranges}");
        assert!(s.requests.iter().all(|r| match r.range {
            Some((frac, len)) => frac < 256 && (512..=16 * 1024).contains(&len),
            None => true,
        }));
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let s = ServeSchedule::generate(&names(40), &ServeConfig::new(42));
        let mut hits: HashMap<&str, usize> = HashMap::new();
        for r in &s.requests {
            *hits.entry(r.image.as_str()).or_default() += 1;
        }
        let mut counts: Vec<usize> = hits.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest image dominates the median one by a wide margin.
        assert!(
            counts[0] >= 5 * counts[counts.len() / 2].max(1),
            "no skew: {counts:?}"
        );
        // Tenant 0 is the heavy hitter but others still show up.
        let per = s.per_tenant(8);
        assert!(per[0] > per[4], "{per:?}");
        assert!(per.iter().filter(|&&c| c > 0).count() >= 6, "{per:?}");
    }
}
