//! The Table II image recipes (in upload order) and the 40-build IDE
//! sequence.
//!
//! Each recipe lists primary packages plus per-image junk (unique caches/
//! logs) and user data. Junk volumes are the slack variable fitted so
//! mounted sizes track Table II; stack installed sizes were already fitted
//! to the publish-time column (see `catalog.rs`).

use xpl_guestfs::ImageRecipe;

/// Paper reference values for one Table II row.
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    pub name: &'static str,
    pub mounted_gb: f64,
    pub files: u64,
    pub sim_g: f64,
    pub publish_s: f64,
    pub retrieval_s: f64,
}

/// Table II as printed in the paper (targets for EXPERIMENTS.md).
pub const TABLE2_PAPER: [Table2Row; 19] = [
    Table2Row {
        name: "Mini",
        mounted_gb: 1.913,
        files: 75_749,
        sim_g: 0.0,
        publish_s: 39.52,
        retrieval_s: 24.64,
    },
    Table2Row {
        name: "Redis",
        mounted_gb: 1.914,
        files: 75_796,
        sim_g: 0.97,
        publish_s: 10.28,
        retrieval_s: 22.05,
    },
    Table2Row {
        name: "PostgreSql",
        mounted_gb: 1.963,
        files: 77_497,
        sim_g: 0.59,
        publish_s: 39.699,
        retrieval_s: 33.91,
    },
    Table2Row {
        name: "Django",
        mounted_gb: 1.969,
        files: 79_751,
        sim_g: 0.71,
        publish_s: 18.916,
        retrieval_s: 27.30,
    },
    Table2Row {
        name: "RabbitMQ",
        mounted_gb: 1.956,
        files: 77_596,
        sim_g: 0.56,
        publish_s: 25.620,
        retrieval_s: 33.87,
    },
    Table2Row {
        name: "Base",
        mounted_gb: 1.986,
        files: 78_471,
        sim_g: 0.89,
        publish_s: 42.236,
        retrieval_s: 47.17,
    },
    Table2Row {
        name: "CouchDB",
        mounted_gb: 1.965,
        files: 77_725,
        sim_g: 0.70,
        publish_s: 37.99,
        retrieval_s: 42.58,
    },
    Table2Row {
        name: "Cassandra",
        mounted_gb: 2.531,
        files: 79_740,
        sim_g: 0.71,
        publish_s: 42.58,
        retrieval_s: 35.66,
    },
    Table2Row {
        name: "Tomcat",
        mounted_gb: 2.049,
        files: 76_356,
        sim_g: 0.37,
        publish_s: 60.65,
        retrieval_s: 36.37,
    },
    Table2Row {
        name: "Lapp",
        mounted_gb: 2.107,
        files: 77_816,
        sim_g: 0.53,
        publish_s: 56.71,
        retrieval_s: 61.79,
    },
    Table2Row {
        name: "Lemp",
        mounted_gb: 2.112,
        files: 77_360,
        sim_g: 0.97,
        publish_s: 25.093,
        retrieval_s: 57.11,
    },
    Table2Row {
        name: "MongoDb",
        mounted_gb: 2.110,
        files: 75_820,
        sim_g: 0.15,
        publish_s: 90.465,
        retrieval_s: 29.33,
    },
    Table2Row {
        name: "Own Cloud",
        mounted_gb: 2.378,
        files: 90_667,
        sim_g: 0.76,
        publish_s: 80.942,
        retrieval_s: 100.43,
    },
    Table2Row {
        name: "Desktop",
        mounted_gb: 2.233,
        files: 90_338,
        sim_g: 0.50,
        publish_s: 201.721,
        retrieval_s: 102.34,
    },
    Table2Row {
        name: "Apache Solr",
        mounted_gb: 2.338,
        files: 79_161,
        sim_g: 0.84,
        publish_s: 71.555,
        retrieval_s: 92.57,
    },
    Table2Row {
        name: "IDE",
        mounted_gb: 2.727,
        files: 81_200,
        sim_g: 0.52,
        publish_s: 135.333,
        retrieval_s: 63.62,
    },
    Table2Row {
        name: "Jenkins",
        mounted_gb: 2.515,
        files: 79_695,
        sim_g: 0.87,
        publish_s: 63.504,
        retrieval_s: 81.24,
    },
    Table2Row {
        name: "Redmine",
        mounted_gb: 2.363,
        files: 95_309,
        sim_g: 0.79,
        publish_s: 112.908,
        retrieval_s: 97.08,
    },
    Table2Row {
        name: "Elastic Stack",
        mounted_gb: 2.671,
        files: 103_719,
        sim_g: 0.64,
        publish_s: 166.001,
        retrieval_s: 99.91,
    },
];

const MB: u64 = 1024; // nominal MB in materialized bytes

fn seed_of(name: &str) -> u64 {
    name.bytes().fold(0xA11CEu64, |h, b| {
        h.wrapping_mul(131).wrapping_add(b as u64)
    })
}

fn recipe(
    name: &str,
    primary: &[&str],
    junk_mb: u64,
    junk_files: u32,
    data_mb: u64,
) -> ImageRecipe {
    let s = seed_of(name);
    ImageRecipe::new(name, primary)
        .with_junk(junk_mb * MB, junk_files, s ^ 0x77)
        .with_user_data(data_mb * MB, s ^ 0xDA)
}

/// The 19 Table II recipes, in the paper's upload order.
pub fn table2_recipes() -> Vec<ImageRecipe> {
    let desktop_primaries: Vec<String> = {
        let mut p = vec![
            "xorg".to_string(),
            "fonts-core".to_string(),
            "apache2".to_string(),
            "mysql-server-5.7".to_string(),
            "php7.0".to_string(),
            "libapache2-mod-php7.0".to_string(),
            "vsftpd".to_string(),
            "nfs-common".to_string(),
            "postfix".to_string(),
            "dovecot-core".to_string(),
        ];
        for i in 0..120 {
            p.push(format!("desktop-pkg-{i}"));
        }
        p
    };
    let ide_primaries: Vec<String> = {
        let mut p = vec![
            "eclipse-platform".to_string(),
            "build-essential".to_string(),
            "python3-dev".to_string(),
            "gdb".to_string(),
            "maven".to_string(),
        ];
        for i in 0..7 {
            p.push(format!("ide-tool-{i}"));
        }
        p
    };
    fn as_refs(v: &[String]) -> Vec<&str> {
        v.iter().map(String::as_str).collect()
    }

    vec![
        recipe("Mini", &[], 55, 450, 5),
        recipe("Redis", &["redis-server", "redis-tools"], 60, 500, 5),
        recipe(
            "PostgreSql",
            &["postgresql-9.5", "postgresql-client-9.5"],
            60,
            500,
            5,
        ),
        recipe(
            "Django",
            &["python-django", "python-pip", "python-setuptools"],
            28,
            420,
            5,
        ),
        recipe("RabbitMQ", &["rabbitmq-server"], 60, 500, 5),
        recipe(
            "Base",
            &[
                "apache2",
                "mysql-server-5.7",
                "mysql-client-5.7",
                "php7.0",
                "libapache2-mod-php7.0",
            ],
            60,
            500,
            5,
        ),
        recipe("CouchDB", &["couchdb"], 60, 500, 5),
        recipe("Cassandra", &["cassandra"], 520, 3_000, 10),
        recipe("Tomcat", &["tomcat8"], 60, 500, 5),
        recipe(
            "Lapp",
            &[
                "apache2",
                "postgresql-9.5",
                "php7.0",
                "php-pgsql",
                "pgadmin3",
            ],
            60,
            500,
            5,
        ),
        recipe(
            "Lemp",
            &["nginx", "php-fpm", "php-mysql", "mysql-server-5.7"],
            85,
            620,
            5,
        ),
        recipe(
            "MongoDb",
            &[
                "mongodb-org-server",
                "mongodb-org-mongos",
                "mongodb-org-tools",
            ],
            60,
            500,
            5,
        ),
        recipe(
            "Own Cloud",
            &["owncloud-files", "php-owncloud-mods"],
            250,
            1_500,
            10,
        ),
        recipe("Desktop", &as_refs(&desktop_primaries), 60, 500, 5),
        recipe("Apache Solr", &["apache-solr"], 220, 1_300, 5),
        recipe("IDE", &as_refs(&ide_primaries), 490, 2_800, 8),
        recipe("Jenkins", &["jenkins"], 420, 2_400, 5),
        recipe("Redmine", &["redmine"], 185, 1_100, 5),
        recipe(
            "Elastic Stack",
            &["elasticsearch", "logstash", "kibana"],
            360,
            2_000,
            5,
        ),
    ]
}

/// The k-th successive IDE build (k = 0 is the Table II IDE image).
///
/// Every build rebuilds `maven`, `gdb` and `python3-dev` at bumped
/// versions (~66 MB nominal of fresh installed content, ~70 % changed
/// files) and refreshes ~45 MB of build-time junk; the remaining junk is
/// stable across builds and dedups at file level.
pub fn ide_build_recipe(k: u32) -> ImageRecipe {
    let mut p = vec![
        "eclipse-platform".to_string(),
        "build-essential".to_string(),
        "python3-dev".to_string(),
        "gdb".to_string(),
        "maven".to_string(),
    ];
    for i in 0..7 {
        p.push(format!("ide-tool-{i}"));
    }
    let refs: Vec<&str> = p.iter().map(String::as_str).collect();
    let mut r = ImageRecipe::new(&format!("IDE-build-{k:02}"), &refs)
        // Stable junk: identical across builds.
        .with_junk(445 * MB, 2_500, 0x1DEA)
        // Fresh junk: unique to this build.
        .with_junk(45 * MB, 320, 0x1DEA ^ (0x9E37 + k as u64))
        .with_user_data(8 * MB, 0xDA7A);
    if k > 0 {
        use xpl_pkg::Version;
        r = r
            .with_pin("maven", Version::parse(&format!("3.3.{}-3", 9 + k)))
            .with_pin("gdb", Version::parse(&format!("7.{}.1-0ubuntu1", 11 + k)))
            .with_pin("python3-dev", Version::parse(&format!("3.5.{}-3", 1 + k)));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_recipes_in_paper_order() {
        let r = table2_recipes();
        assert_eq!(r.len(), 19);
        for (recipe, row) in r.iter().zip(TABLE2_PAPER.iter()) {
            assert_eq!(recipe.name, row.name);
        }
    }

    #[test]
    fn desktop_has_many_primaries() {
        let r = table2_recipes();
        let desktop = r.iter().find(|r| r.name == "Desktop").unwrap();
        assert!(desktop.primary.len() > 120, "{}", desktop.primary.len());
    }

    #[test]
    fn ide_builds_pin_increasing_versions() {
        let r1 = ide_build_recipe(1);
        let r2 = ide_build_recipe(2);
        assert_eq!(r1.pinned.len(), 3);
        let v1 = &r1.pinned.iter().find(|(n, _)| n == "maven").unwrap().1;
        let v2 = &r2.pinned.iter().find(|(n, _)| n == "maven").unwrap().1;
        assert!(v2 > v1);
        // Build 0 uses catalog-newest (no pins).
        assert!(ide_build_recipe(0).pinned.is_empty());
    }

    #[test]
    fn ide_builds_share_stable_junk() {
        let a = ide_build_recipe(3);
        let b = ide_build_recipe(4);
        assert_eq!(a.junk[0].seed, b.junk[0].seed, "stable junk shared");
        assert_ne!(a.junk[1].seed, b.junk[1].seed, "fresh junk unique");
    }

    #[test]
    fn paper_reference_is_consistent() {
        // Sanity on transcription: sizes grow roughly with position and
        // every row has positive time entries.
        for row in &TABLE2_PAPER {
            assert!(row.mounted_gb > 1.8 && row.mounted_gb < 3.0);
            assert!(row.publish_s > 0.0 && row.retrieval_s > 0.0);
            assert!(row.files > 70_000);
        }
    }
}
