//! Criterion benches over the experiment pipelines at small-world scale:
//! one bench per paper table/figure family, so `cargo bench` exercises the
//! same code paths the `repro` binary runs at standard scale.

use criterion::{criterion_group, criterion_main, Criterion};
use xpl_bench::experiments::{fig3_sizes, table2, Fig3Scenario};
use xpl_core::ExpelliarmusRepo;
use xpl_store::{ImageStore, RetrieveRequest};
use xpl_workloads::World;

fn bench_table2_pipeline(c: &mut Criterion) {
    let world = World::small();
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table2-small", |b| b.iter(|| table2(&world)));
    g.finish();
}

fn bench_fig3_pipeline(c: &mut Criterion) {
    let world = World::small();
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig3-small", |b| {
        b.iter(|| fig3_sizes(&world, Fig3Scenario::Nineteen))
    });
    g.finish();
}

fn bench_publish_retrieve(c: &mut Criterion) {
    let world = World::small();
    let lamp = world.build_image("lamp");
    let mut g = c.benchmark_group("store-ops");
    g.sample_size(10);
    g.bench_function("expelliarmus-publish", |b| {
        b.iter(|| {
            let repo = ExpelliarmusRepo::new(world.env());
            repo.publish(&world.catalog, &lamp).unwrap()
        })
    });
    let repo = ExpelliarmusRepo::new(world.env());
    repo.publish(&world.catalog, &lamp).unwrap();
    let req = RetrieveRequest::for_image(&lamp, &world.catalog);
    g.bench_function("expelliarmus-retrieve", |b| {
        b.iter(|| repo.retrieve(&world.catalog, &req).unwrap())
    });
    g.bench_function("image-build", |b| b.iter(|| world.build_image("lamp")));
    g.finish();
}

criterion_group!(
    experiments,
    bench_table2_pipeline,
    bench_fig3_pipeline,
    bench_publish_retrieve
);
criterion_main!(experiments);
