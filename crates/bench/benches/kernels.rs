//! Criterion microbenches for the hot kernels: content hashing, DEFLATE,
//! chunking, similarity computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xpl_chunking::rabin::{chunk_cdc, CdcParams};
use xpl_compress::{deflate, gzip_compress, inflate};
use xpl_semgraph::{sim_g, MasterGraph};
use xpl_util::{Sha256, SplitMix64};
use xpl_workloads::World;

fn payload(len: usize) -> Vec<u8> {
    xpl_pkg::content::generate(42, len)
}

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [1usize << 10, 1 << 16, 1 << 20] {
        let data = payload(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| Sha256::digest(d))
        });
    }
    g.finish();
}

fn bench_deflate(c: &mut Criterion) {
    let mut g = c.benchmark_group("deflate");
    g.sample_size(10);
    let data = payload(256 * 1024);
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress-256k", |b| b.iter(|| deflate(&data)));
    let compressed = deflate(&data);
    g.bench_function("inflate-256k", |b| b.iter(|| inflate(&compressed).unwrap()));
    g.bench_function("gzip-256k", |b| b.iter(|| gzip_compress(&data)));
    g.finish();
}

fn bench_chunking(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunking");
    let data = payload(1 << 20);
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("cdc-1m", |b| {
        b.iter(|| chunk_cdc(&data, CdcParams::with_avg(4096)))
    });
    g.bench_function("fixed-1m", |b| {
        b.iter(|| xpl_chunking::fixed::chunk_fixed(&data, 4096))
    });
    g.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let world = World::small();
    let names = world.image_names();
    let graphs: Vec<_> = names
        .iter()
        .map(|n| {
            let vmi = world.build_image(n);
            let installed = vmi.pkgdb.installed_ids();
            let primary_set: std::collections::HashSet<_> = vmi.primary.iter().copied().collect();
            let base_roots: Vec<_> = vmi
                .pkgdb
                .manual_ids()
                .into_iter()
                .filter(|id| !primary_set.contains(id))
                .collect();
            xpl_semgraph::SemanticGraph::of_image(
                &world.catalog,
                &vmi.name,
                vmi.base.clone(),
                &installed,
                &vmi.primary,
                &base_roots,
            )
        })
        .collect();
    let mut master = MasterGraph::create(&graphs[0]);
    for g in &graphs[1..] {
        master.absorb(g);
    }
    let mut g = c.benchmark_group("similarity");
    g.bench_function("sim-g-pair", |b| b.iter(|| sim_g(&graphs[0], &graphs[1])));
    g.bench_function("sim-g-master", |b| {
        b.iter(|| master.similarity_to(&graphs[0]))
    });
    g.finish();
}

fn bench_content_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("content");
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("generate-64k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            xpl_pkg::content::generate(seed, 64 * 1024)
        })
    });
    let mut rng = SplitMix64::new(1);
    g.bench_function("splitmix-fill-64k", |b| {
        let mut buf = vec![0u8; 64 * 1024];
        b.iter(|| rng.fill_bytes(&mut buf))
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_sha256,
    bench_deflate,
    bench_chunking,
    bench_similarity,
    bench_content_gen
);
criterion_main!(kernels);
