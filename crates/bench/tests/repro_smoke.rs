//! Smoke tests for the `repro` binary: the CLI surface and its JSON
//! output are executed inside `cargo test`, so neither can silently rot.
//!
//! Commands run at test-friendly scale (`--world small`, short churn
//! traces); the release-mode full runs stay in CI / EXPERIMENTS.md.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn table2_runs_on_the_small_world() {
    let out = repro()
        .args(["table2", "--world", "small"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("TABLE II"), "unexpected output: {stdout}");
    // Small-world rows are measured (non-zero publish times).
    assert!(
        stdout.contains("mini"),
        "missing small-world rows: {stdout}"
    );
}

#[test]
fn churn_subcommand_emits_json_and_passes_oracle() {
    let path = std::env::temp_dir().join(format!("churn-smoke-{}.json", std::process::id()));
    let out = repro()
        .args(["churn", "--seed", "7", "--ops", "40"])
        .args(["--json", path.to_str().unwrap()])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "oracle must pass; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("oracle: PASS"), "{stdout}");

    let json = std::fs::read_to_string(&path).expect("churn JSON written");
    std::fs::remove_file(&path).ok();
    for key in [
        "\"trace_sha256\"",
        "\"violations\"",
        "\"stores\"",
        "\"oracle_checks\"",
        "\"Expelliarmus\"",
    ] {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }
    assert!(json.contains("\"violations\": []"), "violations not empty");
}

#[test]
fn churn_threads_flag_is_thread_count_invariant() {
    // The concurrent driver through the CLI: --threads 1 and --threads 4
    // must print the same report and write the same JSON.
    let path =
        |t: usize| std::env::temp_dir().join(format!("churn-mt-{}-{t}.json", std::process::id()));
    let run = |threads: usize| {
        let p = path(threads);
        let out = repro()
            .args(["churn", "--seed", "7", "--ops", "40"])
            .args(["--threads", &threads.to_string()])
            .args(["--json", p.to_str().unwrap()])
            .output()
            .expect("spawn repro");
        assert!(
            out.status.success(),
            "oracle must pass at {threads} threads; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json = std::fs::read_to_string(&p).expect("churn JSON written");
        std::fs::remove_file(&p).ok();
        (String::from_utf8_lossy(&out.stdout).into_owned(), json)
    };
    let (stdout1, json1) = run(1);
    let (stdout4, json4) = run(4);
    assert_eq!(json1, json4, "JSON must be byte-identical across pools");
    assert_eq!(stdout1, stdout4);
    assert!(stdout1.contains("oracle: PASS"), "{stdout1}");
}

#[test]
fn churn_durable_replays_with_crash_recovery() {
    let path = std::env::temp_dir().join(format!("churn-durable-{}.json", std::process::id()));
    let out = repro()
        .args(["churn", "--seed", "7", "--ops", "40", "--durable"])
        .args(["--crashes", "2", "--crash-seed", "42"])
        .args(["--json", path.to_str().unwrap()])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "oracle must pass; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("oracle: PASS"), "{stdout}");
    assert!(
        stdout.contains("durable: 2 crash-recovery pairs injected"),
        "{stdout}"
    );
    let json = std::fs::read_to_string(&path).expect("durable churn JSON written");
    std::fs::remove_file(&path).ok();
    for key in [
        "\"cas_fingerprints\"",
        "\"durable\"",
        "\"wal_records_replayed\"",
        "\"torn_tails\"",
        "\"crashes\": 2",
    ] {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }

    // The durable replay's converged fingerprints must equal the
    // in-memory replay's (same base trace, no crash ops) — the diff CI
    // performs at standard scale.
    let mem = repro()
        .args(["churn", "--seed", "7", "--ops", "40"])
        .args(["--json", path.to_str().unwrap()])
        .output()
        .expect("spawn repro");
    assert!(mem.status.success());
    let mem_json = std::fs::read_to_string(&path).expect("in-memory churn JSON written");
    std::fs::remove_file(&path).ok();
    let fingerprints = |j: &str| -> Vec<String> {
        j.lines()
            .filter(|l| l.contains("\"fingerprint\""))
            .map(|l| l.trim().to_string())
            .collect()
    };
    let (durable_fps, mem_fps) = (fingerprints(&json), fingerprints(&mem_json));
    assert!(!durable_fps.is_empty());
    assert_eq!(durable_fps, mem_fps, "converged fingerprints must match");
}

#[test]
fn audit_subcommand_passes_on_the_small_world() {
    let out = repro()
        .args(["audit", "--world", "small"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("AUDIT: PASS"), "{stdout}");
    for store in ["Qcow2", "Mirage", "Hemera", "Expelliarmus"] {
        assert!(stdout.contains(store), "missing {store}: {stdout}");
    }
}

#[test]
fn churn_is_deterministic_across_processes() {
    let run = || {
        let out = repro()
            .args(["churn", "--seed", "21", "--ops", "30"])
            .output()
            .expect("spawn repro");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(run(), run(), "same seed must reproduce byte-identically");
}

#[test]
fn bench_subcommand_emits_and_validates_json() {
    let path = std::env::temp_dir().join(format!("bench-smoke-{}.json", std::process::id()));
    let out = repro()
        .args(["bench", "--quick", "--json", path.to_str().unwrap()])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["sha256", "deflate", "chunk-cdc", "gzip-parallel", "churn"] {
        assert!(stdout.contains(needle), "missing {needle}: {stdout}");
    }

    let json = std::fs::read_to_string(&path).expect("bench JSON written");
    for key in [
        "\"schema_version\"",
        "\"kernels\"",
        "\"mib_per_s\"",
        "\"parallel\"",
        "\"speedup\"",
        "\"end_to_end\"",
        "\"churn_wall_s\"",
    ] {
        assert!(json.contains(key), "JSON missing {key}");
    }

    // The --check mode must accept the file it just produced…
    let out = repro()
        .args(["bench", "--check", path.to_str().unwrap()])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "check failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // …and reject a corrupted one.
    std::fs::write(&path, json.replace("\"kernels\"", "\"k3rnels\"")).unwrap();
    let out = repro()
        .args(["bench", "--check", path.to_str().unwrap()])
        .output()
        .expect("spawn repro");
    assert!(
        !out.status.success(),
        "corrupt BENCH.json must fail --check"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_subcommand_emits_json_and_passes_oracle() {
    let path = std::env::temp_dir().join(format!("serve-smoke-{}.json", std::process::id()));
    let out = repro()
        .args([
            "serve",
            "--seed",
            "9",
            "--requests",
            "100",
            "--tenants",
            "3",
        ])
        .args(["--json", path.to_str().unwrap()])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "serve oracle must pass; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("oracle: PASS"), "{stdout}");
    assert!(stdout.contains("request-log sha256"), "{stdout}");

    let json = std::fs::read_to_string(&path).expect("serve JSON written");
    std::fs::remove_file(&path).ok();
    for key in [
        "\"schema_version\": 5",
        "\"request_log_sha256\"",
        "\"key_digests_sha256\"",
        "\"p50_latency_ms\"",
        "\"p99_latency_ms\"",
        "\"coalescing_hit_rate\"",
        "\"fairness_max_min_served\"",
        "\"sustained_ops_per_s\"",
        "\"per_tenant\"",
    ] {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }
    assert!(json.contains("\"violations\": []"), "violations not empty");
}

#[test]
fn serve_fingerprints_are_thread_count_invariant() {
    // Everything virtual-time in the serve report — the request log,
    // the schedule, the payload-digest table, latency percentiles —
    // must be byte-identical between a 1-thread and a 4-thread replay
    // pool. Only wall-clock fields may differ.
    let run = |threads: &str| {
        let out = repro()
            .args([
                "serve",
                "--seed",
                "11",
                "--requests",
                "80",
                "--tenants",
                "3",
            ])
            .args(["--threads", threads])
            .output()
            .expect("spawn repro");
        assert!(
            out.status.success(),
            "serve must pass at {threads} threads; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let grab = |label: &str| -> String {
            stdout
                .lines()
                .find(|l| l.contains(label))
                .unwrap_or_else(|| panic!("no {label} line in {stdout}"))
                .to_string()
        };
        (
            grab("request-log sha256"),
            grab("schedule sha256"),
            grab("key-digests sha256"),
            grab("latency p50"),
        )
    };
    assert_eq!(run("1"), run("4"));
}

#[test]
fn cli_validation_errors_are_one_line_and_exit_2() {
    // Each bad invocation: exit code 2 and a single clear line on
    // stderr — not a panic, not a silent fall-back onto defaults.
    for (args, needle) in [
        (
            vec!["churn", "--threads", "0"],
            "--threads must be at least 1",
        ),
        (
            vec!["serve", "--threads", "0"],
            "--threads must be at least 1",
        ),
        (vec!["churn", "--threads", "x"], "invalid --threads value"),
        (vec!["churn", "--ops", "0"], "--ops must be at least 1"),
        (vec!["churn", "--seed", "banana"], "invalid --seed value"),
        (vec!["churn", "--scale", "huge"], "invalid --scale value"),
        (vec!["serve", "--scale", "tiny"], "invalid --scale value"),
        (
            vec!["serve", "--requests", "0"],
            "--requests must be at least 1",
        ),
        (
            vec!["serve", "--tenants", "0"],
            "--tenants must be at least 1",
        ),
        (vec!["serve", "--store", "zfs"], "unknown --store"),
        (vec!["churn", "--codec", "zstd"], "unknown --codec"),
        (vec!["serve", "--codec", "zstd"], "unknown --codec"),
        (vec!["bench", "--codec", "zstd"], "invalid --codec value"),
        (
            vec!["churn", "--ops", "10", "--durable", "--crashes", "40"],
            "--crashes 40 exceeds the trace's 10 ops",
        ),
    ] {
        let out = repro().args(&args).output().expect("spawn repro");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        let line = stderr
            .lines()
            .find(|l| l.starts_with("repro: "))
            .unwrap_or_else(|| panic!("{args:?}: no `repro: …` line in {stderr:?}"));
        assert!(line.contains(needle), "{args:?}: {line:?} lacks {needle:?}");
    }
}

#[test]
fn churn_codec_tiers_replay_to_identical_fingerprints() {
    // The digest-preservation pin through the CLI: the same seeded
    // trace replayed under the mixed hot/cold tier and under the
    // all-DEFLATE tier must converge every CAS store to identical
    // content fingerprints (recompression never changes logical bytes).
    let path = std::env::temp_dir().join(format!("churn-codec-{}.json", std::process::id()));
    let run = |codec: &str| {
        let out = repro()
            .args(["churn", "--seed", "7", "--ops", "40", "--codec", codec])
            .args(["--json", path.to_str().unwrap()])
            .output()
            .expect("spawn repro");
        assert!(
            out.status.success(),
            "oracle must pass under --codec {codec}; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(stdout.contains(&format!("codec tier: {codec}")), "{stdout}");
        let json = std::fs::read_to_string(&path).expect("churn JSON written");
        std::fs::remove_file(&path).ok();
        json.lines()
            .filter(|l| l.contains("\"fingerprint\""))
            .map(|l| l.trim().to_string())
            .collect::<Vec<_>>()
    };
    let mixed = run("mixed");
    let dense = run("deflate");
    assert!(!mixed.is_empty(), "CAS fingerprints must be reported");
    assert_eq!(mixed, dense, "codec tiers must not change content identity");
}

#[test]
fn ablate_codec_emits_all_three_tiers() {
    let path = std::env::temp_dir().join(format!("ablate-codec-{}.json", std::process::id()));
    let out = repro()
        .args(["ablate-codec", "--payload-mib", "1"])
        .args(["--json", path.to_str().unwrap()])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CODEC ABLATION"), "{stdout}");
    for codec in ["raw", "blocked-deflate", "blocked-lz4"] {
        assert!(stdout.contains(codec), "missing {codec} row: {stdout}");
    }
    let json = std::fs::read_to_string(&path).expect("ablation JSON written");
    std::fs::remove_file(&path).ok();
    for key in [
        "\"codec\"",
        "\"ratio\"",
        "\"compress_mib_per_s\"",
        "\"decompress_mib_per_s\"",
        "\"range_read_mib_per_s\"",
        "\"blocked-lz4\"",
    ] {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = repro().arg("fig9z").output().expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
