//! Plain-text rendering of experiment results (the `repro` binary's
//! output format: one table per paper table/figure).

use crate::experiments::{Fig3Result, Fig5aResult, Fig5bResult, PublishTimesResult, Table2Result};
use xpl_workloads::TABLE2_PAPER;

fn hr(width: usize) -> String {
    "-".repeat(width)
}

/// Render Table II with paper reference columns alongside.
pub fn render_table2(r: &Table2Result) -> String {
    let mut out = String::new();
    out.push_str("TABLE II: Experimental VMI characteristics (measured vs. paper)\n");
    out.push_str(&format!(
        "{:<14} {:>8} {:>8} {:>7} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "VMI",
        "mntGB",
        "mntGB*",
        "files",
        "files*",
        "SimG",
        "SimG*",
        "pub s",
        "pub s*",
        "ret s",
        "ret s*"
    ));
    out.push_str(&hr(116));
    out.push('\n');
    for (row, paper) in r.rows.iter().zip(TABLE2_PAPER.iter()) {
        out.push_str(&format!(
            "{:<14} {:>8.3} {:>8.3} {:>7} {:>7} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}\n",
            row.name,
            row.mounted_gb,
            paper.mounted_gb,
            row.files / 1000,
            paper.files / 1000,
            row.sim_g,
            paper.sim_g,
            row.publish_s,
            paper.publish_s,
            row.retrieval_s,
            paper.retrieval_s,
        ));
    }
    out.push_str("(* = paper value; files in thousands)\n");
    out
}

/// Render a Figure 3 cumulative-size chart as a table.
pub fn render_fig3(title: &str, r: &Fig3Result) -> String {
    let mut out = format!("{title}: cumulative repository size (nominal GB)\n");
    out.push_str(&format!("{:<14}", "VMI"));
    for (name, _) in &r.series {
        out.push_str(&format!(" {name:>13}"));
    }
    out.push('\n');
    out.push_str(&hr(14 + 14 * r.series.len()));
    out.push('\n');
    for (i, img) in r.images.iter().enumerate() {
        out.push_str(&format!("{:<14}", truncate(img, 14)));
        for (_, curve) in &r.series {
            out.push_str(&format!(" {:>13.2}", curve[i]));
        }
        out.push('\n');
    }
    out
}

/// Render publish-time series (Figures 4a/4b).
pub fn render_publish(title: &str, r: &PublishTimesResult) -> String {
    let mut out = format!("{title}: VMI publish time (seconds)\n");
    out.push_str(&format!("{:<14}", "VMI"));
    for (name, _) in &r.series {
        out.push_str(&format!(" {name:>13}"));
    }
    out.push('\n');
    out.push_str(&hr(14 + 14 * r.series.len()));
    out.push('\n');
    for (i, img) in r.images.iter().enumerate() {
        out.push_str(&format!("{:<14}", truncate(img, 14)));
        for (_, curve) in &r.series {
            out.push_str(&format!(" {:>13.2}", curve[i]));
        }
        out.push('\n');
    }
    out
}

/// Render the Figure 5a phase breakdown.
pub fn render_fig5a(r: &Fig5aResult) -> String {
    let mut out = String::from("FIGURE 5a: Expelliarmus retrieval time breakdown (seconds)\n");
    out.push_str(&format!("{:<14}", "VMI"));
    for (p, _) in &r.phases {
        out.push_str(&format!(" {:>13}", truncate(p, 13)));
    }
    out.push_str(&format!(" {:>13}\n", "total"));
    out.push_str(&hr(14 + 14 * (r.phases.len() + 1)));
    out.push('\n');
    for (i, img) in r.images.iter().enumerate() {
        out.push_str(&format!("{:<14}", truncate(img, 14)));
        let mut total = 0.0;
        for (_, v) in &r.phases {
            total += v[i];
            out.push_str(&format!(" {:>13.2}", v[i]));
        }
        out.push_str(&format!(" {total:>13.2}\n"));
    }
    out
}

/// Render the Figure 5b retrieval comparison.
pub fn render_fig5b(r: &Fig5bResult) -> String {
    let mut out = String::from("FIGURE 5b: VMI retrieval time comparison (seconds)\n");
    out.push_str(&format!("{:<14}", "VMI"));
    for (name, _) in &r.series {
        out.push_str(&format!(" {name:>13}"));
    }
    out.push('\n');
    out.push_str(&hr(14 + 14 * r.series.len()));
    out.push('\n');
    for (i, img) in r.images.iter().enumerate() {
        out.push_str(&format!("{:<14}", truncate(img, 14)));
        for (_, curve) in &r.series {
            out.push_str(&format!(" {:>13.2}", curve[i]));
        }
        out.push('\n');
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::MeasuredRow;

    #[test]
    fn table2_renders_all_rows() {
        let rows = TABLE2_PAPER
            .iter()
            .map(|p| MeasuredRow {
                name: p.name.to_string(),
                mounted_gb: p.mounted_gb,
                files: p.files,
                sim_g: p.sim_g,
                publish_s: p.publish_s,
                retrieval_s: p.retrieval_s,
            })
            .collect();
        let s = render_table2(&Table2Result { rows });
        assert!(s.contains("Elastic Stack"));
        assert_eq!(s.lines().count(), 19 + 4);
    }

    #[test]
    fn truncate_handles_long_names() {
        assert_eq!(truncate("short", 10), "short");
        assert!(truncate("a-very-long-image-name", 10).len() <= 12);
    }
}
