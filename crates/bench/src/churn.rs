//! Trace-driven churn replay with a differential oracle.
//!
//! [`run_churn`] generates a deterministic lifecycle trace over a
//! [`ScaledWorld`] and replays it against all five evaluated stores
//! (Qcow2, Qcow2+Gzip, Mirage, Hemera, Expelliarmus) in lockstep. After
//! **every** operation the oracle checks:
//!
//! 1. **Differential retrieval** — the semantic fingerprint (files sans
//!    junk/status + installed package set) of every retrieved image is
//!    identical across all stores *and* to the image as published;
//!    snapshot stores additionally reproduce the full fingerprint
//!    byte-for-byte, and repeated retrievals (bursts) are stable.
//! 2. **Refcount integrity** — each store's `check_integrity` audit:
//!    CAS/DB refcounts equal the live references its manifests imply
//!    (no leaks from the delete / upgrade-republish paths, no orphans).
//! 3. **Size ledger** — `repo_bytes` evolves exactly as the report
//!    stream claims (`after == before + bytes_added - bytes_freed` on
//!    publish, `after == before - bytes_freed` on delete, unchanged by
//!    retrieval), and deleted images are `NotFound` on monolithic
//!    stores. Qcow2/Gzip/Mirage/Hemera derive their report numbers from
//!    gross content movements, so the check is independent of
//!    `repo_bytes`; Expelliarmus reports net deltas (its DB payload
//!    moves both ways within one publish), where the refcount audit is
//!    the independent witness.
//!
//! Violations are collected, not panicked, so a single run reports every
//! divergence; callers (the `repro churn` subcommand, CI, the
//! integration suite) assert the list is empty.

use serde::Serialize;
use xpl_baselines::{GzipStore, HemeraStore, MirageStore, QcowStore};
use xpl_core::ExpelliarmusRepo;
use xpl_simio::SimEnv;
use xpl_store::{oracle, ImageStore, RetrieveRequest, StoreError};
use xpl_util::{Digest, FxHashMap};
use xpl_workloads::{ScaleConfig, ScaledWorld, Trace, TraceConfig, TraceOp};

/// Replay parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    pub seed: u64,
    /// Trace length (a burst is one entry).
    pub ops: usize,
    pub scale: ScaleConfig,
}

impl ChurnConfig {
    /// Test-friendly scale (debug builds replay ~500 ops in seconds).
    pub fn small(seed: u64, ops: usize) -> ChurnConfig {
        ChurnConfig {
            seed,
            ops,
            scale: ScaleConfig::small(seed),
        }
    }

    /// Release-mode stress scale.
    pub fn standard(seed: u64, ops: usize) -> ChurnConfig {
        ChurnConfig {
            seed,
            ops,
            scale: ScaleConfig::standard(seed),
        }
    }
}

/// Per-store outcome summary.
#[derive(Clone, Debug, Serialize)]
pub struct StoreSummary {
    pub store: String,
    pub final_repo_bytes: u64,
    pub final_images: usize,
    pub bytes_added_total: u64,
    pub bytes_freed_total: u64,
    pub sim_seconds: f64,
}

/// The JSON-serialized replay outcome.
#[derive(Clone, Debug, Serialize)]
pub struct ChurnReport {
    pub seed: u64,
    pub ops: usize,
    pub publishes: usize,
    pub retrieves: usize,
    pub upgrades: usize,
    pub deletes: usize,
    pub bursts: usize,
    pub burst_retrieves: usize,
    pub oracle_checks: u64,
    pub trace_sha256: String,
    pub stores: Vec<StoreSummary>,
    pub violations: Vec<String>,
}

/// What the oracle remembers about a live image.
struct LiveImage {
    request: RetrieveRequest,
    semantic_fp: Digest,
    full_fp: Digest,
}

struct Replica {
    store: Box<dyn ImageStore>,
    expected_bytes: u64,
    added_total: u64,
    freed_total: u64,
    sim_seconds: f64,
}

/// The five evaluated stores over fresh simulated environments.
fn five_stores(env: impl Fn() -> SimEnv) -> Vec<Box<dyn ImageStore>> {
    vec![
        Box::new(QcowStore::new(env())),
        Box::new(GzipStore::new(env())),
        Box::new(MirageStore::new(env())),
        Box::new(HemeraStore::new(env())),
        Box::new(ExpelliarmusRepo::new(env())),
    ]
}

/// Generate the trace for a config (exposed so tests can assert
/// reproducibility without replaying).
pub fn churn_trace(cfg: &ChurnConfig) -> (ScaledWorld, Trace) {
    let world = ScaledWorld::generate(&cfg.scale);
    let trace = Trace::generate(
        &world.image_names(),
        &TraceConfig {
            seed: cfg.seed,
            ops: cfg.ops,
        },
    );
    (world, trace)
}

/// Replay `cfg` and return the oracle's report.
pub fn run_churn(cfg: &ChurnConfig) -> ChurnReport {
    let (world, trace) = churn_trace(cfg);
    let mut replicas: Vec<Replica> = five_stores(SimEnv::testbed)
        .into_iter()
        .map(|store| Replica {
            store,
            expected_bytes: 0,
            added_total: 0,
            freed_total: 0,
            sim_seconds: 0.0,
        })
        .collect();
    let mut live: FxHashMap<String, LiveImage> = FxHashMap::default();
    let mut violations: Vec<String> = Vec::new();
    let mut checks = 0u64;
    let (mut publishes, mut retrieves, mut upgrades, mut deletes, mut bursts) = (0, 0, 0, 0, 0);
    let mut burst_retrieves = 0usize;

    for (step, op) in trace.ops.iter().enumerate() {
        match op {
            TraceOp::Publish { image, generation } | TraceOp::Upgrade { image, generation } => {
                if matches!(op, TraceOp::Publish { .. }) {
                    publishes += 1;
                } else {
                    upgrades += 1;
                }
                let vmi = world.build(image, *generation);
                for r in replicas.iter_mut() {
                    match r.store.publish(&world.catalog, &vmi) {
                        Ok(report) => {
                            checks += 1;
                            if report.duration.as_nanos() == 0 {
                                violations.push(format!(
                                    "step {step} {}: publish {image} cost nothing",
                                    r.store.name()
                                ));
                            }
                            r.added_total += report.bytes_added;
                            r.freed_total += report.bytes_freed;
                            r.sim_seconds += report.duration.as_secs_f64();
                            let want = r.expected_bytes as i128 + report.bytes_added as i128
                                - report.bytes_freed as i128;
                            let actual = r.store.repo_bytes();
                            if want != actual as i128 {
                                violations.push(format!(
                                    "step {step} {}: publish {image} ledger: want {want}, \
                                     have {actual} (added {}, freed {})",
                                    r.store.name(),
                                    report.bytes_added,
                                    report.bytes_freed
                                ));
                            }
                            r.expected_bytes = actual;
                        }
                        Err(e) => violations.push(format!(
                            "step {step} {}: publish {image} failed: {e}",
                            r.store.name()
                        )),
                    }
                }
                live.insert(
                    image.clone(),
                    LiveImage {
                        request: RetrieveRequest::for_image(&vmi, &world.catalog),
                        semantic_fp: oracle::semantic_fingerprint(&world.catalog, &vmi),
                        full_fp: oracle::full_fingerprint(&world.catalog, &vmi),
                    },
                );
            }
            TraceOp::Retrieve { image } => {
                retrieves += 1;
                retrieve_all(
                    &world,
                    &mut replicas,
                    &live,
                    image,
                    step,
                    &mut violations,
                    &mut checks,
                );
            }
            TraceOp::Burst { image, count } => {
                bursts += 1;
                for _ in 0..*count {
                    burst_retrieves += 1;
                    retrieve_all(
                        &world,
                        &mut replicas,
                        &live,
                        image,
                        step,
                        &mut violations,
                        &mut checks,
                    );
                }
            }
            TraceOp::Delete { image } => {
                deletes += 1;
                for r in replicas.iter_mut() {
                    let before = r.store.repo_bytes();
                    match r.store.delete(image) {
                        Ok(report) => {
                            checks += 1;
                            r.freed_total += report.bytes_freed;
                            r.sim_seconds += report.duration.as_secs_f64();
                            let after = r.store.repo_bytes();
                            if before.saturating_sub(report.bytes_freed) != after {
                                violations.push(format!(
                                    "step {step} {}: delete {image} freed {} but {before} -> {after}",
                                    r.store.name(),
                                    report.bytes_freed
                                ));
                            }
                            r.expected_bytes = after;
                            // Deleted names must be unretrievable from
                            // monolithic stores (Expelliarmus may still
                            // assemble functionally — the paper's point).
                            if r.store.name() != "Expelliarmus" {
                                let probe = live.get(image).expect("trace only deletes live");
                                match r.store.retrieve(&world.catalog, &probe.request) {
                                    Err(StoreError::NotFound(_)) => {}
                                    Ok(_) => violations.push(format!(
                                        "step {step} {}: retrieved deleted {image}",
                                        r.store.name()
                                    )),
                                    Err(e) => violations.push(format!(
                                        "step {step} {}: deleted {image} gave {e}, want NotFound",
                                        r.store.name()
                                    )),
                                }
                            }
                        }
                        Err(e) => violations.push(format!(
                            "step {step} {}: delete {image} failed: {e}",
                            r.store.name()
                        )),
                    }
                }
                live.remove(image);
            }
        }
        // Refcount / bookkeeping audit after every op, on every store.
        for r in &replicas {
            checks += 1;
            if let Err(v) = r.store.check_integrity() {
                violations.push(format!(
                    "step {step} {}: integrity after {}: {v}",
                    r.store.name(),
                    op.render()
                ));
            }
        }
    }

    ChurnReport {
        seed: cfg.seed,
        ops: trace.ops.len(),
        publishes,
        retrieves,
        upgrades,
        deletes,
        bursts,
        burst_retrieves,
        oracle_checks: checks,
        trace_sha256: trace.digest_hex(),
        stores: replicas
            .iter()
            .map(|r| StoreSummary {
                store: r.store.name().to_string(),
                final_repo_bytes: r.store.repo_bytes(),
                final_images: live.len(),
                bytes_added_total: r.added_total,
                bytes_freed_total: r.freed_total,
                sim_seconds: r.sim_seconds,
            })
            .collect(),
        violations,
    }
}

#[allow(clippy::too_many_arguments)]
fn retrieve_all(
    world: &ScaledWorld,
    replicas: &mut [Replica],
    live: &FxHashMap<String, LiveImage>,
    image: &str,
    step: usize,
    violations: &mut Vec<String>,
    checks: &mut u64,
) {
    let expect = match live.get(image) {
        Some(e) => e,
        None => {
            violations.push(format!("step {step}: trace retrieved dead image {image}"));
            return;
        }
    };
    for r in replicas.iter_mut() {
        let before = r.store.repo_bytes();
        match r.store.retrieve(&world.catalog, &expect.request) {
            Ok((vmi, report)) => {
                *checks += 1;
                let semantic = oracle::semantic_fingerprint(&world.catalog, &vmi);
                if semantic != expect.semantic_fp {
                    violations.push(format!(
                        "step {step} {}: {image} semantic fingerprint diverged",
                        r.store.name()
                    ));
                }
                if r.store.name() != "Expelliarmus" {
                    let full = oracle::full_fingerprint(&world.catalog, &vmi);
                    if full != expect.full_fp {
                        violations.push(format!(
                            "step {step} {}: {image} full fingerprint diverged",
                            r.store.name()
                        ));
                    }
                }
                if report.bytes_read == 0 || report.duration.as_nanos() == 0 {
                    violations.push(format!(
                        "step {step} {}: free retrieval of {image}",
                        r.store.name()
                    ));
                }
                if r.store.repo_bytes() != before {
                    violations.push(format!(
                        "step {step} {}: retrieval of {image} changed repo size",
                        r.store.name()
                    ));
                }
            }
            Err(e) => violations.push(format!(
                "step {step} {}: retrieve {image} failed: {e}",
                r.store.name()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Short smoke at unit level; the ≥500-op acceptance run lives in the
    // facade's integration suite (tests/churn_oracle.rs).
    #[test]
    fn short_churn_is_clean() {
        let report = run_churn(&ChurnConfig::small(0xBEEF, 60));
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
        assert_eq!(report.ops, 60);
        assert!(report.publishes > 0 && report.retrieves > 0);
        assert_eq!(report.stores.len(), 5);
    }

    #[test]
    fn trace_generation_is_reproducible() {
        let cfg = ChurnConfig::small(42, 120);
        let (_, a) = churn_trace(&cfg);
        let (_, b) = churn_trace(&cfg);
        assert_eq!(a.render(), b.render());
    }
}
