//! Trace-driven churn replay with a differential oracle.
//!
//! [`run_churn`] generates a deterministic lifecycle trace over a
//! [`ScaledWorld`] and replays it against all five evaluated stores
//! (Qcow2, Qcow2+Gzip, Mirage, Hemera, Expelliarmus) in lockstep. After
//! **every** operation the oracle checks:
//!
//! 1. **Differential retrieval** — the semantic fingerprint (files sans
//!    junk/status + installed package set) of every retrieved image is
//!    identical across all stores *and* to the image as published;
//!    snapshot stores additionally reproduce the full fingerprint
//!    byte-for-byte, and repeated retrievals (bursts) are stable.
//! 2. **Refcount integrity** — each store's `check_integrity` audit:
//!    CAS/DB refcounts equal the live references its manifests imply
//!    (no leaks from the delete / upgrade-republish paths, no orphans).
//! 3. **Size ledger** — `repo_bytes` evolves exactly as the report
//!    stream claims (`after == before + bytes_added - bytes_freed` on
//!    publish, `after == before - bytes_freed` on delete, unchanged by
//!    retrieval, shifted by exactly `bytes_delta` on a maintenance
//!    sweep), and deleted images are `NotFound` on monolithic
//!    stores. Qcow2/Gzip/Mirage/Hemera derive their report numbers from
//!    gross content movements, so the check is independent of
//!    `repo_bytes`; Expelliarmus reports net deltas (its DB payload
//!    moves both ways within one publish), where the refcount audit is
//!    the independent witness.
//!
//! Violations are collected, not panicked, so a single run reports every
//! divergence; callers (the `repro churn` subcommand, CI, the
//! integration suite) assert the list is empty.
//!
//! # Concurrent replay ([`run_churn_threads`])
//!
//! The `--threads` mode replays the same trace with the worker pool.
//! The trace is split into maximal runs of *mutations*
//! (publish/upgrade/delete/maintain) and *retrievals* (retrieve/burst):
//!
//! * mutation runs execute in trace order **per store**, with the five
//!   store replicas advancing in parallel — each replica owns its
//!   simulated environment, so its per-op reports and ledger checks are
//!   bit-identical to a sequential replay;
//! * retrieval runs are partitioned by image-name **conflict group**:
//!   each (replica × image) group replays its retrievals in trace order
//!   on the pool, while distinct images — now genuinely concurrent
//!   through the stores' shared-access (`&self`) interfaces — proceed in
//!   parallel. Retrievals are read-only, so the differential
//!   fingerprints are exact and thread-count independent.
//!
//! The run boundaries are the oracle's **quiesce points**: refcount
//! audits run after every mutation (still serial per store) and once per
//! store at the end of each retrieval run; a full deep audit (every CAS
//! blob re-hashed) closes the replay. The resulting [`ChurnReport`] is
//! **byte-identical for any thread count** — pinned by a test at 1, 2
//! and 8 threads.
//!
//! # Durable replay with crash-recovery churn
//!
//! With [`ChurnConfig::with_durable`], Expelliarmus and Mirage run over
//! `xpl-persist` write-through backends on fault-injecting in-memory
//! media, and the trace gains seeded `Crash`/`Recover` pairs. A `Crash`
//! power-cuts the replica's medium and tears each WAL tail with
//! garbage; `Recover` reopens every durable section (manifest load +
//! WAL replay, torn tail dropped), re-validates every recovered blob
//! (magic, digest, CRC-32), and requires the recovered state to
//! **converge** to the uncrashed in-memory CAS — fingerprint equality
//! over blobs, refcounts and the size ledger. A final power-cut +
//! recovery closes every durable replay. All durable work happens in
//! the replica-serial mutation stream, so reports stay byte-identical
//! at any thread count, and the end-of-replay
//! [`ChurnReport::cas_fingerprints`] are identical between durable and
//! purely in-memory replays of the same trace (what CI diffs).
//!
//! # Codec tiers
//!
//! Every tiered store replica runs under [`ChurnConfig::tier`]
//! (default: the mixed hot/cold policy). The trace's `Maintain` ops
//! trigger temperature-driven recompression mid-replay, so the oracle
//! continuously audits mixed-codec states. Because CAS ledgers and
//! fingerprints are *logical* bytes, the end-of-replay
//! [`ChurnReport::cas_fingerprints`] must be identical across every
//! tier policy of the same trace — the repository-level proof that
//! `recompress` pins uncompressed digests (what the CI codec-ablation
//! smoke diffs against the all-DEFLATE replay).

use std::sync::Arc;

use rayon::prelude::*;
use serde::Serialize;
use xpl_baselines::{GzipStore, HemeraStore, MirageStore, QcowStore};
use xpl_core::ExpelliarmusRepo;
use xpl_persist::{DurableConfig, DurableContentStore, MemFs};
use xpl_simio::SimEnv;
use xpl_store::{oracle, ImageStore, RetrieveRequest, StoreError, TierPolicy};
use xpl_util::{Digest, FxHashMap};
use xpl_workloads::{ScaleConfig, ScaledWorld, Trace, TraceConfig, TraceOp};

/// Durable-replay parameters: how many crash-recovery pairs to inject
/// and the seed that places them.
#[derive(Clone, Copy, Debug)]
pub struct DurableCfg {
    pub crashes: usize,
    pub crash_seed: u64,
}

impl Default for DurableCfg {
    fn default() -> Self {
        DurableCfg {
            crashes: 3,
            crash_seed: 42,
        }
    }
}

/// Replay parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    pub seed: u64,
    /// Trace length (a burst is one entry; injected crash-recovery
    /// pairs come on top).
    pub ops: usize,
    pub scale: ScaleConfig,
    /// `Some` runs Expelliarmus and Mirage over durable write-through
    /// backends and injects crash-recovery churn.
    pub durable: Option<DurableCfg>,
    /// Codec tier policy applied to every tiered store replica (Gzip,
    /// Mirage, Hemera, Expelliarmus; Qcow2 has no representation to
    /// tier). CAS ledgers and fingerprints are logical bytes, so every
    /// policy must replay to identical fingerprints — the oracle's
    /// proof that recompression pins digests.
    pub tier: TierPolicy,
}

impl ChurnConfig {
    /// Test-friendly scale (debug builds replay ~500 ops in seconds).
    pub fn small(seed: u64, ops: usize) -> ChurnConfig {
        ChurnConfig {
            seed,
            ops,
            scale: ScaleConfig::small(seed),
            durable: None,
            tier: TierPolicy::mixed(),
        }
    }

    /// Release-mode stress scale.
    pub fn standard(seed: u64, ops: usize) -> ChurnConfig {
        ChurnConfig {
            seed,
            ops,
            scale: ScaleConfig::standard(seed),
            durable: None,
            tier: TierPolicy::mixed(),
        }
    }

    /// Same replay, on durable backends with injected crashes.
    pub fn with_durable(mut self, durable: DurableCfg) -> ChurnConfig {
        self.durable = Some(durable);
        self
    }

    /// Same replay, with every tiered store on `tier`.
    pub fn with_tier(mut self, tier: TierPolicy) -> ChurnConfig {
        self.tier = tier;
        self
    }
}

/// Per-store outcome summary.
#[derive(Clone, Debug, Serialize)]
pub struct StoreSummary {
    pub store: String,
    pub final_repo_bytes: u64,
    pub final_images: usize,
    pub bytes_added_total: u64,
    pub bytes_freed_total: u64,
    pub sim_seconds: f64,
}

/// Canonical fingerprint of one CAS section of one store at the end of
/// the replay. Identical between the in-memory and durable replays of
/// the same trace — the field CI diffs across the two modes.
#[derive(Clone, Debug, Serialize)]
pub struct CasFingerprint {
    pub store: String,
    pub section: String,
    pub fingerprint: String,
}

/// Per-store durable-replay summary (deterministic: identical for any
/// thread count).
#[derive(Clone, Debug, Serialize)]
pub struct DurableStoreSummary {
    pub store: String,
    pub sections: usize,
    /// Crash-recovery cycles (injected + the closing reopen).
    pub recoveries: u64,
    pub wal_records_replayed: u64,
    /// Torn WAL tails dropped cleanly during recovery.
    pub torn_tails: u64,
    /// Blobs alive across all recoveries (summed per recovery).
    pub recovered_blobs: u64,
    /// Total WAL records logged by write-through over the whole replay.
    pub wal_appends: u64,
    pub checkpoints: u64,
}

/// The JSON-serialized replay outcome.
#[derive(Clone, Debug, Serialize)]
pub struct ChurnReport {
    pub seed: u64,
    pub ops: usize,
    pub publishes: usize,
    pub retrieves: usize,
    pub range_retrieves: usize,
    pub upgrades: usize,
    pub deletes: usize,
    pub bursts: usize,
    pub burst_retrieves: usize,
    pub maintains: usize,
    pub crashes: usize,
    pub oracle_checks: u64,
    /// Canonical name of the tier policy every tiered replica ran under.
    pub tier: String,
    pub trace_sha256: String,
    pub stores: Vec<StoreSummary>,
    pub cas_fingerprints: Vec<CasFingerprint>,
    pub durable: Option<Vec<DurableStoreSummary>>,
    pub violations: Vec<String>,
}

/// What the oracle remembers about a live image.
#[derive(Clone)]
struct LiveImage {
    request: RetrieveRequest,
    semantic_fp: Digest,
    full_fp: Digest,
}

/// The durable media and backends of one replica, plus deterministic
/// recovery accounting.
struct DurableAttachment {
    vfs: Arc<MemFs>,
    /// `(section, handle)` in the same order as the store's
    /// `cas_fingerprints()`.
    sections: Vec<(String, Arc<DurableContentStore>)>,
    recoveries: u64,
    wal_records_replayed: u64,
    torn_tails: u64,
    recovered_blobs: u64,
}

struct Replica {
    store: Box<dyn ImageStore>,
    expected_bytes: u64,
    added_total: u64,
    freed_total: u64,
    sim_seconds: f64,
    durable: Option<DurableAttachment>,
}

/// Durable backend geometry for the churn replay: small segments and a
/// sub-trace checkpoint cadence so a standard run exercises segment
/// rolling, manifest swaps *and* WAL replay.
fn churn_durable_config(section: &str) -> DurableConfig {
    DurableConfig {
        prefix: section.to_string(),
        segment_target_bytes: 1024 * 1024,
        checkpoint_every_ops: 512,
    }
}

fn durable_section(vfs: &Arc<MemFs>, section: &str) -> (String, Arc<DurableContentStore>) {
    let (store, report) = DurableContentStore::open(
        Arc::clone(vfs) as Arc<dyn xpl_persist::Vfs>,
        churn_durable_config(section),
    )
    .expect("fresh durable store");
    assert_eq!(report.blobs, 0, "fresh medium must be empty");
    (section.to_string(), Arc::new(store))
}

/// The five evaluated stores over fresh simulated environments (the
/// one construction point shared by the churn replay, the
/// microbenchmarks and `repro audit`), each on its default tier.
pub fn five_stores(env: impl Fn() -> SimEnv) -> Vec<Box<dyn ImageStore>> {
    vec![
        Box::new(QcowStore::new(env())),
        Box::new(GzipStore::new(env())),
        Box::new(MirageStore::new(env())),
        Box::new(HemeraStore::new(env())),
        Box::new(ExpelliarmusRepo::new(env())),
    ]
}

/// The five stores with every tiered one (all but raw Qcow2) on `tier`.
pub fn five_stores_tiered(env: impl Fn() -> SimEnv, tier: TierPolicy) -> Vec<Box<dyn ImageStore>> {
    vec![
        Box::new(QcowStore::new(env())),
        Box::new(GzipStore::new(env()).with_tier(tier)),
        Box::new(MirageStore::new(env()).with_tier(tier)),
        Box::new(HemeraStore::new(env()).with_tier(tier)),
        Box::new(ExpelliarmusRepo::new(env()).with_tier(tier)),
    ]
}

fn replica(store: Box<dyn ImageStore>, durable: Option<DurableAttachment>) -> Replica {
    Replica {
        store,
        expected_bytes: 0,
        added_total: 0,
        freed_total: 0,
        sim_seconds: 0.0,
        durable,
    }
}

/// The five replicas; with `durable`, Mirage and Expelliarmus write
/// through to log-structured backends over fault-injecting in-memory
/// media (each replica owns its medium).
fn fresh_replicas(durable: bool, tier: TierPolicy) -> Vec<Replica> {
    if !durable {
        return five_stores_tiered(SimEnv::testbed, tier)
            .into_iter()
            .map(|store| replica(store, None))
            .collect();
    }
    let mirage_vfs = Arc::new(MemFs::new());
    let mirage_files = durable_section(&mirage_vfs, "files");
    let mirage = replica(
        Box::new(
            MirageStore::new_durable(SimEnv::testbed(), Arc::clone(&mirage_files.1))
                .with_tier(tier),
        ),
        Some(DurableAttachment {
            vfs: mirage_vfs,
            sections: vec![mirage_files],
            recoveries: 0,
            wal_records_replayed: 0,
            torn_tails: 0,
            recovered_blobs: 0,
        }),
    );
    let xpl_vfs = Arc::new(MemFs::new());
    let packages = durable_section(&xpl_vfs, "packages");
    let data = durable_section(&xpl_vfs, "data");
    let expelliarmus = replica(
        Box::new(
            ExpelliarmusRepo::new_durable(
                SimEnv::testbed(),
                Arc::clone(&packages.1),
                Arc::clone(&data.1),
            )
            .with_tier(tier),
        ),
        Some(DurableAttachment {
            vfs: xpl_vfs,
            sections: vec![packages, data],
            recoveries: 0,
            wal_records_replayed: 0,
            torn_tails: 0,
            recovered_blobs: 0,
        }),
    );
    vec![
        replica(Box::new(QcowStore::new(SimEnv::testbed())), None),
        replica(
            Box::new(GzipStore::new(SimEnv::testbed()).with_tier(tier)),
            None,
        ),
        mirage,
        replica(
            Box::new(HemeraStore::new(SimEnv::testbed()).with_tier(tier)),
            None,
        ),
        expelliarmus,
    ]
}

/// Generate the trace for a config (exposed so tests can assert
/// reproducibility without replaying). Durable configs additionally
/// inject crash-recovery pairs at seeded positions.
pub fn churn_trace(cfg: &ChurnConfig) -> (ScaledWorld, Trace) {
    let world = ScaledWorld::generate(&cfg.scale);
    let mut trace = Trace::generate(
        &world.image_names(),
        &TraceConfig {
            seed: cfg.seed,
            ops: cfg.ops,
        },
    );
    if let Some(durable) = &cfg.durable {
        trace.inject_crashes(durable.crash_seed, durable.crashes);
    }
    (world, trace)
}

/// Deterministic garbage appended to each WAL at a crash: a torn
/// sector that recovery must drop cleanly.
const TORN_TAIL_GARBAGE: [u8; 13] = [0xA5; 13];

/// Power-cut one replica's durable medium and tear its WAL tails. A
/// no-op for replicas without an attachment.
fn apply_crash(r: &mut Replica) {
    if let Some(att) = &mut r.durable {
        att.vfs.power_cut();
        for (_, handle) in &att.sections {
            att.vfs
                .inject_torn_tail(&handle.wal_file(), &TORN_TAIL_GARBAGE);
        }
    }
}

/// Reopen one replica's durable sections from the medium and check the
/// recovered state converges to the live in-memory CAS: same blobs,
/// refcounts and size ledger (fingerprint equality), with every
/// recovered blob's content re-validated (magic, digest, CRC-32).
fn apply_recover(r: &mut Replica, ctx: &str, violations: &mut Vec<String>, checks: &mut u64) {
    let Replica { store, durable, .. } = r;
    let Some(att) = durable else { return };
    let live = store.cas_fingerprints();
    for (i, (section, handle)) in att.sections.iter().enumerate() {
        match handle.reopen_in_place() {
            Ok(rep) => {
                *checks += 1;
                att.wal_records_replayed += rep.wal_records_replayed;
                att.torn_tails += rep.torn_wal_tail as u64;
                att.recovered_blobs += rep.blobs as u64;
                if let Err(e) = handle.deep_verify() {
                    violations.push(format!(
                        "{ctx} {}: {section} recovery content sweep: {e}",
                        store.name()
                    ));
                }
                match live.get(i) {
                    Some((live_section, live_fp)) if live_section == section => {
                        if handle.state_fingerprint() != *live_fp {
                            violations.push(format!(
                                "{ctx} {}: recovered {section} diverged from \
                                 the in-memory state",
                                store.name()
                            ));
                        }
                    }
                    _ => violations.push(format!(
                        "{ctx} {}: no live fingerprint for section {section}",
                        store.name()
                    )),
                }
            }
            Err(e) => violations.push(format!(
                "{ctx} {}: recovery of {section} failed: {e}",
                store.name()
            )),
        }
    }
    att.recoveries += 1;
}

/// The closing durability check of a replay: power-cut every durable
/// replica one last time (torn tails included) and require recovery to
/// converge to the final in-memory state.
fn final_recover_all(replicas: &mut [Replica], violations: &mut Vec<String>, checks: &mut u64) {
    for r in replicas.iter_mut() {
        apply_crash(r);
        apply_recover(r, "final", violations, checks);
    }
}

/// End-of-replay fingerprints of every store's CAS sections.
fn collect_fingerprints(replicas: &[Replica]) -> Vec<CasFingerprint> {
    let mut out = Vec::new();
    for r in replicas {
        for (section, fingerprint) in r.store.cas_fingerprints() {
            out.push(CasFingerprint {
                store: r.store.name().to_string(),
                section,
                fingerprint,
            });
        }
    }
    out
}

/// Durable summaries (None when the replay ran purely in memory).
fn collect_durable_summaries(replicas: &[Replica]) -> Option<Vec<DurableStoreSummary>> {
    let summaries: Vec<DurableStoreSummary> = replicas
        .iter()
        .filter_map(|r| {
            r.durable.as_ref().map(|att| DurableStoreSummary {
                store: r.store.name().to_string(),
                sections: att.sections.len(),
                recoveries: att.recoveries,
                wal_records_replayed: att.wal_records_replayed,
                torn_tails: att.torn_tails,
                recovered_blobs: att.recovered_blobs,
                wal_appends: att.sections.iter().map(|(_, h)| h.wal_appends()).sum(),
                checkpoints: att.sections.iter().map(|(_, h)| h.checkpoints()).sum(),
            })
        })
        .collect();
    if summaries.is_empty() {
        None
    } else {
        Some(summaries)
    }
}

/// Apply one publish/upgrade to one replica with the full per-op oracle
/// (cost, ledger). Shared by the sequential and concurrent drivers.
fn apply_publish(
    r: &mut Replica,
    world: &ScaledWorld,
    vmi: &xpl_guestfs::Vmi,
    image: &str,
    step: usize,
    violations: &mut Vec<String>,
    checks: &mut u64,
) {
    match r.store.publish(&world.catalog, vmi) {
        Ok(report) => {
            *checks += 1;
            if report.duration.as_nanos() == 0 {
                violations.push(format!(
                    "step {step} {}: publish {image} cost nothing",
                    r.store.name()
                ));
            }
            r.added_total += report.bytes_added;
            r.freed_total += report.bytes_freed;
            r.sim_seconds += report.duration.as_secs_f64();
            let want =
                r.expected_bytes as i128 + report.bytes_added as i128 - report.bytes_freed as i128;
            let actual = r.store.repo_bytes();
            if want != actual as i128 {
                violations.push(format!(
                    "step {step} {}: publish {image} ledger: want {want}, \
                     have {actual} (added {}, freed {})",
                    r.store.name(),
                    report.bytes_added,
                    report.bytes_freed
                ));
            }
            r.expected_bytes = actual;
        }
        Err(e) => violations.push(format!(
            "step {step} {}: publish {image} failed: {e}",
            r.store.name()
        )),
    }
}

/// Apply one delete to one replica with the full per-op oracle (ledger,
/// deleted-name probe on monolithic stores).
fn apply_delete(
    r: &mut Replica,
    world: &ScaledWorld,
    image: &str,
    probe: &RetrieveRequest,
    step: usize,
    violations: &mut Vec<String>,
    checks: &mut u64,
) {
    let before = r.store.repo_bytes();
    match r.store.delete(image) {
        Ok(report) => {
            *checks += 1;
            r.freed_total += report.bytes_freed;
            r.sim_seconds += report.duration.as_secs_f64();
            let after = r.store.repo_bytes();
            if before.saturating_sub(report.bytes_freed) != after {
                violations.push(format!(
                    "step {step} {}: delete {image} freed {} but {before} -> {after}",
                    r.store.name(),
                    report.bytes_freed
                ));
            }
            r.expected_bytes = after;
            // Deleted names must be unretrievable from monolithic stores
            // (Expelliarmus may still assemble functionally — the paper's
            // point).
            if r.store.name() != "Expelliarmus" {
                match r.store.retrieve(&world.catalog, probe) {
                    Err(StoreError::NotFound(_)) => {}
                    Ok(_) => violations.push(format!(
                        "step {step} {}: retrieved deleted {image}",
                        r.store.name()
                    )),
                    Err(e) => violations.push(format!(
                        "step {step} {}: deleted {image} gave {e}, want NotFound",
                        r.store.name()
                    )),
                }
            }
        }
        Err(e) => violations.push(format!(
            "step {step} {}: delete {image} failed: {e}",
            r.store.name()
        )),
    }
}

/// Apply one maintenance sweep to one replica with its ledger oracle:
/// the store re-encodes blobs per its tier policy, content stays pinned
/// (the deep audit and every later retrieval witness that), and
/// `repo_bytes` must move by *exactly* the reported `bytes_delta` —
/// nonzero only for physically-sized stores (Gzip), zero for the CAS
/// stores whose ledger is logical and therefore codec-invariant.
fn apply_maintain(r: &mut Replica, step: usize, violations: &mut Vec<String>, checks: &mut u64) {
    let before = r.store.repo_bytes();
    let report = r.store.maintain();
    *checks += 1;
    let after = r.store.repo_bytes();
    if after as i128 != before as i128 + i128::from(report.bytes_delta) {
        violations.push(format!(
            "step {step} {}: maintain reported delta {} but moved repo \
             {before} -> {after}",
            r.store.name(),
            report.bytes_delta
        ));
    }
    if report.promoted + report.demoted > report.scanned {
        violations.push(format!(
            "step {step} {}: maintain re-encoded more entries than it scanned",
            r.store.name()
        ));
    }
    r.expected_bytes = after;
    r.sim_seconds += report.duration.as_secs_f64();
}

/// Retrieve one image from one replica and run the differential checks.
fn check_retrieve(
    r: &Replica,
    world: &ScaledWorld,
    expect: &LiveImage,
    image: &str,
    step: usize,
    violations: &mut Vec<String>,
    checks: &mut u64,
) {
    let before = r.store.repo_bytes();
    match r.store.retrieve(&world.catalog, &expect.request) {
        Ok((vmi, report)) => {
            *checks += 1;
            let semantic = oracle::semantic_fingerprint(&world.catalog, &vmi);
            if semantic != expect.semantic_fp {
                violations.push(format!(
                    "step {step} {}: {image} semantic fingerprint diverged",
                    r.store.name()
                ));
            }
            if r.store.name() != "Expelliarmus" {
                let full = oracle::full_fingerprint(&world.catalog, &vmi);
                if full != expect.full_fp {
                    violations.push(format!(
                        "step {step} {}: {image} full fingerprint diverged",
                        r.store.name()
                    ));
                }
            }
            if report.bytes_read == 0 || report.duration.as_nanos() == 0 {
                violations.push(format!(
                    "step {step} {}: free retrieval of {image}",
                    r.store.name()
                ));
            }
            if r.store.repo_bytes() != before {
                violations.push(format!(
                    "step {step} {}: retrieval of {image} changed repo size",
                    r.store.name()
                ));
            }
        }
        Err(e) => violations.push(format!(
            "step {step} {}: retrieve {image} failed: {e}",
            r.store.name()
        )),
    }
}

/// Retrieve a byte range from one replica and run the differential
/// oracle: the ranged bytes must equal the same store's full-retrieval
/// disk slice, and — with `strict_bytes` — the repository must not move
/// more bytes for the range than it would for the whole image. The
/// byte-accounting comparison is only valid when this store's
/// retrievals are serialized (per-op reports read shared device
/// counters; under the concurrent driver a neighbour's charges leak
/// into the delta), so the concurrent replay passes `false`.
#[allow(clippy::too_many_arguments)]
fn check_retrieve_range(
    r: &Replica,
    world: &ScaledWorld,
    expect: &LiveImage,
    image: &str,
    start_frac: u32,
    len: u32,
    step: usize,
    strict_bytes: bool,
    violations: &mut Vec<String>,
    checks: &mut u64,
) {
    let before = r.store.repo_bytes();
    let (vmi, full) = match r.store.retrieve(&world.catalog, &expect.request) {
        Ok(x) => x,
        Err(e) => {
            violations.push(format!(
                "step {step} {}: range oracle retrieve {image} failed: {e}",
                r.store.name()
            ));
            return;
        }
    };
    let size = vmi.disk.virtual_size();
    let start = size * u64::from(start_frac) / 256;
    let end = start.saturating_add(u64::from(len)).min(size);
    let want = match vmi.disk.read_at(start, (end - start) as usize) {
        Ok(b) => b,
        Err(e) => {
            violations.push(format!(
                "step {step} {}: range oracle slice of {image} failed: {e}",
                r.store.name()
            ));
            return;
        }
    };
    match r
        .store
        .retrieve_range(&world.catalog, &expect.request, start, u64::from(len))
    {
        Ok((bytes, report)) => {
            *checks += 1;
            if bytes != want {
                violations.push(format!(
                    "step {step} {}: range ({start}, {len}) of {image} diverges from \
                     the full-retrieval slice",
                    r.store.name()
                ));
            }
            if strict_bytes && report.bytes_read > full.bytes_read {
                violations.push(format!(
                    "step {step} {}: range ({start}, {len}) of {image} read {} repo \
                     bytes, more than the full retrieval's {}",
                    r.store.name(),
                    report.bytes_read,
                    full.bytes_read
                ));
            }
            if r.store.repo_bytes() != before {
                violations.push(format!(
                    "step {step} {}: range retrieval of {image} changed repo size",
                    r.store.name()
                ));
            }
        }
        Err(e) => violations.push(format!(
            "step {step} {}: range ({start}, {len}) of {image} failed: {e}",
            r.store.name()
        )),
    }
}

/// Replay `cfg` sequentially and return the oracle's report (the
/// original per-op-integrity driver; `repro churn` without `--threads`).
pub fn run_churn(cfg: &ChurnConfig) -> ChurnReport {
    run_churn_with(cfg, None)
}

/// [`run_churn`] with an optional metrics registry attached to every
/// replica before the replay. Attachment must never change the report:
/// the `det` section of the resulting snapshot is derived purely from
/// the executed op multiset, so it is byte-identical at any thread
/// count, and the report itself is byte-identical with or without the
/// registry (CI pins both properties).
pub fn run_churn_with(cfg: &ChurnConfig, registry: Option<&Arc<xpl_obs::Registry>>) -> ChurnReport {
    let (world, trace) = churn_trace(cfg);
    let mut replicas = fresh_replicas(cfg.durable.is_some(), cfg.tier);
    if let Some(reg) = registry {
        for r in &replicas {
            r.store.attach_obs(reg);
        }
    }
    let mut live: FxHashMap<String, LiveImage> = FxHashMap::default();
    let mut violations: Vec<String> = Vec::new();
    let mut checks = 0u64;
    let (mut publishes, mut retrieves, mut upgrades, mut deletes, mut bursts) = (0, 0, 0, 0, 0);
    let mut burst_retrieves = 0usize;
    let mut range_retrieves = 0usize;
    let mut maintains = 0usize;

    for (step, op) in trace.ops.iter().enumerate() {
        match op {
            TraceOp::Publish { image, generation } | TraceOp::Upgrade { image, generation } => {
                if matches!(op, TraceOp::Publish { .. }) {
                    publishes += 1;
                } else {
                    upgrades += 1;
                }
                let vmi = world.build(image, *generation);
                for r in replicas.iter_mut() {
                    apply_publish(r, &world, &vmi, image, step, &mut violations, &mut checks);
                }
                live.insert(
                    image.clone(),
                    LiveImage {
                        request: RetrieveRequest::for_image(&vmi, &world.catalog),
                        semantic_fp: oracle::semantic_fingerprint(&world.catalog, &vmi),
                        full_fp: oracle::full_fingerprint(&world.catalog, &vmi),
                    },
                );
            }
            TraceOp::Retrieve { image } => {
                retrieves += 1;
                retrieve_all(
                    &world,
                    &replicas,
                    &live,
                    image,
                    step,
                    &mut violations,
                    &mut checks,
                );
            }
            TraceOp::RetrieveRange {
                image,
                start_frac,
                len,
            } => {
                range_retrieves += 1;
                match live.get(image) {
                    Some(expect) => {
                        for r in replicas.iter() {
                            check_retrieve_range(
                                r,
                                &world,
                                expect,
                                image,
                                *start_frac,
                                *len,
                                step,
                                true,
                                &mut violations,
                                &mut checks,
                            );
                        }
                    }
                    None => violations.push(format!(
                        "step {step}: trace range-retrieved dead image {image}"
                    )),
                }
            }
            TraceOp::Burst { image, count } => {
                bursts += 1;
                for _ in 0..*count {
                    burst_retrieves += 1;
                    retrieve_all(
                        &world,
                        &replicas,
                        &live,
                        image,
                        step,
                        &mut violations,
                        &mut checks,
                    );
                }
            }
            TraceOp::Delete { image } => {
                deletes += 1;
                let probe = &live.get(image).expect("trace only deletes live").request;
                for r in replicas.iter_mut() {
                    apply_delete(r, &world, image, probe, step, &mut violations, &mut checks);
                }
                live.remove(image);
            }
            TraceOp::Maintain => {
                maintains += 1;
                for r in replicas.iter_mut() {
                    apply_maintain(r, step, &mut violations, &mut checks);
                }
            }
            TraceOp::Crash => {
                for r in replicas.iter_mut() {
                    apply_crash(r);
                }
            }
            TraceOp::Recover => {
                let ctx = format!("step {step}");
                for r in replicas.iter_mut() {
                    apply_recover(r, &ctx, &mut violations, &mut checks);
                }
            }
        }
        // Refcount / bookkeeping audit after every op, on every store.
        for r in &replicas {
            checks += 1;
            if let Err(v) = r.store.check_integrity() {
                violations.push(format!(
                    "step {step} {}: integrity after {}: {v}",
                    r.store.name(),
                    op.render()
                ));
            }
        }
    }

    // Closing durability check: one last power-cut + recovery must
    // converge to the final in-memory state.
    final_recover_all(&mut replicas, &mut violations, &mut checks);

    // Closing deep audit: every CAS blob re-hashed, once per store.
    for r in &replicas {
        checks += 1;
        if let Err(v) = r.store.check_integrity_deep() {
            violations.push(format!("final {}: deep integrity: {v}", r.store.name()));
        }
    }

    ChurnReport {
        seed: cfg.seed,
        ops: trace.ops.len(),
        publishes,
        retrieves,
        range_retrieves,
        upgrades,
        deletes,
        bursts,
        burst_retrieves,
        maintains,
        crashes: trace.crashes(),
        oracle_checks: checks,
        tier: cfg.tier.describe().to_string(),
        trace_sha256: trace.digest_hex(),
        stores: replicas
            .iter()
            .map(|r| StoreSummary {
                store: r.store.name().to_string(),
                final_repo_bytes: r.store.repo_bytes(),
                final_images: live.len(),
                bytes_added_total: r.added_total,
                bytes_freed_total: r.freed_total,
                sim_seconds: r.sim_seconds,
            })
            .collect(),
        cas_fingerprints: collect_fingerprints(&replicas),
        durable: collect_durable_summaries(&replicas),
        violations,
    }
}

#[allow(clippy::too_many_arguments)]
fn retrieve_all(
    world: &ScaledWorld,
    replicas: &[Replica],
    live: &FxHashMap<String, LiveImage>,
    image: &str,
    step: usize,
    violations: &mut Vec<String>,
    checks: &mut u64,
) {
    let expect = match live.get(image) {
        Some(e) => e,
        None => {
            violations.push(format!("step {step}: trace retrieved dead image {image}"));
            return;
        }
    };
    for r in replicas.iter() {
        check_retrieve(r, world, expect, image, step, violations, checks);
    }
}

// ---------------------------------------------------------------------
// Concurrent replay
// ---------------------------------------------------------------------

/// One precomputed mutation of a mutation run.
enum WriteStep {
    Publish {
        step: usize,
        image: String,
        vmi_idx: usize,
    },
    Delete {
        step: usize,
        image: String,
        probe: RetrieveRequest,
    },
    Maintain {
        step: usize,
    },
    Crash,
    Recover {
        step: usize,
    },
}

/// One retrieval of a retrieval run (bursts are expanded). A `Some`
/// range means a ranged retrieval with its differential oracle.
struct ReadStep {
    step: usize,
    image: String,
    range: Option<(u32, u32)>,
}

enum Run {
    Writes(Vec<WriteStep>),
    Reads(Vec<ReadStep>),
}

fn is_write(op: &TraceOp) -> bool {
    matches!(
        op,
        TraceOp::Publish { .. }
            | TraceOp::Upgrade { .. }
            | TraceOp::Delete { .. }
            | TraceOp::Maintain
            | TraceOp::Crash
            | TraceOp::Recover
    )
}

/// Replay `cfg` with `threads` pool workers: store replicas advance in
/// parallel, and within retrieval runs, per-image conflict groups fan
/// out across the pool. The report is byte-identical for every
/// `threads` value (see the module docs for why).
pub fn run_churn_threads(cfg: &ChurnConfig, threads: usize) -> ChurnReport {
    run_churn_threads_with(cfg, threads, None)
}

/// [`run_churn_threads`] with an optional metrics registry; see
/// [`run_churn_with`] for the determinism contract.
pub fn run_churn_threads_with(
    cfg: &ChurnConfig,
    threads: usize,
    registry: Option<&Arc<xpl_obs::Registry>>,
) -> ChurnReport {
    rayon::with_num_threads(threads.max(1), || run_churn_concurrent_inner(cfg, registry))
}

fn run_churn_concurrent_inner(
    cfg: &ChurnConfig,
    registry: Option<&Arc<xpl_obs::Registry>>,
) -> ChurnReport {
    let (world, trace) = churn_trace(cfg);
    let mut replicas = fresh_replicas(cfg.durable.is_some(), cfg.tier);
    if let Some(reg) = registry {
        for r in &replicas {
            r.store.attach_obs(reg);
        }
    }
    let mut live: FxHashMap<String, LiveImage> = FxHashMap::default();
    let mut vmis: Vec<xpl_guestfs::Vmi> = Vec::new();
    // Fingerprints of each publish, parallel to `vmis` — computed once
    // here and reused when the execution loop refreshes its view.
    let mut publish_fps: Vec<LiveImage> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut checks = 0u64;
    let (mut publishes, mut retrieves, mut upgrades, mut deletes, mut bursts) = (0, 0, 0, 0, 0);
    let mut burst_retrieves = 0usize;
    let mut range_retrieves = 0usize;
    let mut maintains = 0usize;

    // ---- Partition the trace into write/read runs, precomputing the
    // deterministic payloads (built images, delete probes, live-image
    // fingerprints) in trace order on the coordinator. ----------------
    let mut runs: Vec<Run> = Vec::new();
    for (step, op) in trace.ops.iter().enumerate() {
        let want_write = is_write(op);
        let start_new = match runs.last() {
            Some(Run::Writes(_)) => !want_write,
            Some(Run::Reads(_)) => want_write,
            None => true,
        };
        if start_new {
            runs.push(if want_write {
                Run::Writes(Vec::new())
            } else {
                Run::Reads(Vec::new())
            });
        }
        match (runs.last_mut().unwrap(), op) {
            (Run::Writes(steps), TraceOp::Publish { image, generation })
            | (Run::Writes(steps), TraceOp::Upgrade { image, generation }) => {
                if matches!(op, TraceOp::Publish { .. }) {
                    publishes += 1;
                } else {
                    upgrades += 1;
                }
                let vmi = world.build(image, *generation);
                let expect = LiveImage {
                    request: RetrieveRequest::for_image(&vmi, &world.catalog),
                    semantic_fp: oracle::semantic_fingerprint(&world.catalog, &vmi),
                    full_fp: oracle::full_fingerprint(&world.catalog, &vmi),
                };
                live.insert(image.clone(), expect.clone());
                steps.push(WriteStep::Publish {
                    step,
                    image: image.clone(),
                    vmi_idx: vmis.len(),
                });
                vmis.push(vmi);
                publish_fps.push(expect);
            }
            (Run::Writes(steps), TraceOp::Delete { image }) => {
                deletes += 1;
                let probe = live
                    .get(image)
                    .expect("trace only deletes live")
                    .request
                    .clone();
                live.remove(image);
                steps.push(WriteStep::Delete {
                    step,
                    image: image.clone(),
                    probe,
                });
            }
            (Run::Reads(steps), TraceOp::Retrieve { image }) => {
                retrieves += 1;
                steps.push(ReadStep {
                    step,
                    image: image.clone(),
                    range: None,
                });
            }
            (
                Run::Reads(steps),
                TraceOp::RetrieveRange {
                    image,
                    start_frac,
                    len,
                },
            ) => {
                range_retrieves += 1;
                steps.push(ReadStep {
                    step,
                    image: image.clone(),
                    range: Some((*start_frac, *len)),
                });
            }
            (Run::Reads(steps), TraceOp::Burst { image, count }) => {
                bursts += 1;
                for _ in 0..*count {
                    burst_retrieves += 1;
                    steps.push(ReadStep {
                        step,
                        image: image.clone(),
                        range: None,
                    });
                }
            }
            (Run::Writes(steps), TraceOp::Maintain) => {
                maintains += 1;
                steps.push(WriteStep::Maintain { step });
            }
            (Run::Writes(steps), TraceOp::Crash) => steps.push(WriteStep::Crash),
            (Run::Writes(steps), TraceOp::Recover) => steps.push(WriteStep::Recover { step }),
            _ => unreachable!("run kind matches op kind by construction"),
        }
    }

    // The precompute above consumed `live` transitions; rebuild the
    // replay-time view incrementally while executing runs below. The
    // final `live` (after the loop) is what the summary needs, so keep
    // it; per-run expectations are resolved against `fingerprints`,
    // which tracks the latest publish of each image and is updated in
    // run order.
    let mut fingerprints: FxHashMap<String, LiveImage> = FxHashMap::default();

    for run in &runs {
        match run {
            Run::Writes(steps) => {
                // Update the oracle's view in trace order first (publish
                // payloads were precomputed; fingerprints resolve to the
                // *latest* generation at each point of a read run, which
                // is exactly the state after this whole write run).
                for ws in steps {
                    match ws {
                        WriteStep::Publish { image, vmi_idx, .. } => {
                            fingerprints.insert(image.clone(), publish_fps[*vmi_idx].clone());
                        }
                        WriteStep::Delete { image, .. } => {
                            fingerprints.remove(image);
                        }
                        WriteStep::Maintain { .. }
                        | WriteStep::Crash
                        | WriteStep::Recover { .. } => {}
                    }
                }
                // Each replica applies the whole run in trace order; the
                // five replicas advance in parallel. Every mutation is
                // followed by the same per-op integrity audit as the
                // sequential driver.
                let results: Vec<(Vec<String>, u64)> = replicas
                    .iter_mut()
                    .collect::<Vec<&mut Replica>>()
                    .into_par_iter()
                    .map(|r| {
                        let mut v = Vec::new();
                        let mut c = 0u64;
                        for ws in steps {
                            match ws {
                                WriteStep::Publish {
                                    step,
                                    image,
                                    vmi_idx,
                                } => {
                                    apply_publish(
                                        r,
                                        &world,
                                        &vmis[*vmi_idx],
                                        image,
                                        *step,
                                        &mut v,
                                        &mut c,
                                    );
                                }
                                WriteStep::Delete { step, image, probe } => {
                                    apply_delete(r, &world, image, probe, *step, &mut v, &mut c);
                                }
                                WriteStep::Maintain { step } => {
                                    apply_maintain(r, *step, &mut v, &mut c);
                                }
                                WriteStep::Crash => apply_crash(r),
                                WriteStep::Recover { step } => {
                                    apply_recover(r, &format!("step {step}"), &mut v, &mut c);
                                }
                            }
                            c += 1;
                            if let Err(e) = r.store.check_integrity() {
                                v.push(format!(
                                    "{}: integrity after mutation: {e}",
                                    r.store.name()
                                ));
                            }
                        }
                        (v, c)
                    })
                    .collect();
                for (v, c) in results {
                    violations.extend(v);
                    checks += c;
                }
            }
            Run::Reads(steps) => {
                // Conflict groups: one per image name, retrievals in
                // trace order within a group, groups × replicas on the
                // pool.
                let mut group_order: Vec<&str> = Vec::new();
                let mut groups: FxHashMap<&str, Vec<&ReadStep>> = FxHashMap::default();
                for rs in steps {
                    groups
                        .entry(rs.image.as_str())
                        .or_insert_with(|| {
                            group_order.push(rs.image.as_str());
                            Vec::new()
                        })
                        .push(rs);
                }
                let mut tasks: Vec<(&Replica, &[&ReadStep])> = Vec::new();
                for r in replicas.iter() {
                    for image in &group_order {
                        tasks.push((r, &groups[image]));
                    }
                }
                let results: Vec<(Vec<String>, u64)> = tasks
                    .into_par_iter()
                    .map(|(r, group)| {
                        let mut v = Vec::new();
                        let mut c = 0u64;
                        for rs in group {
                            match (fingerprints.get(&rs.image), rs.range) {
                                (Some(expect), None) => {
                                    check_retrieve(
                                        r, &world, expect, &rs.image, rs.step, &mut v, &mut c,
                                    );
                                }
                                (Some(expect), Some((start_frac, len))) => {
                                    check_retrieve_range(
                                        r, &world, expect, &rs.image, start_frac, len, rs.step,
                                        false, &mut v, &mut c,
                                    );
                                }
                                (None, _) => v.push(format!(
                                    "step {}: trace retrieved dead image {}",
                                    rs.step, rs.image
                                )),
                            }
                        }
                        (v, c)
                    })
                    .collect();
                for (v, c) in results {
                    violations.extend(v);
                    checks += c;
                }
                // Quiesce audit: one integrity check per store.
                for r in &replicas {
                    checks += 1;
                    if let Err(v) = r.store.check_integrity() {
                        violations.push(format!(
                            "{}: integrity at retrieval-run quiesce: {v}",
                            r.store.name()
                        ));
                    }
                }
            }
        }
    }

    // Closing durability check: one last power-cut + recovery must
    // converge to the final in-memory state.
    final_recover_all(&mut replicas, &mut violations, &mut checks);

    // Closing deep audit: every CAS blob re-hashed, once per store.
    for r in &replicas {
        checks += 1;
        if let Err(v) = r.store.check_integrity_deep() {
            violations.push(format!("final {}: deep integrity: {v}", r.store.name()));
        }
    }

    ChurnReport {
        seed: cfg.seed,
        ops: trace.ops.len(),
        publishes,
        retrieves,
        range_retrieves,
        upgrades,
        deletes,
        bursts,
        burst_retrieves,
        maintains,
        crashes: trace.crashes(),
        oracle_checks: checks,
        tier: cfg.tier.describe().to_string(),
        trace_sha256: trace.digest_hex(),
        stores: replicas
            .iter()
            .map(|r| StoreSummary {
                store: r.store.name().to_string(),
                final_repo_bytes: r.store.repo_bytes(),
                final_images: live.len(),
                bytes_added_total: r.added_total,
                bytes_freed_total: r.freed_total,
                sim_seconds: r.sim_seconds,
            })
            .collect(),
        cas_fingerprints: collect_fingerprints(&replicas),
        durable: collect_durable_summaries(&replicas),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Short smoke at unit level; the ≥500-op acceptance run lives in the
    // facade's integration suite (tests/churn_oracle.rs).
    #[test]
    fn short_churn_is_clean() {
        let report = run_churn(&ChurnConfig::small(0xBEEF, 60));
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
        assert_eq!(report.ops, 60);
        assert!(report.publishes > 0 && report.retrieves > 0);
        assert_eq!(report.stores.len(), 5);
    }

    #[test]
    fn tier_policies_replay_to_identical_cas_fingerprints() {
        // The repository-level digest-preservation proof: a mixed-tier
        // replay (DEFLATE base, LZ4 promotions, live recompression at
        // every Maintain op) must end on exactly the CAS fingerprints
        // of the all-DEFLATE and all-LZ4 replays of the same trace.
        let base = ChurnConfig::small(0xC0DEC, 80);
        let mixed = run_churn(&base);
        assert_eq!(mixed.tier, "mixed");
        assert!(mixed.maintains > 0, "trace never swept the tiers");
        assert!(mixed.violations.is_empty(), "{:#?}", mixed.violations);
        for tier in [TierPolicy::dense(), TierPolicy::fast(), TierPolicy::raw()] {
            let other = run_churn(&base.with_tier(tier));
            assert!(other.violations.is_empty(), "{:#?}", other.violations);
            assert_eq!(mixed.cas_fingerprints.len(), other.cas_fingerprints.len());
            for (a, b) in mixed.cas_fingerprints.iter().zip(&other.cas_fingerprints) {
                assert_eq!(a.store, b.store);
                assert_eq!(a.section, b.section);
                assert_eq!(
                    a.fingerprint,
                    b.fingerprint,
                    "{}/{} diverged between mixed and {}",
                    a.store,
                    a.section,
                    tier.describe()
                );
            }
        }
    }

    #[test]
    fn trace_generation_is_reproducible() {
        let cfg = ChurnConfig::small(42, 120);
        let (_, a) = churn_trace(&cfg);
        let (_, b) = churn_trace(&cfg);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn concurrent_short_churn_is_clean() {
        let report = run_churn_threads(&ChurnConfig::small(0xBEEF, 60), 4);
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
        assert_eq!(report.ops, 60);
        assert_eq!(report.stores.len(), 5);
    }

    #[test]
    fn durable_short_churn_recovers_cleanly() {
        let cfg = ChurnConfig::small(0xBEEF, 60).with_durable(DurableCfg {
            crashes: 2,
            crash_seed: 7,
        });
        let report = run_churn(&cfg);
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
        assert_eq!(report.crashes, 2);
        let durable = report.durable.as_ref().expect("durable summaries");
        assert_eq!(durable.len(), 2, "Mirage + Expelliarmus");
        for d in durable {
            assert_eq!(d.recoveries, 3, "{}: 2 injected + 1 final", d.store);
            assert!(d.torn_tails >= 3, "{}: every crash tears WALs", d.store);
            assert!(d.wal_appends > 0, "{}: write-through logged ops", d.store);
        }
        // Durable replay converges to the same end-state fingerprints
        // as the purely in-memory replay of the same base trace.
        let mem = run_churn(&ChurnConfig::small(0xBEEF, 60));
        assert!(mem.durable.is_none());
        assert_eq!(mem.cas_fingerprints.len(), report.cas_fingerprints.len());
        for (a, b) in mem.cas_fingerprints.iter().zip(&report.cas_fingerprints) {
            assert_eq!(a.store, b.store);
            assert_eq!(a.section, b.section);
            assert_eq!(a.fingerprint, b.fingerprint, "{}/{}", a.store, a.section);
        }
    }

    #[test]
    fn durable_concurrent_matches_sequential_durable() {
        let cfg = ChurnConfig::small(0x5EED, 60).with_durable(DurableCfg {
            crashes: 2,
            crash_seed: 9,
        });
        let seq = run_churn(&cfg);
        let conc = run_churn_threads(&cfg, 4);
        assert!(seq.violations.is_empty(), "{:#?}", seq.violations);
        assert!(conc.violations.is_empty(), "{:#?}", conc.violations);
        for (a, b) in seq.cas_fingerprints.iter().zip(&conc.cas_fingerprints) {
            assert_eq!(a.fingerprint, b.fingerprint, "{}/{}", a.store, a.section);
        }
        let (sd, cd) = (seq.durable.unwrap(), conc.durable.unwrap());
        for (a, b) in sd.iter().zip(&cd) {
            assert_eq!(a.store, b.store);
            assert_eq!(a.recoveries, b.recoveries);
            assert_eq!(a.wal_records_replayed, b.wal_records_replayed);
            assert_eq!(a.wal_appends, b.wal_appends);
            assert_eq!(a.checkpoints, b.checkpoints);
        }
    }

    #[test]
    fn det_metrics_are_thread_count_invariant() {
        // The tentpole pin: the registry's deterministic section is a
        // pure function of the executed op multiset, so its fingerprint
        // must be byte-identical at 1, 2, and 8 pool threads — and
        // match the sequential driver too (same trace, same ops).
        let cfg = ChurnConfig::small(0x0B5EED, 60);
        let fp_at = |threads: usize| {
            let registry = xpl_obs::Registry::new();
            let r = run_churn_threads_with(&cfg, threads, Some(&registry));
            assert!(r.violations.is_empty(), "{:#?}", r.violations);
            let snap = registry.snapshot();
            (
                snap.det_fingerprint(),
                snap.render_section_json(xpl_obs::Section::Det),
            )
        };
        let (fp1, det1) = fp_at(1);
        let (fp2, det2) = fp_at(2);
        let (fp8, det8) = fp_at(8);
        assert_eq!(det1, det2, "det section diverged between 1 and 2 threads");
        assert_eq!(det1, det8, "det section diverged between 1 and 8 threads");
        assert_eq!(fp1, fp2);
        assert_eq!(fp1, fp8);

        let seq_registry = xpl_obs::Registry::new();
        let seq = run_churn_with(&cfg, Some(&seq_registry));
        assert!(seq.violations.is_empty(), "{:#?}", seq.violations);
        assert_eq!(
            seq_registry
                .snapshot()
                .render_section_json(xpl_obs::Section::Det),
            det1,
            "sequential and pooled drivers must count the same ops"
        );
    }

    #[test]
    fn attaching_metrics_never_changes_the_report() {
        // The zero-interference pin: the churn report (fingerprints,
        // ledgers, violations — everything) is byte-identical whether
        // or not a registry was attached, in both drivers.
        let cfg = ChurnConfig::small(0xFACADE, 60);
        let render = |r: &ChurnReport| serde_json::to_string_pretty(r).unwrap();

        let plain = run_churn(&cfg);
        let registry = xpl_obs::Registry::new();
        let with = run_churn_with(&cfg, Some(&registry));
        assert_eq!(render(&plain), render(&with));
        assert!(
            registry.snapshot().det_fingerprint()
                != xpl_obs::Registry::new().snapshot().det_fingerprint(),
            "the attached registry must actually have counted something"
        );

        let plain_t = run_churn_threads(&cfg, 4);
        let registry_t = xpl_obs::Registry::new();
        let with_t = run_churn_threads_with(&cfg, 4, Some(&registry_t));
        assert_eq!(render(&plain_t), render(&with_t));
    }

    #[test]
    fn concurrent_mode_final_state_matches_sequential() {
        // The per-op check structure differs between the two drivers
        // (quiesce points vs. after-every-op), but the replayed end
        // state — repository bytes, totals, live images — must agree.
        let cfg = ChurnConfig::small(0x5EED, 80);
        let seq = run_churn(&cfg);
        let conc = run_churn_threads(&cfg, 4);
        assert!(seq.violations.is_empty(), "{:#?}", seq.violations);
        assert!(conc.violations.is_empty(), "{:#?}", conc.violations);
        for (a, b) in seq.stores.iter().zip(&conc.stores) {
            assert_eq!(a.store, b.store);
            assert_eq!(a.final_repo_bytes, b.final_repo_bytes, "{}", a.store);
            assert_eq!(a.final_images, b.final_images);
            assert_eq!(a.bytes_added_total, b.bytes_added_total, "{}", a.store);
            assert_eq!(a.bytes_freed_total, b.bytes_freed_total, "{}", a.store);
            assert_eq!(a.sim_seconds, b.sim_seconds, "{}", a.store);
        }
    }
}
