//! `repro profile` — a wall-clock span profile of the dedup publish
//! pipeline.
//!
//! Drives the pipeline's four phases by hand over a seeded
//! [`ScaledWorld`] so each phase lands in its own trace span:
//! **chunk** (serialize the image's disk and content-define chunk
//! boundaries), **dedup** (digest each chunk against the repository
//! index), **compress** (encode the novel chunks), **append** (write
//! the encoded records into the segment). Every image gets one
//! `publish` parent span; the four phases are its children. The output
//! is the aggregated span tree ([`xpl_obs::render_tree`]) plus a
//! machine-readable report, and the report carries the invariant the
//! subcommand asserts: the phase totals sum to no more than the
//! `publish` total, which sums to no more than the measured run wall.
//! (Real time, real work — this is the one deliberately
//! non-deterministic corner of the bench crate.)

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use xpl_chunking::rabin::{chunk_cdc, CdcParams};
use xpl_chunking::ChunkIndex;
use xpl_obs::{aggregate_spans, render_tree, AggSpan, TraceRing, WallClock};
use xpl_workloads::{ScaleConfig, ScaledWorld};

/// `repro profile` parameters.
#[derive(Clone, Copy, Debug)]
pub struct ProfileConfig {
    /// Images to publish (capped at the generated catalog size).
    pub images: usize,
    /// Seeds the generated world.
    pub seed: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            images: 12,
            seed: 0xDEADBEEF,
        }
    }
}

/// One phase's aggregate from the span tree.
#[derive(Clone, Debug, Serialize)]
pub struct PhaseRow {
    pub phase: String,
    pub calls: u64,
    pub total_ns: u64,
}

/// The machine-readable `repro profile` report.
#[derive(Clone, Debug, Serialize)]
pub struct ProfileReport {
    pub schema_version: u32,
    pub seed: u64,
    pub images: usize,
    pub chunks: u64,
    pub unique_chunks: u64,
    pub logical_bytes: u64,
    pub stored_bytes: u64,
    /// Total time under `publish` spans.
    pub publish_ns: u64,
    /// The four phases, in pipeline order.
    pub phases: Vec<PhaseRow>,
    /// Wall clock of the whole run (world generation included).
    pub wall_ns: u64,
    /// `true` iff `sum(phases) <= publish_ns <= wall_ns` held.
    pub spans_nest: bool,
    /// The rendered span tree.
    pub tree: String,
}

/// Run the profile. See the module docs for the phase structure.
pub fn run_profile(cfg: &ProfileConfig) -> ProfileReport {
    let t0 = Instant::now();
    let world = ScaledWorld::generate(&ScaleConfig::small(cfg.seed));
    let names = world.image_names();
    let images = cfg.images.clamp(1, names.len());

    let ring = TraceRing::new(64 * 1024, Arc::new(WallClock::new()));
    let mut index = ChunkIndex::new();
    let mut segment: Vec<u8> = Vec::new();
    let (mut chunks, mut unique, mut logical) = (0u64, 0u64, 0u64);

    // Each image is published twice — its initial generation and one
    // upgrade — so the dedup leg sees the repository's actual
    // redundancy profile (cross-generation content plus shared
    // libraries), not a cold index every time.
    let publishes: Vec<(&String, u32)> = names
        .iter()
        .take(images)
        .flat_map(|n| [(n, 0u32), (n, 1u32)])
        .collect();
    for &(name, generation) in &publishes {
        let vmi = world.build(name, generation);
        let publish = TraceRing::span(&ring, "publish", None);

        let (raw, spans) = {
            let _s = TraceRing::span(&ring, "chunk", Some(publish.id()));
            let raw = vmi.disk.serialize();
            let spans = chunk_cdc(&raw, CdcParams::with_avg(1024));
            (raw, spans)
        };
        logical += raw.len() as u64;
        chunks += spans.len() as u64;

        // Dedup: digest every chunk against the cross-image index; only
        // novel content moves on to the encode + append legs.
        let novel: Vec<&[u8]> = {
            let _s = TraceRing::span(&ring, "dedup", Some(publish.id()));
            spans
                .iter()
                .map(|sp| &raw[sp.offset..sp.offset + sp.len])
                .filter(|chunk| index.insert(chunk))
                .collect()
        };
        unique += novel.len() as u64;

        let encoded: Vec<Vec<u8>> = {
            let _s = TraceRing::span(&ring, "compress", Some(publish.id()));
            novel
                .iter()
                .map(|chunk| xpl_compress::lz4_compress(chunk))
                .collect()
        };

        {
            let _s = TraceRing::span(&ring, "append", Some(publish.id()));
            for rec in &encoded {
                segment.extend_from_slice(&(rec.len() as u32).to_le_bytes());
                segment.extend_from_slice(rec);
            }
        }
    }

    let spans = ring.completed();
    let agg = aggregate_spans(&spans);
    let tree = render_tree(&spans);
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let publish_agg: Option<&AggSpan> = agg.iter().find(|a| a.name == "publish");
    let publish_ns = publish_agg.map_or(0, |a| a.total_ns);
    let phases: Vec<PhaseRow> = ["chunk", "dedup", "compress", "append"]
        .iter()
        .map(|phase| {
            let node = publish_agg.and_then(|p| p.children.iter().find(|c| &c.name == phase));
            PhaseRow {
                phase: phase.to_string(),
                calls: node.map_or(0, |n| n.count),
                total_ns: node.map_or(0, |n| n.total_ns),
            }
        })
        .collect();
    let phase_sum: u64 = phases.iter().map(|p| p.total_ns).sum();
    let spans_nest = phase_sum <= publish_ns && publish_ns <= wall_ns;

    ProfileReport {
        schema_version: 1,
        seed: cfg.seed,
        images,
        chunks,
        unique_chunks: unique,
        logical_bytes: logical,
        stored_bytes: segment.len() as u64,
        publish_ns,
        phases,
        wall_ns,
        spans_nest,
        tree,
    }
}

/// Console rendering of a profile report.
pub fn render_profile(r: &ProfileReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "PROFILE: {} images published (seed {:#x}) — {} chunks, {} unique, \
         {} logical bytes -> {} stored",
        r.images, r.seed, r.chunks, r.unique_chunks, r.logical_bytes, r.stored_bytes
    );
    s.push_str(&r.tree);
    let _ = writeln!(
        s,
        "publish total {:.3} ms of {:.3} ms run wall (phases nest: {})",
        r.publish_ns as f64 / 1e6,
        r.wall_ns as f64 / 1e6,
        r.spans_nest
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_nest_and_account_for_the_pipeline() {
        let r = run_profile(&ProfileConfig {
            images: 4,
            seed: 0xBEE,
        });
        assert!(r.spans_nest, "phase sums must nest inside publish/wall");
        assert_eq!(r.phases.len(), 4);
        for p in &r.phases {
            assert_eq!(p.calls, 8, "{}: one span per publish (2/image)", p.phase);
        }
        assert!(r.chunks >= r.unique_chunks);
        assert!(r.unique_chunks > 0, "pipeline stored nothing");
        assert!(
            r.stored_bytes < r.logical_bytes,
            "dedup+compression should shrink the stream"
        );
        let text = render_profile(&r);
        assert!(text.contains("publish"), "{text}");
        assert!(text.contains("compress"), "{text}");
    }

    #[test]
    fn dedup_sees_cross_image_redundancy() {
        let r = run_profile(&ProfileConfig {
            images: 8,
            seed: 0xBEEF,
        });
        assert!(
            r.unique_chunks < r.chunks,
            "shared libraries must dedup across images: {} of {}",
            r.unique_chunks,
            r.chunks
        );
    }
}
