//! Ablation studies beyond the paper's headline figures.
//!
//! * [`chunk_size_sweep`] — Jin & Miller's chunk-size question: dedup
//!   factor of fixed-size vs. content-defined chunking across block
//!   sizes, on the four-image workload.
//! * [`master_graph_speedup`] — the design claim behind §III-H: similarity
//!   against one master graph vs. pairwise against every stored image
//!   graph (real CPU time, not simulated).

use serde::Serialize;
use xpl_baselines::{CdcDedupStore, FixedBlockDedupStore};
use xpl_semgraph::{sim_g, MasterGraph, SemanticGraph};
use xpl_store::ImageStore;
use xpl_workloads::World;

/// One row of the chunk-size sweep.
#[derive(Clone, Debug, Serialize)]
pub struct ChunkSweepRow {
    /// Block size in nominal KB.
    pub block_nominal_kb: u64,
    pub fixed_dedup_factor: f64,
    pub cdc_dedup_factor: f64,
    pub fixed_repo_gb: f64,
    pub cdc_repo_gb: f64,
}

/// Sweep block sizes over a set of images.
pub fn chunk_size_sweep(
    world: &World,
    image_names: &[&str],
    blocks_real: &[usize],
) -> Vec<ChunkSweepRow> {
    let mut rows = Vec::new();
    for &block in blocks_real {
        let fixed = FixedBlockDedupStore::new(world.env(), block);
        let cdc = CdcDedupStore::new(world.env(), block.next_power_of_two());
        for name in image_names {
            let vmi = world.build_image(name);
            fixed.publish(&world.catalog, &vmi).expect("fixed");
            cdc.publish(&world.catalog, &vmi).expect("cdc");
        }
        rows.push(ChunkSweepRow {
            block_nominal_kb: (block as u64 * xpl_util::SCALE_FACTOR) / 1024,
            fixed_dedup_factor: fixed.dedup_factor(),
            cdc_dedup_factor: cdc.dedup_factor(),
            fixed_repo_gb: xpl_util::bytesize::nominal_gb(fixed.repo_bytes()),
            cdc_repo_gb: xpl_util::bytesize::nominal_gb(cdc.repo_bytes()),
        });
    }
    rows
}

/// Master-graph vs. pairwise similarity timing.
#[derive(Clone, Debug, Serialize)]
pub struct MasterSpeedup {
    pub stored_images: usize,
    pub pairwise_ms: f64,
    pub master_ms: f64,
    pub speedup: f64,
}

/// Measure real CPU time of similarity computation for a new image against
/// `n` stored image graphs, pairwise vs. one merged master graph.
pub fn master_graph_speedup(world: &World, n: usize) -> MasterSpeedup {
    // Build n stored graphs by cycling the world's recipes.
    let names = world.image_names();
    let graphs: Vec<SemanticGraph> = (0..n)
        .map(|i| {
            let vmi = world.build_image(names[i % names.len()]);
            image_graph(world, &vmi)
        })
        .collect();
    let probe = image_graph(world, &world.build_image(names[names.len() - 1]));

    let t = std::time::Instant::now();
    let mut best = 0.0f64;
    for g in &graphs {
        best = best.max(sim_g(&probe, g));
    }
    let pairwise_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut master = MasterGraph::create(&graphs[0]);
    for g in &graphs[1..] {
        master.absorb(g);
    }
    let t = std::time::Instant::now();
    let s = master.similarity_to(&probe);
    let master_ms = t.elapsed().as_secs_f64() * 1e3;
    // Keep both results alive so the measurement isn't optimized away.
    let _ = (best, s);

    MasterSpeedup {
        stored_images: n,
        pairwise_ms,
        master_ms,
        speedup: if master_ms > 0.0 {
            pairwise_ms / master_ms
        } else {
            f64::INFINITY
        },
    }
}

fn image_graph(world: &World, vmi: &xpl_guestfs::Vmi) -> SemanticGraph {
    let installed = vmi.pkgdb.installed_ids();
    let primary_set: std::collections::HashSet<_> = vmi.primary.iter().copied().collect();
    let base_roots: Vec<_> = vmi
        .pkgdb
        .manual_ids()
        .into_iter()
        .filter(|id| !primary_set.contains(id))
        .collect();
    SemanticGraph::of_image(
        &world.catalog,
        &vmi.name,
        vmi.base.clone(),
        &installed,
        &vmi.primary,
        &base_roots,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_sweep_runs_small() {
        let w = World::small();
        let rows = chunk_size_sweep(&w, &["mini", "redis"], &[128, 512]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.fixed_dedup_factor >= 1.0);
            assert!(r.cdc_dedup_factor >= 1.0);
        }
    }

    #[test]
    fn master_speedup_positive() {
        let w = World::small();
        let s = master_graph_speedup(&w, 4);
        assert_eq!(s.stored_images, 4);
        assert!(s.pairwise_ms >= 0.0 && s.master_ms >= 0.0);
    }
}
