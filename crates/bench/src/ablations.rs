//! Ablation studies beyond the paper's headline figures.
//!
//! * [`chunk_size_sweep`] — Jin & Miller's chunk-size question: dedup
//!   factor of fixed-size vs. content-defined chunking across block
//!   sizes, on the four-image workload.
//! * [`master_graph_speedup`] — the design claim behind §III-H: similarity
//!   against one master graph vs. pairwise against every stored image
//!   graph (real CPU time, not simulated).
//! * [`codec_ablation_sweep`] — the hot/cold tier trade-off table: size
//!   ratio, compress/decompress throughput, and range-read latency of
//!   each storage codec (raw, blocked DEFLATE, blocked LZ4) over the
//!   same synthetic image payload (`repro ablate-codec`).

use crate::microbench::time_median;
use serde::Serialize;
use xpl_baselines::{CdcDedupStore, FixedBlockDedupStore};
use xpl_compress::{
    blocked_compress_inner, decompress_auto, read_range, InnerCodec, DEFAULT_BLOCK_SIZE,
};
use xpl_semgraph::{sim_g, MasterGraph, SemanticGraph};
use xpl_store::ImageStore;
use xpl_workloads::World;

/// One row of the chunk-size sweep.
#[derive(Clone, Debug, Serialize)]
pub struct ChunkSweepRow {
    /// Block size in nominal KB.
    pub block_nominal_kb: u64,
    pub fixed_dedup_factor: f64,
    pub cdc_dedup_factor: f64,
    pub fixed_repo_gb: f64,
    pub cdc_repo_gb: f64,
}

/// Sweep block sizes over a set of images.
pub fn chunk_size_sweep(
    world: &World,
    image_names: &[&str],
    blocks_real: &[usize],
) -> Vec<ChunkSweepRow> {
    let mut rows = Vec::new();
    for &block in blocks_real {
        let fixed = FixedBlockDedupStore::new(world.env(), block);
        let cdc = CdcDedupStore::new(world.env(), block.next_power_of_two());
        for name in image_names {
            let vmi = world.build_image(name);
            fixed.publish(&world.catalog, &vmi).expect("fixed");
            cdc.publish(&world.catalog, &vmi).expect("cdc");
        }
        rows.push(ChunkSweepRow {
            block_nominal_kb: (block as u64 * xpl_util::SCALE_FACTOR) / 1024,
            fixed_dedup_factor: fixed.dedup_factor(),
            cdc_dedup_factor: cdc.dedup_factor(),
            fixed_repo_gb: xpl_util::bytesize::nominal_gb(fixed.repo_bytes()),
            cdc_repo_gb: xpl_util::bytesize::nominal_gb(cdc.repo_bytes()),
        });
    }
    rows
}

/// Master-graph vs. pairwise similarity timing.
#[derive(Clone, Debug, Serialize)]
pub struct MasterSpeedup {
    pub stored_images: usize,
    pub pairwise_ms: f64,
    pub master_ms: f64,
    pub speedup: f64,
}

/// Measure real CPU time of similarity computation for a new image against
/// `n` stored image graphs, pairwise vs. one merged master graph.
pub fn master_graph_speedup(world: &World, n: usize) -> MasterSpeedup {
    // Build n stored graphs by cycling the world's recipes.
    let names = world.image_names();
    let graphs: Vec<SemanticGraph> = (0..n)
        .map(|i| {
            let vmi = world.build_image(names[i % names.len()]);
            image_graph(world, &vmi)
        })
        .collect();
    let probe = image_graph(world, &world.build_image(names[names.len() - 1]));

    let t = std::time::Instant::now();
    let mut best = 0.0f64;
    for g in &graphs {
        best = best.max(sim_g(&probe, g));
    }
    let pairwise_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut master = MasterGraph::create(&graphs[0]);
    for g in &graphs[1..] {
        master.absorb(g);
    }
    let t = std::time::Instant::now();
    let s = master.similarity_to(&probe);
    let master_ms = t.elapsed().as_secs_f64() * 1e3;
    // Keep both results alive so the measurement isn't optimized away.
    let _ = (best, s);

    MasterSpeedup {
        stored_images: n,
        pairwise_ms,
        master_ms,
        speedup: if master_ms > 0.0 {
            pairwise_ms / master_ms
        } else {
            f64::INFINITY
        },
    }
}

/// One row of the codec ablation: a storage codec measured over the
/// shared synthetic payload.
#[derive(Clone, Debug, Serialize)]
pub struct CodecAblationRow {
    /// Codec label: `raw`, `blocked-deflate`, or `blocked-lz4`.
    pub codec: String,
    pub input_bytes: u64,
    pub encoded_bytes: u64,
    /// `encoded / input`; 1.0 for the raw tier.
    pub ratio: f64,
    pub compress_mib_per_s: f64,
    pub decompress_mib_per_s: f64,
    /// A 64 KiB (or payload-bounded) read out of the middle of the
    /// encoded form — the page-serving path the hot tier exists for.
    pub range_read_mib_per_s: f64,
}

/// Sweep the three storage codecs over one seeded payload: the table
/// behind `repro ablate-codec`. Raw is the memcpy floor; the blocked
/// codecs go through the full container path (compress, whole-stream
/// decode via magic dispatch, seekable range read). Every row is
/// round-trip-verified before it is timed.
pub fn codec_ablation_sweep(payload_len: usize, budget_s: f64) -> Vec<CodecAblationRow> {
    assert!(payload_len > 0, "payload must be non-empty");
    let data = xpl_pkg::content::generate(42, payload_len);
    let range_len = (64 * 1024).min(payload_len) as u64;
    let range_start = (payload_len as u64 / 2).min(payload_len as u64 - range_len);
    let mib = |bytes: u64, secs: f64| bytes as f64 / (1024.0 * 1024.0) / secs;

    let mut rows = Vec::new();

    // Raw tier: encode and decode are both memcpy; the range read is a
    // slice copy. This is the throughput ceiling the codecs trade away.
    let encoded = data.clone();
    assert_eq!(encoded, data);
    let (_, t_enc) = time_median(budget_s, || {
        std::hint::black_box(data.clone());
    });
    let (_, t_dec) = time_median(budget_s, || {
        std::hint::black_box(encoded.clone());
    });
    let (_, t_rng) = time_median(budget_s, || {
        let s = range_start as usize;
        std::hint::black_box(encoded[s..s + range_len as usize].to_vec());
    });
    rows.push(CodecAblationRow {
        codec: "raw".into(),
        input_bytes: data.len() as u64,
        encoded_bytes: encoded.len() as u64,
        ratio: 1.0,
        compress_mib_per_s: mib(data.len() as u64, t_enc),
        decompress_mib_per_s: mib(data.len() as u64, t_dec),
        range_read_mib_per_s: mib(range_len, t_rng),
    });

    for codec in [InnerCodec::Deflate, InnerCodec::Lz4] {
        let encoded = blocked_compress_inner(&data, DEFAULT_BLOCK_SIZE, codec);
        assert_eq!(
            decompress_auto(&encoded).expect("container decodes"),
            data,
            "{} round trip",
            codec.name()
        );
        assert_eq!(
            read_range(&encoded, range_start, range_len).expect("range decodes"),
            &data[range_start as usize..(range_start + range_len) as usize],
            "{} range read",
            codec.name()
        );
        let (_, t_enc) = time_median(budget_s, || {
            std::hint::black_box(blocked_compress_inner(&data, DEFAULT_BLOCK_SIZE, codec));
        });
        let (_, t_dec) = time_median(budget_s, || {
            std::hint::black_box(decompress_auto(&encoded).expect("container decodes"));
        });
        let (_, t_rng) = time_median(budget_s, || {
            std::hint::black_box(read_range(&encoded, range_start, range_len).expect("range"));
        });
        rows.push(CodecAblationRow {
            codec: codec.name().into(),
            input_bytes: data.len() as u64,
            encoded_bytes: encoded.len() as u64,
            ratio: encoded.len() as f64 / data.len() as f64,
            compress_mib_per_s: mib(data.len() as u64, t_enc),
            decompress_mib_per_s: mib(data.len() as u64, t_dec),
            range_read_mib_per_s: mib(range_len, t_rng),
        });
    }
    rows
}

fn image_graph(world: &World, vmi: &xpl_guestfs::Vmi) -> SemanticGraph {
    let installed = vmi.pkgdb.installed_ids();
    let primary_set: std::collections::HashSet<_> = vmi.primary.iter().copied().collect();
    let base_roots: Vec<_> = vmi
        .pkgdb
        .manual_ids()
        .into_iter()
        .filter(|id| !primary_set.contains(id))
        .collect();
    SemanticGraph::of_image(
        &world.catalog,
        &vmi.name,
        vmi.base.clone(),
        &installed,
        &vmi.primary,
        &base_roots,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_sweep_runs_small() {
        let w = World::small();
        let rows = chunk_size_sweep(&w, &["mini", "redis"], &[128, 512]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.fixed_dedup_factor >= 1.0);
            assert!(r.cdc_dedup_factor >= 1.0);
        }
    }

    #[test]
    fn codec_ablation_covers_all_three_tiers() {
        let rows = codec_ablation_sweep(256 * 1024, 0.02);
        let names: Vec<&str> = rows.iter().map(|r| r.codec.as_str()).collect();
        assert_eq!(names, ["raw", "blocked-deflate", "blocked-lz4"]);
        for r in &rows {
            assert_eq!(r.input_bytes, 256 * 1024);
            assert!(r.compress_mib_per_s > 0.0, "{}: compress", r.codec);
            assert!(r.decompress_mib_per_s > 0.0, "{}: decompress", r.codec);
            assert!(r.range_read_mib_per_s > 0.0, "{}: range read", r.codec);
        }
        assert!((rows[0].ratio - 1.0).abs() < f64::EPSILON, "raw stores 1:1");
        // Both real codecs must actually shrink the synthetic payload;
        // DEFLATE stays the denser of the two.
        assert!(rows[1].ratio < 1.0 && rows[2].ratio < 1.0);
        assert!(rows[1].ratio < rows[2].ratio, "DEFLATE is the dense tier");
    }

    #[test]
    fn master_speedup_positive() {
        let w = World::small();
        let s = master_graph_speedup(&w, 4);
        assert_eq!(s.stored_images, 4);
        assert!(s.pairwise_ms >= 0.0 && s.master_ms >= 0.0);
    }
}
