//! The wire serving benchmark — `repro serve --net`.
//!
//! Drives the same seeded multi-tenant schedule as `repro serve`, but
//! over the `xpl-net` wire layer: a threaded server fronts the real
//! store behind the frame codec and per-tenant admission gate, and a
//! pool of retrying clients (one [`xpl_net::NetClient`] per tenant
//! connection) pushes every scheduled request through it. Three legs:
//!
//! 1. **In-process memoization.** Execute each distinct request key
//!    once against the store, exactly as `run_serve` phase 1 does, and
//!    fingerprint the sorted `key -> payload digest` table.
//! 2. **The wire run.** Serve the whole schedule through the chosen
//!    transport — real TCP on a loopback socket, or the deterministic
//!    fault-injecting in-memory transport (`--net-faults`) with seeded
//!    resets, torn writes, short reads, and delays. Clients retry
//!    transport faults and typed `Overload` with deterministic backoff.
//! 3. **The differential oracle.** Every wire response is diffed
//!    against the memoized digest, and the table assembled from wire
//!    responses is fingerprinted again: `wire_key_digests_sha256` must
//!    be byte-identical to the in-process `key_digests_sha256`. A lost
//!    request, a duplicated or torn payload, or a client left hanging
//!    is a violation — under any fault rate.

use crate::serve::{execute_key, prepare, spec_key, PreparedServe, ServeRunConfig};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xpl_net::{
    BackoffPolicy, ClientStats, FaultConfig, MemHost, NetClient, NetServer, WireConfig, WireService,
};
use xpl_registry::RequestKey;
use xpl_store::{ImageStore, RetrieveRequest};
use xpl_util::Sha256;
use xpl_workloads::{ScaledWorld, ServeConfig, ServeSchedule};

/// Which transport carries the schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetTransportKind {
    /// Real TCP sockets on 127.0.0.1 (ephemeral port).
    Tcp,
    /// The in-memory transport, optionally fault-injected.
    Mem,
}

/// `repro serve --net` parameters on top of [`ServeRunConfig`].
#[derive(Clone, Copy, Debug)]
pub struct NetServeConfig {
    pub transport: NetTransportKind,
    /// Fault rate per 256 transport ops (0 = clean). Nonzero implies
    /// the in-memory transport: fault schedules are seeded and
    /// per-connection deterministic there.
    pub fault_rate: u32,
    /// Seeds the fault schedules and every client's backoff jitter.
    pub net_seed: u64,
    /// Concurrent connections per tenant.
    pub conns_per_tenant: usize,
}

impl Default for NetServeConfig {
    fn default() -> Self {
        NetServeConfig {
            transport: NetTransportKind::Tcp,
            fault_rate: 0,
            net_seed: 0x77AE,
            conns_per_tenant: 2,
        }
    }
}

/// The machine-readable `repro serve --net` report.
#[derive(Clone, Debug, Serialize)]
pub struct NetServeReport {
    pub schema_version: u32,
    pub seed: u64,
    pub net_seed: u64,
    pub scale: String,
    pub store: String,
    pub transport: String,
    pub fault_rate: u32,
    pub tenants: u32,
    pub requests: usize,
    pub conns_per_tenant: usize,
    pub queue_depth: usize,
    pub images_published: usize,
    pub distinct_keys: usize,
    /// In-process fingerprint of the sorted `key -> digest` table
    /// (identical to `repro serve`'s field of the same name for the
    /// same seed/scale/store).
    pub key_digests_sha256: String,
    /// The same table assembled purely from wire responses. Must be
    /// byte-identical to `key_digests_sha256`.
    pub wire_key_digests_sha256: String,
    // Client-side accounting, summed over the pool.
    pub served: u64,
    pub retries: u64,
    pub reconnects: u64,
    pub overloads_seen: u64,
    // Server-side accounting.
    pub srv_connections: u64,
    pub srv_served: u64,
    pub srv_overloads: u64,
    pub srv_evictions: u64,
    pub srv_peer_closed: u64,
    pub srv_drain_rejects: u64,
    pub srv_frame_errors: u64,
    // Injected-fault counters (zero on clean transports).
    pub faults_resets: u64,
    pub faults_torn_writes: u64,
    pub faults_short_reads: u64,
    pub faults_delays: u64,
    /// Successful `Stats` wire probes issued while the schedule (and
    /// any fault storm) was in flight. Zero without a registry.
    pub stats_probes: u64,
    /// Deterministic-section fingerprint from the last `Stats` probe —
    /// the mid-drain one when the in-memory host ran, else the last
    /// mid-storm one. Empty without a registry.
    pub stats_probe_fingerprint: String,
    pub wall_s: f64,
    pub wire_ops_per_s: f64,
    /// Differential-oracle violations (must be empty at any fault
    /// rate): digest mismatches, lost requests, table divergence.
    pub violations: Vec<String>,
}

/// The service the wire server runs: parse the canonical key rendering,
/// execute it against the real store, reply with the payload digest.
/// Digests — not payloads — are the oracle identity (payloads can be
/// gigabytes of simulated disk); a hostile or unknown key is a typed
/// service error, never a panic.
pub struct StoreService {
    world: Arc<ScaledWorld>,
    store: Arc<dyn ImageStore>,
    requests: Arc<HashMap<String, (RetrieveRequest, u64)>>,
}

impl WireService for StoreService {
    fn call(&self, _tenant: u32, request: &[u8]) -> Result<Vec<u8>, String> {
        let text =
            std::str::from_utf8(request).map_err(|e| format!("request is not UTF-8: {e}"))?;
        let key =
            RequestKey::parse(text).ok_or_else(|| format!("unparseable request key: {text:?}"))?;
        let image = match &key {
            RequestKey::Image { image } => image,
            RequestKey::Range { image, .. } => image,
        };
        if !self.requests.contains_key(image) {
            return Err(format!("unknown image {image:?}"));
        }
        let (_, _, digest) = execute_key(&*self.store, &self.world, &self.requests, &key)
            .map_err(|e| format!("{}: {e}", key.render()))?;
        Ok(digest.into_bytes())
    }
}

fn sorted_table_sha256(table: &HashMap<String, String>) -> String {
    let mut lines: Vec<String> = table.iter().map(|(k, d)| format!("{k} {d}")).collect();
    lines.sort_unstable();
    Sha256::digest(lines.join("\n").as_bytes()).to_hex()
}

/// Run the wire pipeline. See the module docs for the legs.
pub fn run_serve_net(cfg: &ServeRunConfig, net: &NetServeConfig) -> NetServeReport {
    run_serve_net_with(cfg, net, None)
}

/// [`run_serve_net`] with an optional metrics registry. When attached:
/// the store mirrors its CAS accounting, the server mirrors its
/// connection accounting onto `net.*` counters, a prober thread issues
/// `Stats` wire requests *while* the schedule (and any fault storm) is
/// in flight, and one more probe lands mid-drain on the in-memory
/// host — every snapshot must come back parseable with a well-formed
/// deterministic-section fingerprint, or the run records a violation.
pub fn run_serve_net_with(
    cfg: &ServeRunConfig,
    net: &NetServeConfig,
    registry: Option<&Arc<xpl_obs::Registry>>,
) -> NetServeReport {
    let PreparedServe {
        world,
        names,
        store,
        requests,
    } = prepare(cfg);
    if let Some(reg) = registry {
        store.attach_obs(reg);
    }
    let world = Arc::new(world);
    let requests = Arc::new(requests);

    // Leg 1 — the schedule and the in-process digest table. Arrival
    // times are irrelevant over the wire (clients issue back to back);
    // the key stream is what matters, and it is identical to
    // `run_serve`'s for the same seed.
    let mut serve_cfg = ServeConfig::new(cfg.seed);
    serve_cfg.tenants = cfg.tenants;
    serve_cfg.requests = cfg.requests;
    let schedule = ServeSchedule::generate(&names, &serve_cfg);
    let mut memo: HashMap<String, String> = HashMap::new();
    let mut keys: Vec<(u32, String)> = Vec::with_capacity(schedule.requests.len());
    for spec in &schedule.requests {
        let key = spec_key(spec);
        let rendered = key.render();
        if !memo.contains_key(&rendered) {
            let (_, _, digest) = execute_key(&*store, &world, &requests, &key)
                .unwrap_or_else(|e| panic!("net serve memo: {rendered}: {e}"));
            memo.insert(rendered.clone(), digest);
        }
        keys.push((spec.tenant, rendered));
    }
    let key_digests_sha256 = sorted_table_sha256(&memo);
    let distinct_keys = memo.len();

    // Leg 2 — the wire run.
    let svc: Arc<dyn WireService> = Arc::new(StoreService {
        world: world.clone(),
        store: store.clone(),
        requests: requests.clone(),
    });
    let wire_cfg = WireConfig {
        queue_depth: cfg.queue_depth,
        read_deadline: Duration::from_secs(30),
        write_deadline: Duration::from_secs(30),
        ..WireConfig::default()
    };
    // A dense storm can kill several consecutive connections per
    // request (every send and read burst rolls for a reset), so the
    // budget is generous — but still bounded, and idle runs never pay
    // for it: a clean transport succeeds on the first attempt.
    let backoff = BackoffPolicy {
        base_ns: 500_000,
        max_ns: 50_000_000,
        max_attempts: 64,
    };

    enum Host {
        Tcp(NetServer),
        Mem(Arc<MemHost>),
    }
    let faults = if net.fault_rate == 0 {
        FaultConfig::none(net.net_seed)
    } else {
        FaultConfig::storm(net.net_seed, net.fault_rate)
    };
    let host = match net.transport {
        NetTransportKind::Tcp => Host::Tcp(
            NetServer::bind_obs("127.0.0.1:0", svc, wire_cfg, registry)
                .unwrap_or_else(|e| panic!("net serve: bind: {e}")),
        ),
        NetTransportKind::Mem => {
            Host::Mem(Arc::new(MemHost::new_obs(svc, wire_cfg, faults, registry)))
        }
    };
    let probe_client = |tenant: u32, seed: u64| -> NetClient {
        match &host {
            Host::Tcp(server) => {
                NetClient::tcp(server.local_addr(), tenant, wire_cfg, backoff, seed)
            }
            Host::Mem(host) => {
                let host = host.clone();
                NetClient::new(
                    tenant,
                    wire_cfg,
                    backoff,
                    seed,
                    Box::new(move || Ok(host.connect())),
                )
            }
        }
    };

    // Partition each tenant's request stream round-robin across its
    // connections; every client thread replays its slice in order,
    // retrying through the storm, and records (key, wire digest).
    let wire_table: Mutex<HashMap<String, String>> = Mutex::new(HashMap::new());
    let violations: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let pool_stats: Mutex<Vec<ClientStats>> = Mutex::new(Vec::new());
    let workers_live = AtomicUsize::new(0);
    let probes_ok = AtomicU64::new(0);
    let last_probe_fp: Mutex<String> = Mutex::new(String::new());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for tenant in 0..cfg.tenants {
            for conn in 0..net.conns_per_tenant.max(1) {
                let slice: Vec<&String> = keys
                    .iter()
                    .filter(|(t, _)| *t == tenant)
                    .map(|(_, k)| k)
                    .skip(conn)
                    .step_by(net.conns_per_tenant.max(1))
                    .collect();
                if slice.is_empty() {
                    continue;
                }
                let client_seed = net.net_seed ^ (tenant as u64) << 16 ^ conn as u64;
                let mut client = match &host {
                    Host::Tcp(server) => {
                        NetClient::tcp(server.local_addr(), tenant, wire_cfg, backoff, client_seed)
                    }
                    Host::Mem(host) => {
                        let host = host.clone();
                        NetClient::new(
                            tenant,
                            wire_cfg,
                            backoff,
                            client_seed,
                            Box::new(move || Ok(host.connect())),
                        )
                    }
                };
                workers_live.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let (wire_table, violations, pool_stats, memo, workers_live) =
                    (&wire_table, &violations, &pool_stats, &memo, &workers_live);
                scope.spawn(move || {
                    for key in slice {
                        match client.call(key.as_bytes()) {
                            Ok(reply) => {
                                let digest = String::from_utf8_lossy(&reply).into_owned();
                                if memo.get(key.as_str()) != Some(&digest) {
                                    violations.lock().unwrap().push(format!(
                                        "{key}: wire digest {digest} != memoized {:?}",
                                        memo.get(key.as_str())
                                    ));
                                }
                                let mut table = wire_table.lock().unwrap();
                                if let Some(prev) = table.get(key.as_str()) {
                                    if prev != &digest {
                                        violations.lock().unwrap().push(format!(
                                            "{key}: wire digest {digest} disagrees with \
                                             earlier wire digest {prev}"
                                        ));
                                    }
                                } else {
                                    table.insert(key.clone(), digest);
                                }
                            }
                            Err(e) => violations
                                .lock()
                                .unwrap()
                                .push(format!("tenant {tenant} conn {conn}: {key}: {e}")),
                        }
                    }
                    client.close();
                    pool_stats.lock().unwrap().push(client.stats);
                    workers_live.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
        }

        // The mid-storm prober: while worker clients push the schedule
        // through (and the storm tears at their connections), keep
        // asking the same server for its metrics snapshot over the
        // wire. Every reply must parse and carry a fingerprint.
        if registry.is_some() {
            let (violations, workers_live, probes_ok, last_probe_fp) =
                (&violations, &workers_live, &probes_ok, &last_probe_fp);
            let mut prober = probe_client(0, net.net_seed ^ 0x5747_5053);
            scope.spawn(move || {
                while workers_live.load(std::sync::atomic::Ordering::SeqCst) > 0 {
                    match prober.stats_snapshot() {
                        Ok(raw) => match std::str::from_utf8(&raw)
                            .ok()
                            .and_then(xpl_obs::parse_det_fingerprint)
                        {
                            Some(fp) => {
                                probes_ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                *last_probe_fp.lock().unwrap() = fp.to_string();
                            }
                            None => violations
                                .lock()
                                .unwrap()
                                .push("mid-storm stats probe: unparseable snapshot".into()),
                        },
                        Err(e) => violations
                            .lock()
                            .unwrap()
                            .push(format!("mid-storm stats probe failed: {e}")),
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                prober.close();
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();

    // Mid-drain probe (in-memory host only: it exposes the drain flag
    // without joining): the draining server must still answer `Stats`
    // even as it rejects ordinary requests.
    if let (Some(_), Host::Mem(mem)) = (registry, &host) {
        mem.begin_drain();
        let mut prober = probe_client(0, net.net_seed ^ 0x4452_4149);
        match prober.stats_snapshot() {
            Ok(raw) => match std::str::from_utf8(&raw)
                .ok()
                .and_then(xpl_obs::parse_det_fingerprint)
            {
                Some(fp) => *last_probe_fp.lock().unwrap() = fp.to_string(),
                None => violations
                    .lock()
                    .unwrap()
                    .push("mid-drain stats probe: unparseable snapshot".into()),
            },
            Err(e) => violations
                .lock()
                .unwrap()
                .push(format!("mid-drain stats probe failed: {e}")),
        }
        match prober.call(b"retrieve anything") {
            Err(xpl_net::NetError::Rejected(_)) => {}
            other => violations.lock().unwrap().push(format!(
                "mid-drain ordinary call should be Rejected, got {other:?}"
            )),
        }
        prober.close();
    }

    // Leg 3 — drain and close the books.
    let (srv, fault_counts, transport_name) = match host {
        Host::Tcp(server) => (server.drain(), [0u64; 4], "tcp"),
        Host::Mem(host) => {
            let stats = host.drain();
            use std::sync::atomic::Ordering::Relaxed;
            let f = host.fault_stats();
            (
                stats,
                [
                    f.resets.load(Relaxed),
                    f.torn_writes.load(Relaxed),
                    f.short_reads.load(Relaxed),
                    f.delays.load(Relaxed),
                ],
                "mem",
            )
        }
    };

    let wire_table = wire_table.into_inner().unwrap();
    let wire_key_digests_sha256 = sorted_table_sha256(&wire_table);
    let mut violations = violations.into_inner().unwrap();
    if wire_table.len() != memo.len() {
        violations.push(format!(
            "wire table holds {} keys, in-process table {} — requests were lost",
            wire_table.len(),
            memo.len()
        ));
    }
    if wire_key_digests_sha256 != key_digests_sha256 {
        violations.push(format!(
            "wire key-digest table {wire_key_digests_sha256} != in-process {key_digests_sha256}"
        ));
    }
    let pool_stats = pool_stats.into_inner().unwrap();
    let served: u64 = pool_stats.iter().map(|s| s.served).sum();
    if served != cfg.requests as u64 {
        violations.push(format!(
            "clients served {served} of {} scheduled requests",
            cfg.requests
        ));
    }

    let retries: u64 = pool_stats.iter().map(|s| s.retries).sum();
    let reconnects: u64 = pool_stats.iter().map(|s| s.reconnects).sum();
    let overloads_seen: u64 = pool_stats.iter().map(|s| s.overloads_seen).sum();
    if let Some(reg) = registry {
        // Fold the client-pool and injected-fault accounting onto the
        // canonical metric names, so the snapshot carries the same
        // numbers the report does (the server side already mirrored
        // live through `ServerObs`).
        use xpl_obs::Section::Wall;
        reg.counter("net.client.served", Wall).add(served);
        reg.counter("net.client.retries", Wall).add(retries);
        reg.counter("net.client.reconnects", Wall).add(reconnects);
        reg.counter("net.client.overloads_seen", Wall)
            .add(overloads_seen);
        reg.counter("net.faults.resets", Wall).add(fault_counts[0]);
        reg.counter("net.faults.torn_writes", Wall)
            .add(fault_counts[1]);
        reg.counter("net.faults.short_reads", Wall)
            .add(fault_counts[2]);
        reg.counter("net.faults.delays", Wall).add(fault_counts[3]);
        // Quiesced registry: two consecutive snapshots must agree.
        let a = reg.snapshot().fingerprint();
        let b = reg.snapshot().fingerprint();
        if a != b {
            violations.push(format!("quiesced registry unstable: {a} != {b}"));
        }
    }

    NetServeReport {
        schema_version: 2,
        seed: cfg.seed,
        net_seed: net.net_seed,
        scale: cfg.scale_name.clone(),
        store: store.name().to_string(),
        transport: transport_name.to_string(),
        fault_rate: net.fault_rate,
        tenants: cfg.tenants,
        requests: cfg.requests,
        conns_per_tenant: net.conns_per_tenant,
        queue_depth: cfg.queue_depth,
        images_published: names.len(),
        distinct_keys,
        key_digests_sha256,
        wire_key_digests_sha256,
        served,
        retries,
        reconnects,
        overloads_seen,
        srv_connections: srv.connections,
        srv_served: srv.served,
        srv_overloads: srv.overloads,
        srv_evictions: srv.evictions,
        srv_peer_closed: srv.peer_closed,
        srv_drain_rejects: srv.drain_rejects,
        srv_frame_errors: srv.frame_errors,
        faults_resets: fault_counts[0],
        faults_torn_writes: fault_counts[1],
        faults_short_reads: fault_counts[2],
        faults_delays: fault_counts[3],
        stats_probes: probes_ok.load(std::sync::atomic::Ordering::Relaxed),
        stats_probe_fingerprint: last_probe_fp.into_inner().unwrap(),
        wall_s,
        wire_ops_per_s: if wall_s > 0.0 {
            served as f64 / wall_s
        } else {
            0.0
        },
        violations,
    }
}

/// Console rendering of a net serve report.
pub fn render_net(r: &NetServeReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "SERVE/NET: {} requests from {} tenants over {} against {} ({} scale, seed {:#x})",
        r.requests, r.tenants, r.transport, r.store, r.scale, r.seed
    );
    let _ = writeln!(
        s,
        "  wire: {} conns/tenant, queue depth {}, fault rate {}/256 (net seed {:#x})",
        r.conns_per_tenant, r.queue_depth, r.fault_rate, r.net_seed
    );
    let _ = writeln!(
        s,
        "  clients: served {} ({} retries, {} reconnects, {} overloads seen)",
        r.served, r.retries, r.reconnects, r.overloads_seen
    );
    let _ = writeln!(
        s,
        "  server: {} conns, served {}, overloads {}, evictions {}, peer-closed {}, \
         frame-errors {}",
        r.srv_connections,
        r.srv_served,
        r.srv_overloads,
        r.srv_evictions,
        r.srv_peer_closed,
        r.srv_frame_errors
    );
    if r.fault_rate > 0 {
        let _ = writeln!(
            s,
            "  storm: {} resets, {} torn writes, {} short reads, {} delays injected",
            r.faults_resets, r.faults_torn_writes, r.faults_short_reads, r.faults_delays
        );
    }
    let _ = writeln!(
        s,
        "  throughput: {:.0} wire ops/s wall ({:.3}s)",
        r.wire_ops_per_s, r.wall_s
    );
    let _ = writeln!(
        s,
        "  key-digests sha256 (in-process): {}",
        r.key_digests_sha256
    );
    let _ = writeln!(
        s,
        "  key-digests sha256 (wire):       {}",
        r.wire_key_digests_sha256
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(seed: u64) -> ServeRunConfig {
        let mut cfg = ServeRunConfig::small(seed);
        cfg.requests = 80;
        cfg.tenants = 3;
        cfg
    }

    #[test]
    fn mem_wire_table_matches_in_process_table() {
        let cfg = tiny_cfg(0x11E7);
        let net = NetServeConfig {
            transport: NetTransportKind::Mem,
            fault_rate: 0,
            net_seed: 1,
            conns_per_tenant: 2,
        };
        let r = run_serve_net(&cfg, &net);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.wire_key_digests_sha256, r.key_digests_sha256);
        assert_eq!(r.served, 80);
        assert_eq!(r.retries, 0, "clean transport must not retry");
        let text = render_net(&r);
        assert!(text.contains("key-digests sha256 (wire)"));
    }

    #[test]
    fn net_digest_table_equals_run_serve_digest_table() {
        // The acceptance pin: the wire leg and the in-process pipeline
        // fingerprint the same key -> digest table for the same
        // seed/scale/store.
        let cfg = tiny_cfg(0x11E8);
        let in_process = crate::serve::run_serve(&cfg);
        let net = NetServeConfig {
            transport: NetTransportKind::Mem,
            fault_rate: 0,
            net_seed: 2,
            conns_per_tenant: 1,
        };
        let wire = run_serve_net(&cfg, &net);
        assert_eq!(wire.key_digests_sha256, in_process.key_digests_sha256);
        assert_eq!(wire.wire_key_digests_sha256, in_process.key_digests_sha256);
    }

    #[test]
    fn stats_probes_survive_the_storm_and_the_drain() {
        // The acceptance pin: `Stats` is served over the wire while the
        // fault storm is tearing at every other connection, and again
        // mid-drain — parseable, fingerprinted, zero violations.
        let cfg = tiny_cfg(0x11EB);
        let net = NetServeConfig {
            transport: NetTransportKind::Mem,
            fault_rate: 24,
            net_seed: 0xF00D,
            conns_per_tenant: 2,
        };
        let registry = xpl_obs::Registry::new();
        let r = run_serve_net_with(&cfg, &net, Some(&registry));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.stats_probes >= 1, "no mid-storm probe landed");
        assert_eq!(
            r.stats_probe_fingerprint.len(),
            64,
            "{}",
            r.stats_probe_fingerprint
        );
        // The registry saw both sides: CAS work (det) and wire traffic
        // (wall), including the client/fault fold-in.
        let json = registry.snapshot().render_json();
        assert!(json.contains("\"cas.get.hits\""), "{json}");
        assert!(json.contains("\"net.served\""), "{json}");
        assert!(json.contains("\"net.stats.served\""), "{json}");
        assert!(json.contains("\"net.client.served\""), "{json}");
        assert!(json.contains("\"net.faults.resets\""), "{json}");
    }

    #[test]
    fn faulty_wire_still_converges_with_zero_violations() {
        let cfg = tiny_cfg(0x11E9);
        let net = NetServeConfig {
            transport: NetTransportKind::Mem,
            fault_rate: 24,
            net_seed: 0xBAD5EED,
            conns_per_tenant: 2,
        };
        let r = run_serve_net(&cfg, &net);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.wire_key_digests_sha256, r.key_digests_sha256);
        let injected =
            r.faults_resets + r.faults_torn_writes + r.faults_short_reads + r.faults_delays;
        assert!(injected > 0, "the storm never fired");
    }
}
