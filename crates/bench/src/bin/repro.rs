//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro table2        Table II (19-image characteristics + times)
//! repro fig3a         Figure 3a (repo growth, 4 images)
//! repro fig3b         Figure 3b (repo growth, 19 images)
//! repro fig3c [N]     Figure 3c (repo growth, N=40 IDE builds)
//! repro fig4a         Figure 4a (publish time, 4 images)
//! repro fig4b         Figure 4b (publish time, 19 images + Semantic)
//! repro fig5a         Figure 5a (retrieval breakdown)
//! repro fig5b         Figure 5b (retrieval comparison)
//! repro ablations     chunk-size sweep + master-graph speedup + codec tiers
//! repro ablate-codec [--payload-mib N] [--json F]
//!                     the hot/cold codec trade-off table: size ratio,
//!                     compress/decompress throughput, and range-read
//!                     throughput of raw vs blocked-DEFLATE vs
//!                     blocked-LZ4 over one seeded payload (default
//!                     8 MiB). Every row is round-trip-verified.
//! repro churn [--seed N] [--ops N] [--scale small|standard] [--json F]
//!             [--threads N] [--durable] [--crashes K] [--crash-seed N]
//!             [--codec raw|deflate|lz4|mixed]
//!                     trace-driven lifecycle replay + differential oracle
//!                     (exits 1 on any oracle violation). With --threads
//!                     the concurrent driver replays store replicas and
//!                     per-image retrieval groups on the worker pool; the
//!                     report is byte-identical for every thread count.
//!                     With --durable, Expelliarmus and Mirage write
//!                     through to log-structured on-disk backends
//!                     (xpl-persist) and the trace gains K (default 3)
//!                     crash-recovery pairs; the oracle additionally
//!                     checks every recovery converges to the uncrashed
//!                     in-memory state. --codec picks the tier policy
//!                     the compressing stores run under (default mixed:
//!                     DEFLATE base, read-hot blobs recompressed onto
//!                     LZ4 by the trace's maintenance sweeps); the
//!                     oracle report is codec-invariant.
//! repro serve [--seed N] [--scale small|standard] [--tenants N]
//!             [--requests N] [--servers N] [--queue-depth N]
//!             [--store S] [--no-coalesce] [--threads N] [--json F]
//!             [--codec raw|deflate|lz4|mixed]
//!                     multi-tenant registry serving benchmark: a seeded
//!                     Zipf-skewed schedule through the admission/
//!                     coalescing/fair-share front end over a real store
//!                     (default expelliarmus). Latency percentiles and
//!                     the request-log fingerprint are virtual-time
//!                     numbers — byte-identical at any --threads; only
//!                     the replay ops/s is wall clock. Exits 1 on any
//!                     differential-oracle violation.
//!             [--net] [--net-faults R] [--net-seed N] [--conns N]
//!                     With --net the schedule is served over the
//!                     xpl-net wire layer instead: a threaded server
//!                     fronts the store behind the frame codec and the
//!                     per-tenant admission gate, and a pool of
//!                     retrying clients (N connections per tenant)
//!                     drives it. Clean runs use real TCP on loopback;
//!                     --net-faults R (implies --net) switches to the
//!                     deterministic in-memory transport with seeded
//!                     resets, torn writes, short reads, and delays at
//!                     rate R/256. The key->digest table assembled from
//!                     wire responses must be byte-identical to the
//!                     in-process table at any fault rate; exits 1
//!                     otherwise.
//! repro profile [--images N] [--seed N] [--json F]
//!                     span-tree profile of the dedup publish pipeline:
//!                     each image's publish is traced through its
//!                     chunk / dedup / compress / append phases and the
//!                     aggregated tree is printed with per-phase totals.
//!                     Exits 1 if the span accounting does not nest
//!                     (sum of phases <= publish <= run wall).
//! repro audit [--world small]
//!                     publish the world into all five stores, delete a
//!                     third of the images, then run every store's deep
//!                     integrity audit (refcounts + full content re-hash);
//!                     exits 1 if any store fails.
//! repro bench [--quick] [--json F] [--codec deflate|lz4]
//!                     wall-clock substrate microbenchmarks → BENCH.json
//!                     (--codec picks the blocked container's inner
//!                     codec; the codec-tier comparison section always
//!                     measures both)
//! repro bench --check F
//!                     validate an existing BENCH.json (nonzero throughputs)
//! repro all [dir] [--threads N]
//!                     everything; JSON results into dir (default results/).
//!                     Multi-store sweeps run one store per pool worker
//!                     (JSON byte-identical to a sequential run);
//!                     --threads pins the pool size.
//! ```
//!
//! `--world small` swaps the paper-scale world for the fast 4-image
//! test world (used by the CLI smoke tests). It applies to the
//! catalog-driven commands — table2, fig3b, fig4b, fig5a, fig5b;
//! fig3a/fig3c/fig4a reference images only the standard world defines.
//!
//! `churn`, `serve`, and `bench` additionally take `--metrics FILE`:
//! an xpl-obs registry is attached to every store/server in the run
//! and its snapshot (deterministic + wall sections, with fingerprints)
//! is written to FILE as canonical JSON. Attaching the registry never
//! changes the run's report or exit code — the det section is a pure
//! function of the executed ops, byte-identical at any `--threads`.
//! `--no-metrics` spells the default explicitly.

use std::io::Write as _;
use xpl_bench::experiments::*;
use xpl_bench::{ablations, churn, render};
use xpl_workloads::World;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Print a one-line usage error and exit 2.
fn fail(msg: String) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

/// Strict `--flag N` parsing: a present-but-unparseable value is an
/// error, never a silent fall-back onto a default the user didn't ask
/// for. Accepts decimal or 0x-prefixed hex.
fn parse_u64_flag(args: &[String], flag: &str) -> Option<u64> {
    flag_value(args, flag).map(|s| {
        let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        };
        parsed.unwrap_or_else(|_| {
            fail(format!(
                "invalid {flag} value {s:?} (expected an unsigned integer)"
            ))
        })
    })
}

/// Strict `--flag N` where zero makes no sense (thread counts, op
/// counts, queue depths…).
fn parse_nonzero_flag(args: &[String], flag: &str) -> Option<u64> {
    parse_u64_flag(args, flag).inspect(|&n| {
        if n == 0 {
            fail(format!("{flag} must be at least 1"));
        }
    })
}

/// Arguments with `--flag value` pairs stripped, so positional parsing
/// (`fig3c N`, `all DIR`) composes with flags like `--world small`.
fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            out.push(args[i].clone());
            i += 1;
        }
    }
    out
}

/// `--threads N`, strictly: an unparseable or zero value is an error,
/// not a silent fall-back onto a different driver or pool size.
fn parse_threads(args: &[String]) -> Option<usize> {
    parse_nonzero_flag(args, "--threads").map(|n| n as usize)
}

/// `--scale small|standard`, strictly: a typo'd scale must not fall
/// back to a world the user didn't ask for (e.g. an empty or unknown
/// value silently benchmarking the 32-image world as "standard").
fn parse_scale(args: &[String]) -> &'static str {
    match flag_value(args, "--scale").as_deref() {
        None | Some("small") => "small",
        Some("standard") => "standard",
        Some(other) => fail(format!(
            "invalid --scale value {other:?} (expected small or standard)"
        )),
    }
}

/// `--codec raw|deflate|lz4|mixed`, strictly: an unknown codec must
/// not fall back onto a tier policy the user didn't ask for.
fn parse_codec_tier(args: &[String]) -> Option<xpl_store::TierPolicy> {
    flag_value(args, "--codec").map(|s| {
        xpl_store::TierPolicy::parse(&s).unwrap_or_else(|| {
            fail(format!(
                "unknown --codec {s:?} (expected raw, deflate, lz4, or mixed)"
            ))
        })
    })
}

/// `--metrics FILE`: an xpl-obs registry attached to the run and
/// snapshotted to FILE afterwards (canonical JSON, det + wall
/// sections). `--no-metrics` spells the default explicitly so CI
/// invocations that pin "report unchanged by metrics" are
/// self-documenting. Attaching a registry never changes any report or
/// exit code — only whether FILE is written.
struct Metrics {
    path: String,
    registry: std::sync::Arc<xpl_obs::Registry>,
}

fn parse_metrics(args: &[String]) -> Option<Metrics> {
    let path = flag_value(args, "--metrics");
    if args.iter().any(|a| a == "--no-metrics") {
        if path.is_some() {
            fail("--metrics and --no-metrics are mutually exclusive".to_string());
        }
        return None;
    }
    path.map(|path| Metrics {
        path,
        registry: xpl_obs::Registry::new(),
    })
}

impl Metrics {
    fn registry(&self) -> Option<&std::sync::Arc<xpl_obs::Registry>> {
        Some(&self.registry)
    }

    /// Snapshot the registry into the requested file. Written even when
    /// the run's oracle fails, so a red CI job still uploads metrics.
    fn finish(&self) {
        let snap = self.registry.snapshot();
        std::fs::File::create(&self.path)
            .and_then(|mut f| f.write_all(snap.render_json().as_bytes()))
            .expect("write metrics JSON");
        eprintln!(
            "[repro] wrote {} (det fingerprint {})",
            self.path,
            snap.det_fingerprint()
        );
    }
}

fn run_churn_cmd(args: &[String]) -> ! {
    let seed: u64 = parse_u64_flag(args, "--seed").unwrap_or(0xDEADBEEF);
    let ops: usize = parse_nonzero_flag(args, "--ops").unwrap_or(500) as usize;
    let mut cfg = match parse_scale(args) {
        "standard" => churn::ChurnConfig::standard(seed, ops),
        _ => churn::ChurnConfig::small(seed, ops),
    };
    if let Some(tier) = parse_codec_tier(args) {
        cfg = cfg.with_tier(tier);
    }
    let durable = args.iter().any(|a| a == "--durable");
    if durable {
        let mut dcfg = churn::DurableCfg::default();
        if let Some(k) = parse_u64_flag(args, "--crashes") {
            if k as usize > ops {
                fail(format!(
                    "--crashes {k} exceeds the trace's {ops} ops (each crash needs an op to land after)"
                ));
            }
            dcfg.crashes = k as usize;
        }
        if let Some(s) = parse_u64_flag(args, "--crash-seed") {
            dcfg.crash_seed = s;
        }
        cfg = cfg.with_durable(dcfg);
    }
    let metrics = parse_metrics(args);
    let registry = metrics.as_ref().and_then(Metrics::registry);
    let threads = parse_threads(args);
    let report = match threads {
        Some(n) => {
            eprintln!(
                "[repro] churn replay: seed={seed:#x} ops={ops} threads={n} durable={durable}"
            );
            churn::run_churn_threads_with(&cfg, n, registry)
        }
        None => {
            eprintln!("[repro] churn replay: seed={seed:#x} ops={ops} durable={durable}");
            churn::run_churn_with(&cfg, registry)
        }
    };
    println!("CHURN: {} ops replayed against 5 stores", report.ops);
    println!(
        "  mix: {} publish / {} retrieve (+{} ranged) / {} upgrade / {} delete / \
         {} burst ({} retrievals)",
        report.publishes,
        report.retrieves,
        report.range_retrieves,
        report.upgrades,
        report.deletes,
        report.bursts,
        report.burst_retrieves
    );
    println!("  oracle checks: {}", report.oracle_checks);
    println!(
        "  codec tier: {} ({} maintenance sweeps)",
        report.tier, report.maintains
    );
    println!("  trace sha256:  {}", report.trace_sha256);
    for s in &report.stores {
        println!(
            "  {:<14} {:>12} bytes, {:>4} live images, {:>10.1} sim-s",
            s.store, s.final_repo_bytes, s.final_images, s.sim_seconds
        );
    }
    if let Some(durable) = &report.durable {
        println!(
            "  durable: {} crash-recovery pairs injected",
            report.crashes
        );
        for d in durable {
            println!(
                "  {:<14} {} recoveries, {} WAL records replayed, {} torn tails, \
                 {} WAL appends, {} checkpoints",
                d.store,
                d.recoveries,
                d.wal_records_replayed,
                d.torn_tails,
                d.wal_appends,
                d.checkpoints
            );
        }
    }
    if let Some(path) = flag_value(args, "--json") {
        let json = serde_json::to_string_pretty(&report).expect("serialize churn report");
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .expect("write churn JSON");
        eprintln!("[repro] wrote {path}");
    }
    if let Some(m) = &metrics {
        m.finish();
    }
    if report.violations.is_empty() {
        println!("  oracle: PASS");
        std::process::exit(0);
    }
    eprintln!("  oracle: {} VIOLATIONS", report.violations.len());
    for v in report.violations.iter().take(20) {
        eprintln!("    {v}");
    }
    std::process::exit(1);
}

/// `repro audit` — the deep integrity audit (`check_integrity_deep`:
/// refcount coherence + every stored blob re-hashed) across all five
/// stores, after a publish + delete workload. Exits 1 if any store
/// fails the audit.
fn run_audit_cmd(args: &[String]) -> ! {
    use xpl_store::ImageStore;
    let world = if flag_value(args, "--world").as_deref() == Some("small") {
        eprintln!("[repro] audit over the small world…");
        World::small()
    } else {
        eprintln!("[repro] audit over the standard world…");
        World::standard()
    };
    let names = world.image_names();
    let stores: Vec<Box<dyn ImageStore>> = churn::five_stores(|| world.env());
    let vmis: Vec<_> = names.iter().map(|n| world.build_image(n)).collect();
    for store in &stores {
        for vmi in &vmis {
            store.publish(&world.catalog, vmi).unwrap_or_else(|e| {
                eprintln!("audit setup: {} publish {}: {e}", store.name(), vmi.name);
                std::process::exit(2);
            });
        }
        // Exercise the release paths too: every third image is deleted.
        for name in names.iter().step_by(3) {
            store.delete(name).unwrap_or_else(|e| {
                eprintln!("audit setup: {} delete {name}: {e}", store.name());
                std::process::exit(2);
            });
        }
    }
    println!(
        "AUDIT: deep integrity across {} stores ({} images published, {} deleted)",
        stores.len(),
        names.len(),
        names.iter().step_by(3).count()
    );
    let mut failures = 0usize;
    for store in &stores {
        match store.check_integrity_deep() {
            Ok(()) => println!("  {:<14} PASS", store.name()),
            Err(e) => {
                failures += 1;
                println!("  {:<14} FAIL: {e}", store.name());
            }
        }
    }
    if failures > 0 {
        eprintln!("AUDIT: {failures} store(s) failed the deep audit");
        std::process::exit(1);
    }
    println!("AUDIT: PASS");
    std::process::exit(0);
}

/// `repro serve` — the multi-tenant registry serving benchmark (see
/// `xpl_bench::serve` for the three-phase pipeline).
fn run_serve_cmd(args: &[String]) -> ! {
    use xpl_bench::{ServeRunConfig, StoreKind};
    let seed: u64 = parse_u64_flag(args, "--seed").unwrap_or(0xC0FFEE);
    let mut cfg = match parse_scale(args) {
        "standard" => ServeRunConfig::standard(seed),
        _ => ServeRunConfig::small(seed),
    };
    if let Some(t) = parse_nonzero_flag(args, "--tenants") {
        cfg.tenants = t as u32;
    }
    if let Some(r) = parse_nonzero_flag(args, "--requests") {
        cfg.requests = r as usize;
    }
    if let Some(s) = parse_nonzero_flag(args, "--servers") {
        cfg.servers = s as usize;
    }
    if let Some(q) = parse_nonzero_flag(args, "--queue-depth") {
        cfg.queue_depth = q as usize;
    }
    if let Some(s) = flag_value(args, "--store") {
        cfg.store = StoreKind::parse(&s).unwrap_or_else(|| {
            fail(format!(
                "unknown --store {s:?} (expected qcow2, gzip, mirage, hemera, or expelliarmus)"
            ))
        });
    }
    if args.iter().any(|a| a == "--no-coalesce") {
        cfg.coalesce = false;
    }
    if let Some(tier) = parse_codec_tier(args) {
        cfg.tier = tier;
    }
    let metrics = parse_metrics(args);
    let registry = metrics.as_ref().and_then(Metrics::registry);

    // `--net`: serve the schedule over the wire layer instead of the
    // virtual-time registry simulation (see `xpl_bench::serve_net`).
    if args.iter().any(|a| a == "--net") || flag_value(args, "--net-faults").is_some() {
        use xpl_bench::{NetServeConfig, NetTransportKind};
        let mut net = NetServeConfig::default();
        if let Some(rate) = parse_u64_flag(args, "--net-faults") {
            if rate > 256 {
                fail(format!(
                    "--net-faults {rate} exceeds the 256/256 maximum rate"
                ));
            }
            net.fault_rate = rate as u32;
        }
        // Fault injection needs the deterministic in-memory transport;
        // clean runs exercise real TCP on a loopback socket.
        net.transport = if net.fault_rate > 0 {
            NetTransportKind::Mem
        } else {
            NetTransportKind::Tcp
        };
        if let Some(s) = parse_u64_flag(args, "--net-seed") {
            net.net_seed = s;
        }
        if let Some(c) = parse_nonzero_flag(args, "--conns") {
            net.conns_per_tenant = c as usize;
        }
        eprintln!(
            "[repro] serve --net: seed={seed:#x} scale={} tenants={} requests={} store={:?} \
             transport={:?} faults={}/256",
            cfg.scale_name, cfg.tenants, cfg.requests, cfg.store, net.transport, net.fault_rate
        );
        let report = xpl_bench::run_serve_net_with(&cfg, &net, registry);
        print!("{}", xpl_bench::serve_net::render_net(&report));
        if let Some(path) = flag_value(args, "--json") {
            let json = serde_json::to_string_pretty(&report).expect("serialize net serve report");
            std::fs::File::create(&path)
                .and_then(|mut f| f.write_all(json.as_bytes()))
                .expect("write net serve JSON");
            eprintln!("[repro] wrote {path}");
        }
        if let Some(m) = &metrics {
            m.finish();
        }
        if report.violations.is_empty() {
            println!("  oracle: PASS");
            std::process::exit(0);
        }
        eprintln!("  oracle: {} VIOLATIONS", report.violations.len());
        for v in report.violations.iter().take(20) {
            eprintln!("    {v}");
        }
        std::process::exit(1);
    }

    let threads = parse_threads(args);
    eprintln!(
        "[repro] serve: seed={seed:#x} scale={} tenants={} requests={} store={:?}",
        cfg.scale_name, cfg.tenants, cfg.requests, cfg.store
    );
    let run = || xpl_bench::run_serve_with(&cfg, registry);
    let report = match threads {
        Some(n) => rayon::with_num_threads(n, run),
        None => run(),
    };
    print!("{}", xpl_bench::serve::render(&report));
    if let Some(path) = flag_value(args, "--json") {
        let json = serde_json::to_string_pretty(&report).expect("serialize serve report");
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .expect("write serve JSON");
        eprintln!("[repro] wrote {path}");
    }
    if let Some(m) = &metrics {
        m.finish();
    }
    if report.violations.is_empty() {
        println!("  oracle: PASS");
        std::process::exit(0);
    }
    eprintln!("  oracle: {} VIOLATIONS", report.violations.len());
    for v in report.violations.iter().take(20) {
        eprintln!("    {v}");
    }
    std::process::exit(1);
}

fn run_bench_cmd(args: &[String]) -> ! {
    if let Some(path) = flag_value(args, "--check") {
        let json = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        match xpl_bench::microbench::check_report_json(&json) {
            Ok(()) => {
                println!("BENCH check: {path} OK");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("BENCH check: {path} INVALID: {e}");
                std::process::exit(1);
            }
        }
    }
    let quick = args.iter().any(|a| a == "--quick");
    // The blocked section's container codec; the codec-tier comparison
    // measures both regardless.
    let blocked_codec = match flag_value(args, "--codec").as_deref() {
        None | Some("deflate") => xpl_compress::InnerCodec::Deflate,
        Some("lz4") => xpl_compress::InnerCodec::Lz4,
        Some(other) => fail(format!(
            "invalid --codec value {other:?} (expected deflate or lz4)"
        )),
    };
    eprintln!(
        "[repro] running microbenchmarks ({} mode, {} container)…",
        if quick { "quick" } else { "full" },
        blocked_codec.name()
    );
    let metrics = parse_metrics(args);
    let t0 = std::time::Instant::now();
    let report = xpl_bench::run_microbench_codec_with(
        quick,
        blocked_codec,
        metrics.as_ref().and_then(Metrics::registry),
    );
    print!("{}", xpl_bench::microbench::render(&report));
    if let Some(path) = flag_value(args, "--json") {
        let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .expect("write bench JSON");
        eprintln!("[repro] wrote {path}");
    }
    if let Some(m) = &metrics {
        m.finish();
    }
    eprintln!("[repro] bench done in {:.1}s", t0.elapsed().as_secs_f64());
    std::process::exit(0);
}

/// `repro profile` — the span-tree profile of the publish pipeline
/// (see `xpl_bench::profile`). Exits 1 if the span accounting
/// invariant (`sum(phases) <= publish <= wall`) fails.
fn run_profile_cmd(args: &[String]) -> ! {
    use xpl_bench::{render_profile, run_profile, ProfileConfig};
    let mut cfg = ProfileConfig::default();
    if let Some(n) = parse_nonzero_flag(args, "--images") {
        cfg.images = n as usize;
    }
    if let Some(s) = parse_u64_flag(args, "--seed") {
        cfg.seed = s;
    }
    eprintln!(
        "[repro] profiling the publish pipeline: images={} seed={:#x}",
        cfg.images, cfg.seed
    );
    let report = run_profile(&cfg);
    print!("{}", render_profile(&report));
    if let Some(path) = flag_value(args, "--json") {
        let json = serde_json::to_string_pretty(&report).expect("serialize profile report");
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .expect("write profile JSON");
        eprintln!("[repro] wrote {path}");
    }
    if !report.spans_nest {
        eprintln!("PROFILE: span accounting violated (sum(phases) <= publish <= wall failed)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `repro ablate-codec` — the storage-codec trade-off table. Needs no
/// world: the sweep runs over one seeded synthetic payload.
fn run_ablate_codec_cmd(args: &[String]) -> ! {
    let mib = parse_nonzero_flag(args, "--payload-mib").unwrap_or(8) as usize;
    eprintln!("[repro] codec ablation over a {mib} MiB seeded payload…");
    let rows = ablations::codec_ablation_sweep(mib * 1024 * 1024, 0.2);
    print_codec_ablation(&rows);
    if let Some(path) = flag_value(args, "--json") {
        let json = serde_json::to_string_pretty(&rows).expect("serialize codec ablation");
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .expect("write codec ablation JSON");
        eprintln!("[repro] wrote {path}");
    }
    std::process::exit(0);
}

fn print_codec_ablation(rows: &[ablations::CodecAblationRow]) {
    println!("CODEC ABLATION: storage tiers over one seeded payload");
    println!(
        "{:<16} {:>12} {:>8} {:>16} {:>18} {:>14}",
        "codec", "bytes", "ratio", "compress MiB/s", "decompress MiB/s", "range MiB/s"
    );
    for r in rows {
        println!(
            "{:<16} {:>12} {:>8.3} {:>16.1} {:>18.1} {:>14.1}",
            r.codec,
            r.encoded_bytes,
            r.ratio,
            r.compress_mib_per_s,
            r.decompress_mib_per_s,
            r.range_read_mib_per_s
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    if cmd == "churn" {
        // The churn replay generates its own scaled world.
        run_churn_cmd(&args);
    }
    if cmd == "bench" {
        // Microbenchmarks build their own inputs.
        run_bench_cmd(&args);
    }
    if cmd == "ablate-codec" {
        // The codec sweep builds its own payload.
        run_ablate_codec_cmd(&args);
    }
    if cmd == "serve" {
        // The serving benchmark generates its own scaled world.
        run_serve_cmd(&args);
    }
    if cmd == "profile" {
        // The profile generates its own scaled world.
        run_profile_cmd(&args);
    }
    if cmd == "audit" {
        // The audit builds its own world (honoring --world small).
        run_audit_cmd(&args);
    }
    const KNOWN: [&str; 10] = [
        "table2",
        "fig3a",
        "fig3b",
        "fig3c",
        "fig4a",
        "fig4b",
        "fig5a",
        "fig5b",
        "ablations",
        "all",
    ];
    if !KNOWN.contains(&cmd) {
        eprintln!("unknown experiment: {cmd}");
        eprintln!(
            "usage: repro [table2|fig3a|fig3b|fig3c|fig4a|fig4b|fig5a|fig5b|ablations|ablate-codec|churn|serve|profile|bench|audit|all]"
        );
        std::process::exit(2);
    }
    let t0 = std::time::Instant::now();
    let world = if flag_value(&args, "--world").as_deref() == Some("small") {
        eprintln!("[repro] building small world (test scale)…");
        World::small()
    } else {
        eprintln!("[repro] building standard world (catalog + base template)…");
        World::standard()
    };
    eprintln!("[repro] world ready in {:.1}s", t0.elapsed().as_secs_f64());

    // Pin the worker pool for every experiment launched from this thread
    // (multi-store sweeps fan stores out across it; results are
    // byte-identical at any size).
    let run = || run_experiment(cmd, &args, &world);
    match parse_threads(&args) {
        Some(n) => rayon::with_num_threads(n, run),
        None => run(),
    }
    eprintln!("[repro] done in {:.1}s", t0.elapsed().as_secs_f64());
}

fn run_experiment(cmd: &str, args: &[String], world: &World) {
    match cmd {
        "table2" => {
            let r = table2(world);
            println!("{}", render::render_table2(&r));
        }
        "fig3a" => {
            let r = fig3_sizes(world, Fig3Scenario::FourImages);
            println!("{}", render::render_fig3("FIGURE 3a", &r));
        }
        "fig3b" => {
            let r = fig3_sizes(world, Fig3Scenario::Nineteen);
            println!("{}", render::render_fig3("FIGURE 3b", &r));
        }
        "fig3c" => {
            let n: u32 = positionals(args)
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(40);
            let r = fig3_sizes(world, Fig3Scenario::IdeBuilds(n));
            println!("{}", render::render_fig3("FIGURE 3c", &r));
        }
        "fig4a" => {
            let r = fig4a_publish(world);
            println!("{}", render::render_publish("FIGURE 4a", &r));
        }
        "fig4b" => {
            let r = fig4b_publish(world);
            println!("{}", render::render_publish("FIGURE 4b", &r));
        }
        "fig5a" => {
            let r = fig5a_breakdown(world);
            println!("{}", render::render_fig5a(&r));
        }
        "fig5b" => {
            let r = fig5b_retrieval(world);
            println!("{}", render::render_fig5b(&r));
        }
        "ablations" => {
            run_ablations(world);
        }
        "all" => {
            let pos = positionals(args);
            let dir = pos.get(1).map(String::as_str).unwrap_or("results");
            std::fs::create_dir_all(dir).expect("create results dir");
            let save = |name: &str, json: String| {
                let path = format!("{dir}/{name}.json");
                std::fs::File::create(&path)
                    .and_then(|mut f| f.write_all(json.as_bytes()))
                    .expect("write results");
                eprintln!("[repro] wrote {path}");
            };

            let r = table2(world);
            println!("{}", render::render_table2(&r));
            save("table2", serde_json::to_string_pretty(&r).unwrap());

            let r = fig3_sizes(world, Fig3Scenario::FourImages);
            println!("{}", render::render_fig3("FIGURE 3a", &r));
            save("fig3a", serde_json::to_string_pretty(&r).unwrap());

            let r = fig3_sizes(world, Fig3Scenario::Nineteen);
            println!("{}", render::render_fig3("FIGURE 3b", &r));
            save("fig3b", serde_json::to_string_pretty(&r).unwrap());

            let r = fig3_sizes(world, Fig3Scenario::IdeBuilds(40));
            println!("{}", render::render_fig3("FIGURE 3c", &r));
            save("fig3c", serde_json::to_string_pretty(&r).unwrap());

            let r = fig4a_publish(world);
            println!("{}", render::render_publish("FIGURE 4a", &r));
            save("fig4a", serde_json::to_string_pretty(&r).unwrap());

            let r = fig4b_publish(world);
            println!("{}", render::render_publish("FIGURE 4b", &r));
            save("fig4b", serde_json::to_string_pretty(&r).unwrap());

            let r = fig5a_breakdown(world);
            println!("{}", render::render_fig5a(&r));
            save("fig5a", serde_json::to_string_pretty(&r).unwrap());

            let r = fig5b_retrieval(world);
            println!("{}", render::render_fig5b(&r));
            save("fig5b", serde_json::to_string_pretty(&r).unwrap());

            run_ablations(world);
        }
        _ => unreachable!("command validated against KNOWN before the world is built"),
    }
}

fn run_ablations(world: &World) {
    println!("ABLATION: chunk-size sweep (4-image workload)");
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>12}",
        "block (KB)", "fixed dedup×", "cdc dedup×", "fixed GB", "cdc GB"
    );
    let rows = ablations::chunk_size_sweep(
        world,
        &["Mini", "Base", "Desktop", "IDE"],
        &[64, 128, 256, 512, 1024],
    );
    for r in &rows {
        println!(
            "{:<14} {:>14.2} {:>14.2} {:>12.2} {:>12.2}",
            r.block_nominal_kb,
            r.fixed_dedup_factor,
            r.cdc_dedup_factor,
            r.fixed_repo_gb,
            r.cdc_repo_gb
        );
    }
    println!();
    // The codec-tier trade-off, small shape (`repro ablate-codec` runs
    // the full-size sweep standalone).
    print_codec_ablation(&ablations::codec_ablation_sweep(1024 * 1024, 0.05));
    println!();
    println!("ABLATION: master graph vs pairwise similarity (real CPU time)");
    println!(
        "{:<14} {:>14} {:>14} {:>10}",
        "stored", "pairwise ms", "master ms", "speedup"
    );
    for n in [5usize, 10, 19] {
        let s = ablations::master_graph_speedup(world, n);
        println!(
            "{:<14} {:>14.2} {:>14.2} {:>10.1}",
            s.stored_images, s.pairwise_ms, s.master_ms, s.speedup
        );
    }
    println!();
}
