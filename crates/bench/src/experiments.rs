//! Experiment runners for every table and figure.

use serde::Serialize;
use xpl_baselines::{GzipStore, HemeraStore, MirageStore, QcowStore};
use xpl_core::{ExpelliarmusRepo, PublishMode};
use xpl_store::{ImageStore, RetrieveRequest};
use xpl_util::bytesize::nominal_gb;
use xpl_workloads::World;

/// One measured Table II row.
#[derive(Clone, Debug, Serialize)]
pub struct MeasuredRow {
    pub name: String,
    pub mounted_gb: f64,
    pub files: u64,
    pub sim_g: f64,
    pub publish_s: f64,
    pub retrieval_s: f64,
}

/// Full Table II result.
#[derive(Clone, Debug, Serialize)]
pub struct Table2Result {
    pub rows: Vec<MeasuredRow>,
}

/// Reproduce Table II: publish the 19 images in order into Expelliarmus,
/// then retrieve each; report characteristics and times.
pub fn table2(world: &World) -> Table2Result {
    let mut repo = ExpelliarmusRepo::new(world.env());
    let mut rows = Vec::new();
    let mut retrieve_reqs = Vec::new();
    for name in world.image_names() {
        let vmi = world.build_image(name);
        let report = repo.publish(&world.catalog, &vmi).expect("publish");
        retrieve_reqs.push(RetrieveRequest::for_image(&vmi, &world.catalog));
        rows.push(MeasuredRow {
            name: name.to_string(),
            mounted_gb: nominal_gb(vmi.mounted_bytes()),
            files: vmi.file_count() as u64,
            sim_g: report.similarity,
            publish_s: report.duration.as_secs_f64(),
            retrieval_s: 0.0,
        });
    }
    for (row, req) in rows.iter_mut().zip(&retrieve_reqs) {
        let (_vmi, report) = repo.retrieve(&world.catalog, req).expect("retrieve");
        row.retrieval_s = report.duration.as_secs_f64();
    }
    Table2Result { rows }
}

/// Which Figure 3 panel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig3Scenario {
    /// 3a: Mini, Base, Desktop, IDE.
    FourImages,
    /// 3b: all 19 Table II images.
    Nineteen,
    /// 3c: 40 successive IDE builds.
    IdeBuilds(u32),
}

/// Cumulative repository size per store after each upload.
#[derive(Clone, Debug, Serialize)]
pub struct Fig3Result {
    pub images: Vec<String>,
    /// store name → cumulative nominal GB after each image.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Reproduce Figure 3 (a/b/c): cumulative repository growth across the
/// five encoding schemes.
pub fn fig3_sizes(world: &World, scenario: Fig3Scenario) -> Fig3Result {
    let names: Vec<String> = match scenario {
        Fig3Scenario::FourImages => ["Mini", "Base", "Desktop", "IDE"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        Fig3Scenario::Nineteen => world.image_names().iter().map(|s| s.to_string()).collect(),
        Fig3Scenario::IdeBuilds(n) => (0..n).map(|k| format!("IDE-build-{k:02}")).collect(),
    };

    let mut qcow = QcowStore::new(world.env());
    let mut gzip = GzipStore::new(world.env());
    let mut mirage = MirageStore::new(world.env());
    let mut hemera = HemeraStore::new(world.env());
    let mut xpl = ExpelliarmusRepo::new(world.env());

    let mut curves: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for name in &names {
        let vmi = match scenario {
            Fig3Scenario::IdeBuilds(_) => {
                let k: u32 = name.rsplit('-').next().unwrap().parse().unwrap();
                world.ide_build(k)
            }
            _ => world.build_image(name),
        };
        qcow.publish(&world.catalog, &vmi).expect("qcow publish");
        gzip.publish(&world.catalog, &vmi).expect("gzip publish");
        mirage
            .publish(&world.catalog, &vmi)
            .expect("mirage publish");
        hemera
            .publish(&world.catalog, &vmi)
            .expect("hemera publish");
        xpl.publish(&world.catalog, &vmi).expect("xpl publish");
        curves[0].push(nominal_gb(qcow.repo_bytes()));
        curves[1].push(nominal_gb(gzip.repo_bytes()));
        curves[2].push(nominal_gb(mirage.repo_bytes()));
        curves[3].push(nominal_gb(hemera.repo_bytes()));
        curves[4].push(nominal_gb(xpl.repo_bytes()));
    }
    Fig3Result {
        images: names,
        series: vec![
            ("Qcow2".into(), curves[0].clone()),
            ("Qcow2+Gzip".into(), curves[1].clone()),
            ("Mirage".into(), curves[2].clone()),
            ("Hemera".into(), curves[3].clone()),
            ("Expelliarmus".into(), curves[4].clone()),
        ],
    }
}

/// Publish-time series (Figures 4a/4b).
#[derive(Clone, Debug, Serialize)]
pub struct PublishTimesResult {
    pub images: Vec<String>,
    pub series: Vec<(String, Vec<f64>)>,
}

/// Figure 4a: publishing time of the four study images for Expelliarmus,
/// Mirage and Hemera.
pub fn fig4a_publish(world: &World) -> PublishTimesResult {
    publish_times(world, &["Mini", "Base", "Desktop", "IDE"], false)
}

/// Figure 4b: publishing time of all 19 images, including the "Semantic"
/// (decomposition-without-similarity) variant.
pub fn fig4b_publish(world: &World) -> PublishTimesResult {
    let names: Vec<&str> = world.image_names();
    publish_times(world, &names, true)
}

fn publish_times(world: &World, names: &[&str], with_semantic: bool) -> PublishTimesResult {
    let mut xpl = ExpelliarmusRepo::new(world.env());
    let mut sem = with_semantic
        .then(|| ExpelliarmusRepo::with_mode(world.env(), PublishMode::SemanticDecomposition));
    let mut mirage = MirageStore::new(world.env());
    let mut hemera = HemeraStore::new(world.env());

    let mut xpl_s = Vec::new();
    let mut sem_s = Vec::new();
    let mut mir_s = Vec::new();
    let mut hem_s = Vec::new();
    for name in names {
        let vmi = world.build_image(name);
        xpl_s.push(
            xpl.publish(&world.catalog, &vmi)
                .expect("xpl")
                .duration
                .as_secs_f64(),
        );
        if let Some(sem) = sem.as_mut() {
            sem_s.push(
                sem.publish(&world.catalog, &vmi)
                    .expect("sem")
                    .duration
                    .as_secs_f64(),
            );
        }
        mir_s.push(
            mirage
                .publish(&world.catalog, &vmi)
                .expect("mirage")
                .duration
                .as_secs_f64(),
        );
        hem_s.push(
            hemera
                .publish(&world.catalog, &vmi)
                .expect("hemera")
                .duration
                .as_secs_f64(),
        );
    }
    let mut series = vec![("Expelliarmus".to_string(), xpl_s)];
    if with_semantic {
        series.push(("Semantic".to_string(), sem_s));
    }
    series.push(("Mirage".to_string(), mir_s));
    series.push(("Hemera".to_string(), hem_s));
    PublishTimesResult {
        images: names.iter().map(|s| s.to_string()).collect(),
        series,
    }
}

/// Figure 5a: Expelliarmus retrieval time decomposed into its four phases.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5aResult {
    pub images: Vec<String>,
    /// phase → seconds per image.
    pub phases: Vec<(String, Vec<f64>)>,
}

pub fn fig5a_breakdown(world: &World) -> Fig5aResult {
    let mut repo = ExpelliarmusRepo::new(world.env());
    let mut reqs = Vec::new();
    for name in world.image_names() {
        let vmi = world.build_image(name);
        repo.publish(&world.catalog, &vmi).expect("publish");
        reqs.push((
            name.to_string(),
            RetrieveRequest::for_image(&vmi, &world.catalog),
        ));
    }
    let phase_names = xpl_core::retrieve::PHASES;
    let mut phases: Vec<(String, Vec<f64>)> = phase_names
        .iter()
        .map(|p| (p.to_string(), Vec::new()))
        .collect();
    let mut images = Vec::new();
    for (name, req) in reqs {
        let (_vmi, report) = repo.retrieve(&world.catalog, &req).expect("retrieve");
        for (i, p) in phase_names.iter().enumerate() {
            phases[i].1.push(report.breakdown.get(p).as_secs_f64());
        }
        images.push(name);
    }
    Fig5aResult { images, phases }
}

/// Figure 5b: retrieval-time comparison across Mirage, Hemera and
/// Expelliarmus over the 19-image repository.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5bResult {
    pub images: Vec<String>,
    pub series: Vec<(String, Vec<f64>)>,
}

pub fn fig5b_retrieval(world: &World) -> Fig5bResult {
    let mut mirage = MirageStore::new(world.env());
    let mut hemera = HemeraStore::new(world.env());
    let mut xpl = ExpelliarmusRepo::new(world.env());
    let mut reqs = Vec::new();
    for name in world.image_names() {
        let vmi = world.build_image(name);
        mirage.publish(&world.catalog, &vmi).expect("mirage");
        hemera.publish(&world.catalog, &vmi).expect("hemera");
        xpl.publish(&world.catalog, &vmi).expect("xpl");
        reqs.push((
            name.to_string(),
            RetrieveRequest::for_image(&vmi, &world.catalog),
        ));
    }
    let mut images = Vec::new();
    let mut mir_s = Vec::new();
    let mut hem_s = Vec::new();
    let mut xpl_s = Vec::new();
    for (name, req) in reqs {
        mir_s.push(
            mirage
                .retrieve(&world.catalog, &req)
                .expect("mirage")
                .1
                .duration
                .as_secs_f64(),
        );
        hem_s.push(
            hemera
                .retrieve(&world.catalog, &req)
                .expect("hemera")
                .1
                .duration
                .as_secs_f64(),
        );
        xpl_s.push(
            xpl.retrieve(&world.catalog, &req)
                .expect("xpl")
                .1
                .duration
                .as_secs_f64(),
        );
        images.push(name);
    }
    Fig5bResult {
        images,
        series: vec![
            ("Mirage".into(), mir_s),
            ("Hemera".into(), hem_s),
            ("Expelliarmus".into(), xpl_s),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small-world smoke tests; the standard-scale assertions live in the
    // integration suite and the repro binary.
    #[test]
    fn fig3_small_runs_and_orders_stores() {
        let w = World::small();
        let r = fig3_sizes(&w, Fig3Scenario::Nineteen);
        assert_eq!(r.series.len(), 5);
        let last = |name: &str| {
            r.series
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, v)| v.last().copied())
                .unwrap()
        };
        assert!(
            last("Expelliarmus") < last("Qcow2"),
            "semantic must beat raw"
        );
        assert!(last("Mirage") < last("Qcow2"));
    }
}
