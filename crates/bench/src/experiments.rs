//! Experiment runners for every table and figure.
//!
//! Multi-store sweeps (Figures 3, 4, 5b) fan the stores out across the
//! worker pool: each store owns its simulated environment and publishes
//! the same prebuilt image sequence in order, so the per-store series —
//! and the JSON written by `repro all` — are byte-identical to a
//! sequential run regardless of pool size.

use rayon::prelude::*;
use serde::Serialize;
use xpl_baselines::{GzipStore, HemeraStore, MirageStore, QcowStore};
use xpl_core::{ExpelliarmusRepo, PublishMode};
use xpl_guestfs::Vmi;
use xpl_store::{ImageStore, RetrieveRequest};
use xpl_util::bytesize::nominal_gb;
use xpl_workloads::World;

/// One measured Table II row.
#[derive(Clone, Debug, Serialize)]
pub struct MeasuredRow {
    pub name: String,
    pub mounted_gb: f64,
    pub files: u64,
    pub sim_g: f64,
    pub publish_s: f64,
    pub retrieval_s: f64,
}

/// Full Table II result.
#[derive(Clone, Debug, Serialize)]
pub struct Table2Result {
    pub rows: Vec<MeasuredRow>,
}

/// Reproduce Table II: publish the 19 images in order into Expelliarmus,
/// then retrieve each; report characteristics and times.
pub fn table2(world: &World) -> Table2Result {
    let repo = ExpelliarmusRepo::new(world.env());
    let mut rows = Vec::new();
    let mut retrieve_reqs = Vec::new();
    for name in world.image_names() {
        let vmi = world.build_image(name);
        let report = repo.publish(&world.catalog, &vmi).expect("publish");
        retrieve_reqs.push(RetrieveRequest::for_image(&vmi, &world.catalog));
        rows.push(MeasuredRow {
            name: name.to_string(),
            mounted_gb: nominal_gb(vmi.mounted_bytes()),
            files: vmi.file_count() as u64,
            sim_g: report.similarity,
            publish_s: report.duration.as_secs_f64(),
            retrieval_s: 0.0,
        });
    }
    for (row, req) in rows.iter_mut().zip(&retrieve_reqs) {
        let (_vmi, report) = repo.retrieve(&world.catalog, req).expect("retrieve");
        row.retrieval_s = report.duration.as_secs_f64();
    }
    Table2Result { rows }
}

/// Which Figure 3 panel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig3Scenario {
    /// 3a: Mini, Base, Desktop, IDE.
    FourImages,
    /// 3b: all 19 Table II images.
    Nineteen,
    /// 3c: 40 successive IDE builds.
    IdeBuilds(u32),
}

/// Cumulative repository size per store after each upload.
#[derive(Clone, Debug, Serialize)]
pub struct Fig3Result {
    pub images: Vec<String>,
    /// store name → cumulative nominal GB after each image.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Reproduce Figure 3 (a/b/c): cumulative repository growth across the
/// five encoding schemes, one pool worker per store.
pub fn fig3_sizes(world: &World, scenario: Fig3Scenario) -> Fig3Result {
    let names: Vec<String> = match scenario {
        Fig3Scenario::FourImages => ["Mini", "Base", "Desktop", "IDE"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        Fig3Scenario::Nineteen => world.image_names().iter().map(|s| s.to_string()).collect(),
        Fig3Scenario::IdeBuilds(n) => (0..n).map(|k| format!("IDE-build-{k:02}")).collect(),
    };
    let vmis: Vec<Vmi> = names
        .iter()
        .map(|name| match scenario {
            Fig3Scenario::IdeBuilds(_) => {
                let k: u32 = name.rsplit('-').next().unwrap().parse().unwrap();
                world.ide_build(k)
            }
            _ => world.build_image(name),
        })
        .collect();

    let stores: Vec<Box<dyn ImageStore>> = vec![
        Box::new(QcowStore::new(world.env())),
        Box::new(GzipStore::new(world.env())),
        Box::new(MirageStore::new(world.env())),
        Box::new(HemeraStore::new(world.env())),
        Box::new(ExpelliarmusRepo::new(world.env())),
    ];
    let series: Vec<(String, Vec<f64>)> = stores
        .into_par_iter()
        .map(|store| {
            let mut curve = Vec::with_capacity(vmis.len());
            for vmi in &vmis {
                store.publish(&world.catalog, vmi).expect("publish");
                curve.push(nominal_gb(store.repo_bytes()));
            }
            (store.name().to_string(), curve)
        })
        .collect();
    Fig3Result {
        images: names,
        series,
    }
}

/// Publish-time series (Figures 4a/4b).
#[derive(Clone, Debug, Serialize)]
pub struct PublishTimesResult {
    pub images: Vec<String>,
    pub series: Vec<(String, Vec<f64>)>,
}

/// Figure 4a: publishing time of the four study images for Expelliarmus,
/// Mirage and Hemera.
pub fn fig4a_publish(world: &World) -> PublishTimesResult {
    publish_times(world, &["Mini", "Base", "Desktop", "IDE"], false)
}

/// Figure 4b: publishing time of all 19 images, including the "Semantic"
/// (decomposition-without-similarity) variant.
pub fn fig4b_publish(world: &World) -> PublishTimesResult {
    let names: Vec<&str> = world.image_names();
    publish_times(world, &names, true)
}

fn publish_times(world: &World, names: &[&str], with_semantic: bool) -> PublishTimesResult {
    let vmis: Vec<Vmi> = names.iter().map(|n| world.build_image(n)).collect();
    let mut stores: Vec<(String, Box<dyn ImageStore>)> = vec![(
        "Expelliarmus".to_string(),
        Box::new(ExpelliarmusRepo::new(world.env())),
    )];
    if with_semantic {
        stores.push((
            "Semantic".to_string(),
            Box::new(ExpelliarmusRepo::with_mode(
                world.env(),
                PublishMode::SemanticDecomposition,
            )),
        ));
    }
    stores.push((
        "Mirage".to_string(),
        Box::new(MirageStore::new(world.env())),
    ));
    stores.push((
        "Hemera".to_string(),
        Box::new(HemeraStore::new(world.env())),
    ));

    let series: Vec<(String, Vec<f64>)> = stores
        .into_par_iter()
        .map(|(label, store)| {
            let times: Vec<f64> = vmis
                .iter()
                .map(|vmi| {
                    store
                        .publish(&world.catalog, vmi)
                        .expect("publish")
                        .duration
                        .as_secs_f64()
                })
                .collect();
            (label, times)
        })
        .collect();
    PublishTimesResult {
        images: names.iter().map(|s| s.to_string()).collect(),
        series,
    }
}

/// Figure 5a: Expelliarmus retrieval time decomposed into its four phases.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5aResult {
    pub images: Vec<String>,
    /// phase → seconds per image.
    pub phases: Vec<(String, Vec<f64>)>,
}

pub fn fig5a_breakdown(world: &World) -> Fig5aResult {
    let repo = ExpelliarmusRepo::new(world.env());
    let mut reqs = Vec::new();
    for name in world.image_names() {
        let vmi = world.build_image(name);
        repo.publish(&world.catalog, &vmi).expect("publish");
        reqs.push((
            name.to_string(),
            RetrieveRequest::for_image(&vmi, &world.catalog),
        ));
    }
    let phase_names = xpl_core::retrieve::PHASES;
    let mut phases: Vec<(String, Vec<f64>)> = phase_names
        .iter()
        .map(|p| (p.to_string(), Vec::new()))
        .collect();
    let mut images = Vec::new();
    for (name, req) in reqs {
        let (_vmi, report) = repo.retrieve(&world.catalog, &req).expect("retrieve");
        for (i, p) in phase_names.iter().enumerate() {
            phases[i].1.push(report.breakdown.get(p).as_secs_f64());
        }
        images.push(name);
    }
    Fig5aResult { images, phases }
}

/// Figure 5b: retrieval-time comparison across Mirage, Hemera and
/// Expelliarmus over the 19-image repository.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5bResult {
    pub images: Vec<String>,
    pub series: Vec<(String, Vec<f64>)>,
}

pub fn fig5b_retrieval(world: &World) -> Fig5bResult {
    let built: Vec<(String, Vmi, RetrieveRequest)> = world
        .image_names()
        .iter()
        .map(|name| {
            let vmi = world.build_image(name);
            let req = RetrieveRequest::for_image(&vmi, &world.catalog);
            (name.to_string(), vmi, req)
        })
        .collect();

    let stores: Vec<Box<dyn ImageStore>> = vec![
        Box::new(MirageStore::new(world.env())),
        Box::new(HemeraStore::new(world.env())),
        Box::new(ExpelliarmusRepo::new(world.env())),
    ];
    let series: Vec<(String, Vec<f64>)> = stores
        .into_par_iter()
        .map(|store| {
            for (_, vmi, _) in &built {
                store.publish(&world.catalog, vmi).expect("publish");
            }
            let times: Vec<f64> = built
                .iter()
                .map(|(_, _, req)| {
                    store
                        .retrieve(&world.catalog, req)
                        .expect("retrieve")
                        .1
                        .duration
                        .as_secs_f64()
                })
                .collect();
            (store.name().to_string(), times)
        })
        .collect();
    Fig5bResult {
        images: built.into_iter().map(|(name, _, _)| name).collect(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small-world smoke tests; the standard-scale assertions live in the
    // integration suite and the repro binary.
    #[test]
    fn fig3_small_runs_and_orders_stores() {
        let w = World::small();
        let r = fig3_sizes(&w, Fig3Scenario::Nineteen);
        assert_eq!(r.series.len(), 5);
        let last = |name: &str| {
            r.series
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, v)| v.last().copied())
                .unwrap()
        };
        assert!(
            last("Expelliarmus") < last("Qcow2"),
            "semantic must beat raw"
        );
        assert!(last("Mirage") < last("Qcow2"));
    }

    #[test]
    fn parallel_sweep_matches_sequential_byte_for_byte() {
        // `repro all`'s acceptance pin: the five-store sweep must emit
        // identical JSON whether the pool runs one worker or many.
        let w = World::small();
        let par = rayon::with_num_threads(4, || fig3_sizes(&w, Fig3Scenario::Nineteen));
        let seq = rayon::with_num_threads(1, || fig3_sizes(&w, Fig3Scenario::Nineteen));
        assert_eq!(
            serde_json::to_string_pretty(&par).unwrap(),
            serde_json::to_string_pretty(&seq).unwrap()
        );
        let p4 = rayon::with_num_threads(4, || fig4b_publish(&w));
        let s4 = rayon::with_num_threads(1, || fig4b_publish(&w));
        assert_eq!(
            serde_json::to_string_pretty(&p4).unwrap(),
            serde_json::to_string_pretty(&s4).unwrap()
        );
    }
}
