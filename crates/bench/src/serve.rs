//! The registry serving benchmark — `repro serve`.
//!
//! Drives a real store through the `xpl-registry` front end under a
//! deterministic multi-tenant load ([`xpl_workloads::ServeSchedule`]):
//! Zipf-skewed retrieve-heavy traffic from thousands of simulated
//! clients, with admission control, coalescing, and deficit-round-robin
//! fairness. Three phases, chosen so every latency number is exact and
//! reproducible while throughput is still measured against the real
//! store:
//!
//! 1. **Cost memoization (sequential).** Publish the scaled world into
//!    the chosen store, then execute each *distinct* request key once,
//!    in first-appearance order, recording its simulated service time
//!    (the cost-ledger duration is exact only when retrievals are
//!    serialized — see `xpl-core`'s retrieve notes) and a payload
//!    digest (the differential oracle's fingerprint).
//! 2. **Virtual-time simulation.** Feed the schedule and the memoized
//!    costs to [`xpl_registry::run_registry`]. Arrival gaps are scaled
//!    to ~4/3 of the servers' aggregate service rate, so the registry
//!    runs saturated: queues form, coalescing triggers, fairness and
//!    admission control actually matter. p50/p99, the coalescing rate,
//!    fairness, and the request-log fingerprint all come from this
//!    phase — byte-identical at any thread count.
//! 3. **Wall-clock replay (parallel).** Execute the engine's store-hit
//!    schedule against the store on the worker pool, diffing every
//!    payload digest against phase 1 (any divergence is a violation).
//!    This yields the honest sustained-ops/s figure — and proves the
//!    coalesced schedule serves byte-identical payloads.

use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use xpl_baselines::{GzipStore, HemeraStore, MirageStore, QcowStore};
use xpl_core::ExpelliarmusRepo;
use xpl_registry::{
    run_registry_obs, RegObs, RegistryConfig, RegistryOutcome, RequestKey, ServeRequest,
    ServiceModel,
};
use xpl_simio::SimEnv;
use xpl_store::{semantic_fingerprint, ImageStore, RetrieveRequest, StoreError, TierPolicy};
use xpl_util::Sha256;
use xpl_workloads::{ScaleConfig, ScaledWorld, ServeConfig, ServeSchedule};

/// Which of the five stores sits behind the registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreKind {
    Qcow2,
    Gzip,
    Mirage,
    Hemera,
    Expelliarmus,
}

impl StoreKind {
    /// Parse a CLI name. Accepts the churn-report display names too.
    pub fn parse(s: &str) -> Option<StoreKind> {
        match s.to_ascii_lowercase().as_str() {
            "qcow2" => Some(StoreKind::Qcow2),
            "gzip" | "qcow2+gzip" => Some(StoreKind::Gzip),
            "mirage" => Some(StoreKind::Mirage),
            "hemera" => Some(StoreKind::Hemera),
            "expelliarmus" => Some(StoreKind::Expelliarmus),
            _ => None,
        }
    }

    pub fn make(self) -> Box<dyn ImageStore> {
        match self {
            StoreKind::Qcow2 => Box::new(QcowStore::new(SimEnv::testbed())),
            StoreKind::Gzip => Box::new(GzipStore::new(SimEnv::testbed())),
            StoreKind::Mirage => Box::new(MirageStore::new(SimEnv::testbed())),
            StoreKind::Hemera => Box::new(HemeraStore::new(SimEnv::testbed())),
            StoreKind::Expelliarmus => Box::new(ExpelliarmusRepo::new(SimEnv::testbed())),
        }
    }

    /// Like [`StoreKind::make`], but with the codec tier policy applied
    /// to every store that keeps compressed payloads (raw qcow2 has
    /// nothing to recompress).
    pub fn make_tiered(self, tier: TierPolicy) -> Box<dyn ImageStore> {
        match self {
            StoreKind::Qcow2 => Box::new(QcowStore::new(SimEnv::testbed())),
            StoreKind::Gzip => Box::new(GzipStore::new(SimEnv::testbed()).with_tier(tier)),
            StoreKind::Mirage => Box::new(MirageStore::new(SimEnv::testbed()).with_tier(tier)),
            StoreKind::Hemera => Box::new(HemeraStore::new(SimEnv::testbed()).with_tier(tier)),
            StoreKind::Expelliarmus => {
                Box::new(ExpelliarmusRepo::new(SimEnv::testbed()).with_tier(tier))
            }
        }
    }
}

/// One `repro serve` run's parameters.
#[derive(Clone, Debug)]
pub struct ServeRunConfig {
    pub seed: u64,
    pub scale: ScaleConfig,
    pub scale_name: String,
    pub tenants: u32,
    pub requests: usize,
    pub servers: usize,
    pub queue_depth: usize,
    pub coalesce: bool,
    pub store: StoreKind,
    /// Codec tier policy the backing store runs under (`--codec`).
    pub tier: TierPolicy,
}

impl ServeRunConfig {
    /// Small scale (32 images): the smoke/test shape.
    pub fn small(seed: u64) -> ServeRunConfig {
        ServeRunConfig {
            seed,
            scale: ScaleConfig::small(seed),
            scale_name: "small".into(),
            tenants: 4,
            requests: 400,
            servers: 4,
            queue_depth: 64,
            coalesce: true,
            store: StoreKind::Expelliarmus,
            tier: TierPolicy::mixed(),
        }
    }

    /// Standard scale (120 images): the CI/benchmark shape.
    pub fn standard(seed: u64) -> ServeRunConfig {
        ServeRunConfig {
            seed,
            scale: ScaleConfig::standard(seed),
            scale_name: "standard".into(),
            tenants: 8,
            requests: 2000,
            servers: 8,
            queue_depth: 128,
            coalesce: true,
            store: StoreKind::Expelliarmus,
            tier: TierPolicy::mixed(),
        }
    }
}

/// Per-tenant row of the serve report.
#[derive(Clone, Debug, Serialize)]
pub struct TenantRow {
    pub tenant: u32,
    pub submitted: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub served: u64,
    pub coalesced: u64,
    pub mean_sojourn_ms: f64,
}

/// The machine-readable `repro serve` report (BENCH schema v5's
/// serving metrics plus the determinism fingerprints).
///
/// Every field except `replay_wall_s` / `sustained_ops_per_s` (real
/// wall clock) is byte-identical across runs and thread counts.
#[derive(Clone, Debug, Serialize)]
pub struct ServeReport {
    pub schema_version: u32,
    pub seed: u64,
    pub scale: String,
    pub store: String,
    /// Codec tier policy the store ran under (`TierPolicy::describe`).
    pub tier: String,
    /// Blobs the post-memoization maintenance sweep re-encoded onto the
    /// hot codec (zero for raw stores or an all-cold policy).
    pub maintain_promoted: usize,
    pub tenants: u32,
    pub requests: usize,
    pub servers: usize,
    pub queue_depth: usize,
    pub coalesce: bool,
    pub threads: usize,
    pub images_published: usize,
    /// Fingerprint of the generated schedule (arrivals + keys).
    pub schedule_sha256: String,
    /// Fingerprint of the registry's request log (the determinism
    /// witness CI diffs across thread counts).
    pub request_log_sha256: String,
    /// Fingerprint over the sorted `key -> payload digest` table — the
    /// differential oracle's identity; equal between coalesced and
    /// uncoalesced runs, or coalescing changed payload bytes.
    pub key_digests_sha256: String,
    pub distinct_keys: usize,
    pub range_requests: usize,
    pub mean_service_ns: u64,
    pub mean_interarrival_ns: u64,
    pub served: u64,
    pub rejected: u64,
    pub store_hits: u64,
    pub coalesced_hits: u64,
    pub coalescing_hit_rate: f64,
    pub fairness_max_min_served: f64,
    pub p50_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub makespan_virtual_s: f64,
    /// Served requests per *virtual* second (deterministic).
    pub served_ops_per_virtual_s: f64,
    /// Wall seconds the parallel store-hit replay took (this host).
    pub replay_wall_s: f64,
    /// Store hits per *wall* second through the worker pool (this
    /// host) — the honest backend throughput figure.
    pub sustained_ops_per_s: f64,
    pub per_tenant: Vec<TenantRow>,
    /// Differential-oracle violations from the replay (must be empty).
    pub violations: Vec<String>,
}

/// Memoized cost + identity of one distinct request key.
struct KeyCost {
    service_ns: u64,
    bytes: u64,
    digest: String,
}

struct MeasuredModel<'a> {
    costs: &'a HashMap<RequestKey, KeyCost>,
}

impl ServiceModel for MeasuredModel<'_> {
    fn service_ns(&self, key: &RequestKey) -> u64 {
        self.costs[key].service_ns
    }
    /// Fanning a ready payload out to a coalesced waiter is a memory
    /// copy: model ~4 GiB/s plus a fixed 100 µs handoff.
    fn fanout_ns(&self, key: &RequestKey) -> u64 {
        100_000 + self.costs[key].bytes / 4
    }
}

pub(crate) fn spec_key(spec: &xpl_workloads::ServeRequestSpec) -> RequestKey {
    match spec.range {
        None => RequestKey::Image {
            image: spec.image.clone(),
        },
        Some((frac, len)) => RequestKey::Range {
            image: spec.image.clone(),
            start_frac: frac,
            len_bytes: len,
        },
    }
}

/// Execute one key against the store, returning (simulated ns, bytes
/// moved, payload digest). Full retrievals fingerprint the effective
/// guest state (the churn oracle's identity — Expelliarmus reproduces
/// semantics, not snapshot bytes); range reads fingerprint the exact
/// bytes.
pub(crate) fn execute_key(
    store: &dyn ImageStore,
    world: &ScaledWorld,
    requests: &HashMap<String, (RetrieveRequest, u64)>,
    key: &RequestKey,
) -> Result<(u64, u64, String), StoreError> {
    match key {
        RequestKey::Image { image } => {
            let (req, _) = &requests[image];
            let (vmi, report) = store.retrieve(&world.catalog, req)?;
            Ok((
                report.duration.as_nanos(),
                report.bytes_read,
                semantic_fingerprint(&world.catalog, &vmi).to_hex(),
            ))
        }
        RequestKey::Range {
            image,
            start_frac,
            len_bytes,
        } => {
            let (req, disk_size) = &requests[image];
            let start = disk_size * (*start_frac as u64) / 256;
            let (bytes, report) =
                store.retrieve_range(&world.catalog, req, start, *len_bytes as u64)?;
            Ok((
                report.duration.as_nanos(),
                report.bytes_read,
                Sha256::digest(&bytes).to_hex(),
            ))
        }
    }
}

/// The shared phase-0 setup: scaled world, published store, and the
/// per-image retrieve requests. Both the in-process pipeline
/// ([`run_serve`]) and the wire pipeline (`run_serve_net`) start here,
/// so their differential oracles execute against identical state.
pub(crate) struct PreparedServe {
    pub(crate) world: ScaledWorld,
    pub(crate) names: Vec<String>,
    pub(crate) store: Arc<dyn ImageStore>,
    pub(crate) requests: HashMap<String, (RetrieveRequest, u64)>,
}

/// Generate the scaled world and publish generation 0 of the whole
/// catalog into the chosen store.
pub(crate) fn prepare(cfg: &ServeRunConfig) -> PreparedServe {
    let world = ScaledWorld::generate(&cfg.scale);
    let names = world.image_names();
    let store: Arc<dyn ImageStore> = Arc::from(cfg.store.make_tiered(cfg.tier));
    let mut requests: HashMap<String, (RetrieveRequest, u64)> = HashMap::new();
    for name in &names {
        let vmi = world.build(name, 0);
        store
            .publish(&world.catalog, &vmi)
            .unwrap_or_else(|e| panic!("serve setup: publish {name}: {e}"));
        let size = vmi.disk.virtual_size();
        requests.insert(
            name.clone(),
            (RetrieveRequest::for_image(&vmi, &world.catalog), size),
        );
    }
    PreparedServe {
        world,
        names,
        store,
        requests,
    }
}

/// Run the full serve pipeline. See the module docs for the phases.
pub fn run_serve(cfg: &ServeRunConfig) -> ServeReport {
    run_serve_with(cfg, None)
}

/// [`run_serve`] with an optional metrics registry: the store mirrors
/// its CAS accounting into `cas.*` and the registry simulation folds
/// its outcome into `registry.*` after the run. The report is
/// byte-identical with or without the registry attached.
pub fn run_serve_with(
    cfg: &ServeRunConfig,
    registry: Option<&Arc<xpl_obs::Registry>>,
) -> ServeReport {
    let PreparedServe {
        world,
        names,
        store,
        requests,
    } = prepare(cfg);
    if let Some(reg) = registry {
        store.attach_obs(reg);
    }

    // Phase 1 — generate the key stream and memoize costs. The
    // placeholder-gap schedule draws the same RNG stream as the final
    // one (each request consumes a fixed number of draws), so the keys
    // are identical; only arrival values change on regeneration.
    let mut serve_cfg = ServeConfig::new(cfg.seed);
    serve_cfg.tenants = cfg.tenants;
    serve_cfg.requests = cfg.requests;
    let schedule = ServeSchedule::generate(&names, &serve_cfg);
    let mut costs: HashMap<RequestKey, KeyCost> = HashMap::new();
    let mut key_order: Vec<RequestKey> = Vec::new();
    let mut total_service: u128 = 0;
    for spec in &schedule.requests {
        let key = spec_key(spec);
        if !costs.contains_key(&key) {
            let (service_ns, bytes, digest) = execute_key(&*store, &world, &requests, &key)
                .unwrap_or_else(|e| panic!("serve memo: {}: {e}", key.render()));
            key_order.push(key.clone());
            costs.insert(
                key.clone(),
                KeyCost {
                    service_ns,
                    bytes,
                    digest,
                },
            );
        }
        total_service += costs[&key].service_ns as u128;
    }
    // The memoization pass warmed the temperature counters (every
    // distinct key was read at least once, Zipf-popular images many
    // times). One maintenance sweep re-encodes the hot set onto the
    // fast codec, so phases 2–3 run against the mixed-codec state the
    // policy would converge to in production; phase 3's digest diff
    // then doubles as the digest-preservation proof on the serving
    // path. Simulated time only — memoized costs stay valid.
    let maintain = store.maintain();
    let mean_service_ns = (total_service / cfg.requests.max(1) as u128) as u64;
    // Saturating arrivals: offered load ≈ 4/3 of service capacity.
    let mean_interarrival_ns = (mean_service_ns * 3 / (cfg.servers as u64 * 4)).max(1);
    serve_cfg.mean_interarrival_ns = mean_interarrival_ns;
    let schedule = ServeSchedule::generate(&names, &serve_cfg);

    // Phase 2 — the virtual-time registry simulation.
    let reg_requests: Vec<ServeRequest> = schedule
        .requests
        .iter()
        .map(|spec| ServeRequest {
            tenant: spec.tenant,
            arrival_ns: spec.arrival_ns,
            key: spec_key(spec),
        })
        .collect();
    let reg_cfg = RegistryConfig {
        servers: cfg.servers,
        queue_depth: cfg.queue_depth,
        quantum_ns: mean_service_ns.max(1),
        coalesce: cfg.coalesce,
    };
    let model = MeasuredModel { costs: &costs };
    let reg_obs = registry.map(|r| RegObs::new(r));
    let outcome: RegistryOutcome =
        run_registry_obs(&reg_requests, &model, &reg_cfg, reg_obs.as_ref());

    // Phase 3 — wall-clock replay of the store-hit schedule on the
    // worker pool, with the differential digest check.
    use rayon::prelude::*;
    let hit_keys: Vec<RequestKey> = outcome
        .store_hit_indices
        .iter()
        .map(|&i| reg_requests[i].key.clone())
        .collect();
    let t0 = Instant::now();
    let replay: Vec<Option<String>> = hit_keys
        .into_par_iter()
        .map(|key| match execute_key(&*store, &world, &requests, &key) {
            Ok((_, _, digest)) => {
                if digest == costs[&key].digest {
                    None
                } else {
                    Some(format!(
                        "{}: replay payload digest {} != memoized {}",
                        key.render(),
                        digest,
                        costs[&key].digest
                    ))
                }
            }
            Err(e) => Some(format!("{}: replay failed: {e}", key.render())),
        })
        .collect();
    let replay_wall_s = t0.elapsed().as_secs_f64();
    let violations: Vec<String> = replay.into_iter().flatten().collect();

    // Fingerprint of the key -> payload-digest table (sorted).
    let mut digest_lines: Vec<String> = costs
        .iter()
        .map(|(k, c)| format!("{} {}", k.render(), c.digest))
        .collect();
    digest_lines.sort_unstable();
    let key_digests_sha256 = Sha256::digest(digest_lines.join("\n").as_bytes()).to_hex();

    let per_tenant: Vec<TenantRow> = outcome
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| TenantRow {
            tenant: i as u32,
            submitted: t.submitted,
            admitted: t.admitted,
            rejected: t.rejected,
            served: t.served,
            coalesced: t.coalesced,
            mean_sojourn_ms: if t.served == 0 {
                0.0
            } else {
                t.sojourn_ns as f64 / t.served as f64 / 1e6
            },
        })
        .collect();
    let makespan_virtual_s = outcome.makespan_ns as f64 / 1e9;
    ServeReport {
        schema_version: 5,
        seed: cfg.seed,
        scale: cfg.scale_name.clone(),
        store: store.name().to_string(),
        tier: cfg.tier.describe().to_string(),
        maintain_promoted: maintain.promoted,
        tenants: cfg.tenants,
        requests: cfg.requests,
        servers: cfg.servers,
        queue_depth: cfg.queue_depth,
        coalesce: cfg.coalesce,
        threads: rayon::current_num_threads(),
        images_published: names.len(),
        schedule_sha256: schedule.digest_hex(),
        request_log_sha256: outcome.log_digest_hex(),
        key_digests_sha256,
        distinct_keys: key_order.len(),
        range_requests: schedule.range_reads(),
        mean_service_ns,
        mean_interarrival_ns,
        served: outcome.served,
        rejected: outcome.rejected,
        store_hits: outcome.store_hits,
        coalesced_hits: outcome.coalesced_hits,
        coalescing_hit_rate: outcome.coalescing_hit_rate(),
        fairness_max_min_served: outcome.fairness_max_min_served(),
        p50_latency_ms: outcome.latency_percentile_ns(50) as f64 / 1e6,
        p99_latency_ms: outcome.latency_percentile_ns(99) as f64 / 1e6,
        makespan_virtual_s,
        served_ops_per_virtual_s: if makespan_virtual_s > 0.0 {
            outcome.served as f64 / makespan_virtual_s
        } else {
            0.0
        },
        replay_wall_s,
        sustained_ops_per_s: if replay_wall_s > 0.0 {
            outcome.store_hits as f64 / replay_wall_s
        } else {
            0.0
        },
        per_tenant,
        violations,
    }
}

/// Console rendering of a serve report.
pub fn render(r: &ServeReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "SERVE: {} requests from {} tenants against {} ({} scale, seed {:#x})",
        r.requests, r.tenants, r.store, r.scale, r.seed
    );
    let _ = writeln!(
        s,
        "  registry: {} servers, queue depth {}, coalescing {}, codec tier {} \
         ({} blobs promoted)",
        r.servers,
        r.queue_depth,
        if r.coalesce { "on" } else { "off" },
        r.tier,
        r.maintain_promoted
    );
    let _ = writeln!(
        s,
        "  served {} / rejected {} ({} store hits, {} coalesced, hit-rate {:.3})",
        r.served, r.rejected, r.store_hits, r.coalesced_hits, r.coalescing_hit_rate
    );
    let _ = writeln!(
        s,
        "  latency p50 {:.3} ms, p99 {:.3} ms (virtual); fairness max/min {:.2}",
        r.p50_latency_ms, r.p99_latency_ms, r.fairness_max_min_served
    );
    let _ = writeln!(
        s,
        "  throughput: {:.0} ops/virtual-s; replay {:.0} store-hits/s wall \
         ({} threads, {:.3}s)",
        r.served_ops_per_virtual_s, r.sustained_ops_per_s, r.threads, r.replay_wall_s
    );
    let _ = writeln!(s, "  schedule sha256:    {}", r.schedule_sha256);
    let _ = writeln!(s, "  request-log sha256: {}", r.request_log_sha256);
    let _ = writeln!(s, "  key-digests sha256: {}", r.key_digests_sha256);
    let _ = writeln!(
        s,
        "  {:<8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>14}",
        "tenant", "submitted", "admitted", "rejected", "served", "coalesced", "mean-sojourn"
    );
    for t in &r.per_tenant {
        let _ = writeln!(
            s,
            "  {:<8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12.3}ms",
            t.tenant, t.submitted, t.admitted, t.rejected, t.served, t.coalesced, t.mean_sojourn_ms
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_serve_is_deterministic_and_oracle_clean() {
        let mut cfg = ServeRunConfig::small(0x5E21);
        cfg.requests = 120;
        cfg.tenants = 3;
        let a = run_serve(&cfg);
        let b = run_serve(&cfg);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.request_log_sha256, b.request_log_sha256);
        assert_eq!(a.schedule_sha256, b.schedule_sha256);
        assert_eq!(a.key_digests_sha256, b.key_digests_sha256);
        assert_eq!(a.served + a.rejected, 120);
        assert!(a.p99_latency_ms >= a.p50_latency_ms);
        assert!(a.p50_latency_ms > 0.0);
        assert!(a.coalesced_hits + a.store_hits == a.served);
        assert!(a.fairness_max_min_served >= 1.0);
        assert!(a.sustained_ops_per_s > 0.0);
        assert!(a.range_requests > 0, "schedule must exercise range reads");
        let text = render(&a);
        assert!(text.contains("request-log sha256"));
    }

    #[test]
    fn coalescing_reduces_store_hits_but_not_payloads() {
        let mut cfg = ServeRunConfig::small(0xC0A1);
        cfg.requests = 150;
        cfg.tenants = 3;
        let on = run_serve(&cfg);
        cfg.coalesce = false;
        let off = run_serve(&cfg);
        assert!(on.coalesced_hits > 0, "saturated Zipf load must coalesce");
        assert!(on.store_hits < off.store_hits);
        assert_eq!(off.coalesced_hits, 0);
        // The differential oracle: both replays byte-clean, and the
        // payload identity table is identical — coalescing changed who
        // pays for a hit, never what bytes a tenant received.
        assert!(on.violations.is_empty(), "{:?}", on.violations);
        assert!(off.violations.is_empty(), "{:?}", off.violations);
        assert_eq!(on.key_digests_sha256, off.key_digests_sha256);
    }

    #[test]
    fn codec_tiers_serve_identical_payloads() {
        // The serving-path digest-preservation pin: one schedule, one
        // seed, two tier policies. The raw store never recompresses;
        // the mixed store promotes its Zipf-hot blobs onto LZ4 after
        // memoization. Payload identity and the registry's virtual-time
        // behaviour must not notice the difference.
        let mut cfg = ServeRunConfig::small(0x71E6);
        cfg.requests = 120;
        cfg.tenants = 3;
        cfg.tier = TierPolicy::raw();
        let raw = run_serve(&cfg);
        cfg.tier = TierPolicy::mixed();
        let mixed = run_serve(&cfg);
        assert!(raw.violations.is_empty(), "{:?}", raw.violations);
        assert!(mixed.violations.is_empty(), "{:?}", mixed.violations);
        assert_eq!(raw.key_digests_sha256, mixed.key_digests_sha256);
        assert_eq!(raw.request_log_sha256, mixed.request_log_sha256);
        assert_eq!(raw.schedule_sha256, mixed.schedule_sha256);
        assert_eq!(mixed.tier, "mixed");
        assert_eq!(raw.tier, "raw");
        assert!(mixed.maintain_promoted > 0, "Zipf-hot blobs must promote");
        assert_eq!(raw.maintain_promoted, 0, "raw tier has nothing to promote");
    }

    #[test]
    fn store_kind_parses_all_five() {
        for (name, kind) in [
            ("qcow2", StoreKind::Qcow2),
            ("Qcow2+Gzip", StoreKind::Gzip),
            ("mirage", StoreKind::Mirage),
            ("HEMERA", StoreKind::Hemera),
            ("expelliarmus", StoreKind::Expelliarmus),
        ] {
            assert_eq!(StoreKind::parse(name), Some(kind));
        }
        assert_eq!(StoreKind::parse("zfs"), None);
    }
}
