//! `xpl-bench` — the experiment harness.
//!
//! One runner per table/figure of the paper's evaluation (§VI), each
//! returning structured results that the `repro` binary renders as the
//! same rows/series the paper reports and serializes to JSON for
//! EXPERIMENTS.md generation.

pub mod ablations;
pub mod churn;
pub mod experiments;
pub mod microbench;
pub mod profile;
pub mod render;
pub mod serve;
pub mod serve_net;

pub use churn::{run_churn, run_churn_threads_with, run_churn_with, ChurnConfig, ChurnReport};
pub use experiments::{
    fig3_sizes, fig4a_publish, fig4b_publish, fig5a_breakdown, fig5b_retrieval, table2,
    Fig3Scenario,
};
pub use microbench::{
    run_microbench, run_microbench_codec, run_microbench_codec_with, BenchReport,
};
pub use profile::{render_profile, run_profile, ProfileConfig, ProfileReport};
pub use serve::{run_serve, run_serve_with, ServeReport, ServeRunConfig, StoreKind};
pub use serve_net::{
    run_serve_net, run_serve_net_with, NetServeConfig, NetServeReport, NetTransportKind,
};
