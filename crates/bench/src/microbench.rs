//! Wall-clock microbenchmarks — the `repro bench` subcommand.
//!
//! Deterministic-input throughput benchmarks over the byte-moving
//! substrate (SHA-256, DEFLATE/inflate, CRC-32, content-defined
//! chunking, parallel gzip) plus two end-to-end wall times (publish a
//! catalog, replay a churn trace). Results serialize to `BENCH.json`,
//! the perf trajectory file every future scale/perf PR appends a delta
//! against.
//!
//! Inputs are pinned: the committed compress regression corpus
//! (concatenated + repeated) and seeded synthetic image payloads from
//! `xpl_pkg::content`, so runs on one machine are comparable over time.
//! Timings are honest medians-of-iterations (same methodology as the
//! criterion shim): warm up once, then run enough iterations to fill a
//! time budget.

use rayon::prelude::*;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use xpl_chunking::rabin::{chunk_cdc, CdcParams};
use xpl_compress::{
    blocked_compress, blocked_compress_inner, blocked_decompress_parallel, deflate,
    gzip_compress_parallel, gzip_decompress, inflate, lz4_compress, lz4_decompress, read_range,
    BlockIndex, BlockedReader, InnerCodec, DEFAULT_BLOCK_SIZE,
};
use xpl_core::ExpelliarmusRepo;
use xpl_persist::{DurableConfig, DurableContentStore, MemFs};
use xpl_store::ImageStore;
use xpl_util::{Crc32, Sha256};
use xpl_workloads::World;

use crate::churn::ChurnConfig;
use crate::serve::ServeRunConfig;

/// One kernel measurement.
#[derive(Clone, Debug, Serialize)]
pub struct KernelBench {
    pub name: String,
    pub input_bytes: u64,
    pub iterations: u32,
    pub median_seconds: f64,
    pub mib_per_s: f64,
}

/// The 1-thread vs N-thread `gzip_compress_parallel` comparison.
#[derive(Clone, Debug, Serialize)]
pub struct ParallelBench {
    pub input_bytes: u64,
    pub threads: usize,
    /// CPUs the host actually has; a pool of N workers on fewer cores
    /// cannot speed up, so consumers gate speedup claims on this.
    pub host_cpus: usize,
    pub one_thread_mib_per_s: f64,
    pub n_thread_mib_per_s: f64,
    /// `n_thread / one_thread`; ≈ 1.0 on single-core hosts.
    pub speedup: f64,
}

/// The blocked random-access codec: parallel inflate vs the legacy
/// single-stream path, and a seekable range read.
#[derive(Clone, Debug, Serialize)]
pub struct BlockedBench {
    pub input_bytes: u64,
    pub threads: usize,
    /// CPUs the host actually has (see [`ParallelBench::host_cpus`]).
    pub host_cpus: usize,
    /// Legacy single-stream gzip inflate of the same payload.
    pub single_stream_inflate_mib_per_s: f64,
    pub blocked_inflate_1t_mib_per_s: f64,
    pub blocked_inflate_nt_mib_per_s: f64,
    /// `nt / 1t`; ≈ 1.0 on single-core hosts.
    pub inflate_speedup: f64,
    /// Bytes asked of `read_range` (64 KiB in the standard run).
    pub range_len: u64,
    /// Blocks the range read actually inflated…
    pub range_blocks_touched: usize,
    /// …out of this many in the container. The random-access claim:
    /// touched ≪ total (< 1/8 in the standard 8 MiB / 64 KiB shape).
    pub range_blocks_total: usize,
    pub range_read_mib_per_s: f64,
}

/// The codec-tier comparison: the fast (LZ4-class) codec against
/// DEFLATE on the same pinned payload. The hot-tier claim BENCH.json
/// carries: fast-codec decode is several times DEFLATE inflate at a
/// moderately lighter ratio.
#[derive(Clone, Debug, Serialize)]
pub struct CodecBench {
    /// Inner codec the blocked section's container used (`--codec`;
    /// `blocked-deflate` unless overridden).
    pub blocked_codec: String,
    pub input_bytes: u64,
    /// `compressed / input` for each codec on the same payload.
    pub deflate_ratio: f64,
    pub lz4_ratio: f64,
    /// Single-stream DEFLATE inflate (the `inflate` kernel).
    pub inflate_mib_per_s: f64,
    /// Raw fast-codec decode (the `lz4-decompress` kernel).
    pub lz4_decompress_mib_per_s: f64,
    /// `lz4_decompress / inflate` — the hot-tier decode dividend (the
    /// acceptance floor is 3× on a full run).
    pub decode_speedup: f64,
    /// Seekable range read from an LZ4 container (the hot tier's
    /// random-access path; the `hot-range-read` kernel).
    pub hot_range_read_mib_per_s: f64,
}

/// End-to-end wall times.
#[derive(Clone, Debug, Serialize)]
pub struct EndToEnd {
    /// Images published into a fresh Expelliarmus repository.
    pub publish_images: usize,
    pub publish_wall_s: f64,
    /// The same catalog published into all five stores: one store per
    /// pool worker (`&self` publishes) vs. the pool pinned to one
    /// thread. The concurrency dividend of the shared-access refactor.
    pub five_store_publish_sequential_wall_s: f64,
    pub five_store_publish_concurrent_wall_s: f64,
    /// Workers in the concurrent leg's pool.
    pub five_store_publish_workers: usize,
    /// CPUs the host actually has (see [`ParallelBench::host_cpus`]).
    pub host_cpus: usize,
    /// `sequential / concurrent`; ≈ 1.0 on single-core hosts.
    pub five_store_publish_speedup: f64,
    /// Churn replay (all five stores, differential oracle on).
    pub churn_ops: usize,
    pub churn_scale: String,
    pub churn_wall_s: f64,
}

/// Durable-persistence throughputs (the `xpl-persist` subsystem over
/// the deterministic in-memory medium, so the numbers isolate the
/// format + CRC + logging work from physical disk speed).
#[derive(Clone, Debug, Serialize)]
pub struct PersistBench {
    /// Segment-append path: `put` of distinct payloads (record
    /// framing, CRC-32, WAL logging, fsync accounting).
    pub segment_append_mib_per_s: f64,
    /// WAL replay during recovery, in records per second.
    pub wal_replay_ops_per_s: f64,
    pub wal_replay_records: u64,
    /// One cold recovery: manifest load + WAL replay (torn tail
    /// dropped) + full content re-validation of every recovered blob.
    pub recovery_wall_s: f64,
    pub recovery_blobs: usize,
}

/// The registry serving benchmark (the `repro serve` pipeline run at a
/// fixed seed): virtual-time latency percentiles and fairness — exact,
/// host-independent numbers — plus the wall-clock store-hit replay
/// throughput, which is the only host-dependent field.
#[derive(Clone, Debug, Serialize)]
pub struct ServingBench {
    pub requests: usize,
    pub tenants: u32,
    pub servers: usize,
    /// Workers in the replay pool.
    pub threads: usize,
    /// CPUs the host actually has (see [`ParallelBench::host_cpus`]).
    pub host_cpus: usize,
    /// Virtual-time latency percentiles (deterministic).
    pub p50_latency_ms: f64,
    pub p99_latency_ms: f64,
    /// Store hits per wall second through the replay pool.
    pub sustained_ops_per_s: f64,
    /// Fraction of served requests satisfied by attaching to an
    /// in-flight identical retrieval.
    pub coalescing_hit_rate: f64,
    /// Max/min served across tenants that submitted (1.0 = perfectly
    /// even).
    pub fairness_max_min_served: f64,
    /// The engine's request-log fingerprint — byte-identical across
    /// runs, hosts, and thread counts.
    pub request_log_sha256: String,
}

/// The observability tax: the same fixed-seed churn replay timed bare
/// and with a metrics registry attached (every counter bump live on the
/// hot paths), min-of-N each so scheduler noise cancels.
#[derive(Clone, Debug, Serialize)]
pub struct MetricsOverhead {
    pub churn_ops: usize,
    /// Runs per leg; the reported walls are each leg's minimum.
    pub runs_each: u32,
    pub plain_wall_s: f64,
    pub metrics_wall_s: f64,
    /// `metrics_wall_s / plain_wall_s - 1` (negative = noise).
    pub overhead_frac: f64,
    /// CPUs the host actually has (see [`ParallelBench::host_cpus`]).
    pub host_cpus: usize,
    /// Whether the <5% overhead gate applies. Single-core hosts are
    /// exempt: one preempted timeslice there swamps the signal.
    pub gated: bool,
}

/// The machine-readable `BENCH.json` payload.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    /// Bump when fields change meaning; consumers check this.
    pub schema_version: u32,
    pub quick: bool,
    pub host_cpus: usize,
    pub kernels: Vec<KernelBench>,
    pub parallel: ParallelBench,
    pub blocked: BlockedBench,
    pub codec: CodecBench,
    pub persist: PersistBench,
    pub serving: ServingBench,
    pub metrics_overhead: MetricsOverhead,
    pub end_to_end: EndToEnd,
}

/// Committed regression corpus, concatenated — the same bytes the
/// compress test suite pins.
fn corpus() -> Vec<u8> {
    let parts: [&[u8]; 6] = [
        include_bytes!("../../compress/tests/corpus/empty.bin"),
        include_bytes!("../../compress/tests/corpus/zeros-8k.bin"),
        include_bytes!("../../compress/tests/corpus/dpkg-text.bin"),
        include_bytes!("../../compress/tests/corpus/random-16k.bin"),
        include_bytes!("../../compress/tests/corpus/period7-12k.bin"),
        include_bytes!("../../compress/tests/corpus/mixed.bin"),
    ];
    parts.concat()
}

/// Seeded synthetic image payload (same generator the stores serialize).
fn payload(len: usize) -> Vec<u8> {
    xpl_pkg::content::generate(42, len)
}

/// Median seconds per iteration: warm up once, then iterate until the
/// budget is spent (at least 3 iterations).
pub(crate) fn time_median<F: FnMut()>(budget_s: f64, mut f: F) -> (u32, f64) {
    f(); // warm-up
    let mut samples = Vec::new();
    let started = Instant::now();
    while samples.len() < 3 || started.elapsed().as_secs_f64() < budget_s {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
        if samples.len() >= 10_000 {
            break;
        }
    }
    samples.sort_by(f64::total_cmp);
    (samples.len() as u32, samples[samples.len() / 2])
}

fn kernel<F: FnMut()>(name: &str, input_bytes: usize, budget_s: f64, f: F) -> KernelBench {
    let (iterations, median) = time_median(budget_s, f);
    KernelBench {
        name: name.to_string(),
        input_bytes: input_bytes as u64,
        iterations,
        median_seconds: median,
        mib_per_s: input_bytes as f64 / (1024.0 * 1024.0) / median,
    }
}

/// Run the full benchmark suite with the default (DEFLATE) blocked
/// container. `quick` shrinks inputs and budgets so the smoke tests
/// can execute the whole path in seconds.
pub fn run_microbench(quick: bool) -> BenchReport {
    run_microbench_codec(quick, InnerCodec::Deflate)
}

/// Run the suite with the blocked section's container on a chosen
/// inner codec (`repro bench --codec`). The codec-tier comparison
/// kernels (`lz4-compress` / `lz4-decompress` / `hot-range-read`)
/// always measure both codecs regardless of this choice.
pub fn run_microbench_codec(quick: bool, blocked_codec: InnerCodec) -> BenchReport {
    run_microbench_codec_with(quick, blocked_codec, None)
}

/// Like [`run_microbench_codec`], with an optional metrics registry
/// (`repro bench --metrics`). The registry is attached to the serving
/// and churn legs; the `metrics_overhead` section always builds its own
/// private registries so the instrumented-vs-bare comparison stays
/// clean regardless of this choice.
pub fn run_microbench_codec_with(
    quick: bool,
    blocked_codec: InnerCodec,
    registry: Option<&std::sync::Arc<xpl_obs::Registry>>,
) -> BenchReport {
    let budget = if quick { 0.05 } else { 0.8 };
    let scale = if quick { 1 } else { 8 };
    let mut kernels = Vec::new();

    // --- hashing / checksumming ------------------------------------
    let data = payload(scale * 1024 * 1024);
    kernels.push(kernel("sha256", data.len(), budget, || {
        std::hint::black_box(Sha256::digest(&data));
    }));
    kernels.push(kernel("crc32", data.len(), budget, || {
        std::hint::black_box(Crc32::checksum(&data));
    }));

    // --- DEFLATE over synthetic image payload ----------------------
    let dpayload = payload(if quick { 128 * 1024 } else { 1024 * 1024 });
    kernels.push(kernel("deflate", dpayload.len(), budget, || {
        std::hint::black_box(deflate(&dpayload));
    }));
    let compressed = deflate(&dpayload);
    kernels.push(kernel("inflate", dpayload.len(), budget, || {
        std::hint::black_box(inflate(&compressed).expect("inflate"));
    }));

    // --- the fast (LZ4-class) codec over the same payload ----------
    kernels.push(kernel("lz4-compress", dpayload.len(), budget, || {
        std::hint::black_box(lz4_compress(&dpayload));
    }));
    let lz = lz4_compress(&dpayload);
    kernels.push(kernel("lz4-decompress", dpayload.len(), budget, || {
        std::hint::black_box(lz4_decompress(&lz, dpayload.len() as u64).expect("lz4 decode"));
    }));
    assert_eq!(
        lz4_decompress(&lz, dpayload.len() as u64).expect("lz4 round-trip"),
        dpayload
    );

    // --- DEFLATE over the committed corpus -------------------------
    let corp = corpus();
    kernels.push(kernel("deflate-corpus", corp.len(), budget, || {
        std::hint::black_box(deflate(&corp));
    }));

    // --- content-defined chunking ----------------------------------
    kernels.push(kernel("chunk-cdc", data.len(), budget, || {
        std::hint::black_box(chunk_cdc(&data, CdcParams::with_avg(4096)));
    }));

    // --- parallel gzip: 1 thread vs all cores ----------------------
    let par_payload = payload(if quick { 512 * 1024 } else { 4 * 1024 * 1024 });
    let (_, t1) = time_median(budget, || {
        rayon::with_num_threads(1, || {
            std::hint::black_box(gzip_compress_parallel(&par_payload));
        })
    });
    let threads = rayon::current_num_threads();
    let (_, tn) = time_median(budget, || {
        std::hint::black_box(gzip_compress_parallel(&par_payload));
    });
    // Sanity: the parallel stream must still decode (cheap, once).
    assert_eq!(
        gzip_decompress(&gzip_compress_parallel(&par_payload)).expect("parallel gzip decodes"),
        par_payload
    );
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mib = par_payload.len() as f64 / (1024.0 * 1024.0);
    let parallel = ParallelBench {
        input_bytes: par_payload.len() as u64,
        threads,
        host_cpus,
        one_thread_mib_per_s: mib / t1,
        n_thread_mib_per_s: mib / tn,
        speedup: t1 / tn,
    };

    // --- blocked codec: parallel inflate + seekable range reads ----
    // 8 MiB blob → 128 default-size blocks; quick shrinks to 1 MiB.
    // The container's inner codec is selectable (`--codec`); DEFLATE
    // is the default so historical BENCH.json trajectories compare.
    let blob = payload(if quick { 1024 * 1024 } else { 8 * 1024 * 1024 });
    let blocked = blocked_compress_inner(&blob, DEFAULT_BLOCK_SIZE, blocked_codec);
    let legacy = gzip_compress_parallel(&blob);
    let (_, t_ss) = time_median(budget, || {
        std::hint::black_box(gzip_decompress(&legacy).expect("legacy inflate"));
    });
    let (i_b1, t_b1) = time_median(budget, || {
        rayon::with_num_threads(1, || {
            std::hint::black_box(blocked_decompress_parallel(&blocked).expect("blocked inflate"));
        })
    });
    let (i_bn, t_bn) = time_median(budget, || {
        std::hint::black_box(blocked_decompress_parallel(&blocked).expect("blocked inflate"));
    });
    // Byte-identity of both decode paths against the source (once).
    assert_eq!(
        blocked_decompress_parallel(&blocked).expect("blocked decodes"),
        blob
    );
    assert_eq!(gzip_decompress(&legacy).expect("legacy decodes"), blob);
    // And on the committed regression corpus: blocked inflate must agree
    // with single-stream inflate byte-for-byte (the CI bench step runs
    // this, so a codec divergence fails the pipeline, not just a test).
    assert_eq!(
        blocked_decompress_parallel(&blocked_compress(&corp)).expect("corpus blocked decodes"),
        gzip_decompress(&gzip_compress_parallel(&corp)).expect("corpus legacy decodes"),
        "blocked and single-stream inflate disagree on the regression corpus"
    );

    let range_len: usize = if quick { 16 * 1024 } else { 64 * 1024 };
    let range_start = (blob.len() / 2 + 777) as u64;
    let (i_range, t_range) = time_median(budget, || {
        std::hint::black_box(
            read_range(&blocked, range_start, range_len as u64).expect("range read"),
        );
    });
    let mut reader = BlockedReader::new(&blocked).expect("blocked container parses");
    let range_bytes = reader
        .read_at(range_start, range_len as u64)
        .expect("range read for accounting");
    assert_eq!(
        range_bytes,
        &blob[range_start as usize..range_start as usize + range_len]
    );
    let blocks_total = BlockIndex::parse(&blocked)
        .expect("blocked container parses")
        .entries
        .len();
    let blob_mib = blob.len() as f64 / (1024.0 * 1024.0);
    let blocked_bench = BlockedBench {
        input_bytes: blob.len() as u64,
        threads,
        host_cpus,
        single_stream_inflate_mib_per_s: blob_mib / t_ss,
        blocked_inflate_1t_mib_per_s: blob_mib / t_b1,
        blocked_inflate_nt_mib_per_s: blob_mib / t_bn,
        inflate_speedup: t_b1 / t_bn,
        range_len: range_len as u64,
        range_blocks_touched: reader.blocks_inflated(),
        range_blocks_total: blocks_total,
        range_read_mib_per_s: range_len as f64 / (1024.0 * 1024.0) / t_range,
    };
    // The hot tier's random-access path: the same range read out of an
    // LZ4 container (byte-identity checked against the source once).
    let hot_container = blocked_compress_inner(&blob, DEFAULT_BLOCK_SIZE, InnerCodec::Lz4);
    let (i_hot, t_hot) = time_median(budget, || {
        std::hint::black_box(
            read_range(&hot_container, range_start, range_len as u64).expect("hot range read"),
        );
    });
    assert_eq!(
        read_range(&hot_container, range_start, range_len as u64).expect("hot range decodes"),
        &blob[range_start as usize..range_start as usize + range_len]
    );

    // The same measurements, surfaced in the kernel table.
    for (name, bytes, iterations, median) in [
        ("blocked-inflate-1t", blob.len(), i_b1, t_b1),
        ("blocked-inflate-nt", blob.len(), i_bn, t_bn),
        ("range-read", range_len, i_range, t_range),
        ("hot-range-read", range_len, i_hot, t_hot),
    ] {
        kernels.push(KernelBench {
            name: name.to_string(),
            input_bytes: bytes as u64,
            iterations,
            median_seconds: median,
            mib_per_s: bytes as f64 / (1024.0 * 1024.0) / median,
        });
    }

    // The codec-tier comparison, assembled from the kernel table.
    let kernel_mib = |name: &str| -> f64 {
        kernels
            .iter()
            .find(|k| k.name == name)
            .map(|k| k.mib_per_s)
            .expect("kernel measured above")
    };
    let codec = CodecBench {
        blocked_codec: blocked_codec.name().to_string(),
        input_bytes: dpayload.len() as u64,
        deflate_ratio: compressed.len() as f64 / dpayload.len() as f64,
        lz4_ratio: lz.len() as f64 / dpayload.len() as f64,
        inflate_mib_per_s: kernel_mib("inflate"),
        lz4_decompress_mib_per_s: kernel_mib("lz4-decompress"),
        decode_speedup: kernel_mib("lz4-decompress") / kernel_mib("inflate"),
        hot_range_read_mib_per_s: kernel_mib("hot-range-read"),
    };

    // --- durable persistence ---------------------------------------
    let persist = persist_bench(quick, budget);

    // --- registry serving ------------------------------------------
    // The full serve pipeline at a fixed seed: quick runs the small
    // world with a short schedule, full runs the standard CI shape.
    let serve_cfg = if quick {
        let mut c = ServeRunConfig::small(0xBE6C);
        c.requests = 160;
        c
    } else {
        ServeRunConfig::standard(0xBE6C)
    };
    let serve = crate::serve::run_serve_with(&serve_cfg, registry);
    assert!(
        serve.violations.is_empty(),
        "serve differential oracle failed during bench: {:?}",
        serve.violations
    );
    let serving = ServingBench {
        requests: serve.requests,
        tenants: serve.tenants,
        servers: serve.servers,
        threads: serve.threads,
        host_cpus,
        p50_latency_ms: serve.p50_latency_ms,
        p99_latency_ms: serve.p99_latency_ms,
        sustained_ops_per_s: serve.sustained_ops_per_s,
        coalescing_hit_rate: serve.coalescing_hit_rate,
        fairness_max_min_served: serve.fairness_max_min_served,
        request_log_sha256: serve.request_log_sha256.clone(),
    };

    // --- end to end -------------------------------------------------
    let world = World::small();
    let names = world.image_names();
    let t0 = Instant::now();
    let repo = ExpelliarmusRepo::new(world.env());
    for name in &names {
        let vmi = world.build_image(name);
        repo.publish(&world.catalog, &vmi).expect("publish");
    }
    let publish_wall_s = t0.elapsed().as_secs_f64();

    // Five-store publish sweep: pool of one vs. one worker per store.
    // Images are prebuilt so only store work is timed, and each store's
    // *internal* parallelism (Mirage/Hemera scan+hash, parallel gzip) is
    // pinned to one thread in both legs — the measured difference is
    // store-level fan-out through the `&self` interfaces, nothing else.
    let vmis: Vec<_> = names.iter().map(|n| world.build_image(n)).collect();
    let sweep = |threads: usize| {
        rayon::with_num_threads(threads, || {
            let stores = crate::churn::five_stores(|| world.env());
            let t = Instant::now();
            let _: Vec<()> = stores
                .into_par_iter()
                .map(|store| {
                    rayon::with_num_threads(1, || {
                        for vmi in &vmis {
                            store.publish(&world.catalog, vmi).expect("publish");
                        }
                    })
                })
                .collect();
            t.elapsed().as_secs_f64()
        })
    };
    let five_seq = sweep(1);
    let five_workers = rayon::current_num_threads().clamp(2, 5);
    let five_conc = sweep(five_workers);

    let churn_ops = if quick { 40 } else { 500 };
    let cfg = if quick {
        ChurnConfig::small(0xBE6C, churn_ops)
    } else {
        ChurnConfig::standard(0xBE6C, churn_ops)
    };
    let t0 = Instant::now();
    let report = crate::churn::run_churn_with(&cfg, registry);
    let churn_wall_s = t0.elapsed().as_secs_f64();
    assert!(
        report.violations.is_empty(),
        "churn oracle failed during bench: {:?}",
        report.violations
    );

    // --- metrics overhead -------------------------------------------
    // The same replay, smaller, timed bare vs instrumented. Min-of-N:
    // the fastest run of each leg is the one least disturbed by the
    // scheduler, which is exactly the comparison we want.
    let overhead_ops = if quick { 24 } else { 120 };
    let overhead_cfg = if quick {
        ChurnConfig::small(0xBE6C, overhead_ops)
    } else {
        ChurnConfig::standard(0xBE6C, overhead_ops)
    };
    let runs_each = 3u32;
    let time_leg = |with_metrics: bool| -> f64 {
        (0..runs_each)
            .map(|_| {
                let registry = with_metrics.then(xpl_obs::Registry::new);
                let t = Instant::now();
                let r = crate::churn::run_churn_with(&overhead_cfg, registry.as_ref());
                assert!(r.violations.is_empty(), "{:?}", r.violations);
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let plain_wall_s = time_leg(false);
    let metrics_wall_s = time_leg(true);
    let metrics_overhead = MetricsOverhead {
        churn_ops: overhead_ops,
        runs_each,
        plain_wall_s,
        metrics_wall_s,
        overhead_frac: metrics_wall_s / plain_wall_s - 1.0,
        host_cpus,
        gated: host_cpus > 1,
    };

    BenchReport {
        schema_version: 7,
        quick,
        host_cpus,
        kernels,
        parallel,
        blocked: blocked_bench,
        codec,
        persist,
        serving,
        metrics_overhead,
        end_to_end: EndToEnd {
            publish_images: names.len(),
            publish_wall_s,
            five_store_publish_sequential_wall_s: five_seq,
            five_store_publish_concurrent_wall_s: five_conc,
            five_store_publish_workers: five_workers,
            host_cpus,
            five_store_publish_speedup: five_seq / five_conc,
            churn_ops,
            churn_scale: if quick { "small" } else { "standard" }.to_string(),
            churn_wall_s,
        },
    }
}

/// Benchmark the durable subsystem: segment-append throughput, WAL
/// replay rate, and a cold crash-recovery wall time.
fn persist_bench(quick: bool, budget: f64) -> PersistBench {
    // Segment append: distinct payloads through the full put path
    // (record framing + CRC + WAL append + fsync accounting). A fresh
    // store per iteration so every put is a cold append.
    let (count, blob_len) = if quick {
        (8, 64 * 1024)
    } else {
        (64, 256 * 1024)
    };
    let payloads: Vec<Vec<u8>> = (0..count)
        .map(|i| xpl_pkg::content::generate(1000 + i as u64, blob_len))
        .collect();
    let total_bytes = (count * blob_len) as f64;
    let (_, append_median) = time_median(budget, || {
        let vfs = Arc::new(MemFs::new());
        let (store, _) =
            DurableContentStore::open(vfs, DurableConfig::named("bench")).expect("fresh store");
        for p in &payloads {
            store.put(p).expect("bench put");
        }
    });
    let segment_append_mib_per_s = total_bytes / (1024.0 * 1024.0) / append_median;

    // WAL replay: record a run of small index ops with checkpoints
    // disabled, then repeatedly recover from the medium. Each open()
    // replays every record into a fresh index.
    let wal_ops = if quick { 1_000 } else { 10_000 };
    let wal_vfs = Arc::new(MemFs::new());
    let mut cfg = DurableConfig::named("wal");
    cfg.checkpoint_every_ops = 0;
    {
        let (store, _) =
            DurableContentStore::open(Arc::clone(&wal_vfs) as _, cfg.clone()).expect("fresh store");
        let mut digests = Vec::new();
        for i in 0..wal_ops {
            let (d, _) = store.put(&(i as u64).to_le_bytes()).expect("bench put");
            digests.push(d);
            if i % 3 == 0 {
                store.add_ref(d).expect("bench add_ref");
            }
            if i % 5 == 4 {
                store.release(&digests[i - 2]).expect("bench release");
            }
        }
    }
    let replay_records = {
        let (_, report) =
            DurableContentStore::open(Arc::clone(&wal_vfs) as _, cfg.clone()).expect("reopen");
        report.wal_records_replayed
    };
    let (_, replay_median) = time_median(budget, || {
        let (_store, report) =
            DurableContentStore::open(Arc::clone(&wal_vfs) as _, cfg.clone()).expect("reopen");
        assert_eq!(report.wal_records_replayed, replay_records);
    });
    let wal_replay_ops_per_s = replay_records as f64 / replay_median;

    // Cold recovery: a checkpointed store with a live WAL suffix and a
    // torn tail, recovered once (manifest + replay + full content
    // sweep), timed wall-clock like the end-to-end runs. The fork
    // keeps the timed run from mutating the recorded medium.
    let (rec_blobs, rec_len) = if quick {
        (256, 4 * 1024)
    } else {
        (2048, 8 * 1024)
    };
    let rec_vfs = Arc::new(MemFs::new());
    let mut rec_cfg = DurableConfig::named("rec");
    rec_cfg.checkpoint_every_ops = 0;
    let live_wal = {
        let (store, _) =
            DurableContentStore::open(Arc::clone(&rec_vfs) as _, rec_cfg.clone()).expect("fresh");
        for i in 0..rec_blobs {
            store
                .put(&xpl_pkg::content::generate(2000 + i as u64, rec_len))
                .expect("bench put");
            if i == rec_blobs / 2 {
                store.checkpoint().expect("bench checkpoint");
            }
        }
        store.wal_file() // the post-checkpoint generation
    };
    rec_vfs.inject_torn_tail(&live_wal, &[0xA5; 13]);
    let timed = rec_vfs.fork();
    let t0 = Instant::now();
    let (recovered, report) =
        DurableContentStore::open(Arc::new(timed) as _, rec_cfg).expect("recovery");
    assert!(report.torn_wal_tail, "torn tail must be detected");
    let verified = recovered.deep_verify().expect("recovered content verifies");
    let recovery_wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(verified, rec_blobs);

    PersistBench {
        segment_append_mib_per_s,
        wal_replay_ops_per_s,
        wal_replay_records: replay_records,
        recovery_wall_s,
        recovery_blobs: verified,
    }
}

/// Validate a `BENCH.json` produced by [`run_microbench`]: every
/// throughput field present and nonzero, the blocked range read
/// touching a small fraction of the container, and — only where the
/// section's pool had more than one *effective* worker
/// (`min(threads, host_cpus)`) — the parallel paths actually faster.
/// Speedup assertions are skipped on single-core hosts, where a pool
/// of N workers cannot beat one and a `< 1.0` "speedup" is scheduler
/// noise, not a regression. Used by CI as a sanity gate (machines vary
/// too much for a hard regression threshold).
pub fn check_report_json(json: &str) -> Result<(), String> {
    let v: serde::Json =
        serde_json::from_str(json).map_err(|e| format!("unparseable BENCH.json: {e:?}"))?;
    let schema = v
        .get("schema_version")
        .and_then(|s| s.as_f64())
        .ok_or("missing schema_version")?;
    if schema != 7.0 {
        return Err(format!("unsupported schema_version {schema} (expected 7)"));
    }
    let kernels = v
        .get("kernels")
        .and_then(|k| k.as_arr())
        .ok_or("missing kernels array")?;
    let expected = [
        "sha256",
        "crc32",
        "deflate",
        "inflate",
        "deflate-corpus",
        "chunk-cdc",
        "lz4-compress",
        "lz4-decompress",
        "blocked-inflate-1t",
        "blocked-inflate-nt",
        "range-read",
        "hot-range-read",
    ];
    for name in expected {
        let k = kernels
            .iter()
            .find(|k| k.get("name").and_then(|n| n.as_str()) == Some(name))
            .ok_or_else(|| format!("kernel {name} missing"))?;
        let thpt = k
            .get("mib_per_s")
            .and_then(|t| t.as_f64())
            .ok_or_else(|| format!("kernel {name}: mib_per_s missing"))?;
        if !(thpt.is_finite() && thpt > 0.0) {
            return Err(format!("kernel {name}: throughput {thpt} not positive"));
        }
    }
    for path in [
        ("parallel", "one_thread_mib_per_s"),
        ("parallel", "n_thread_mib_per_s"),
        ("parallel", "speedup"),
        ("blocked", "single_stream_inflate_mib_per_s"),
        ("blocked", "blocked_inflate_1t_mib_per_s"),
        ("blocked", "blocked_inflate_nt_mib_per_s"),
        ("blocked", "inflate_speedup"),
        ("blocked", "range_read_mib_per_s"),
        ("codec", "inflate_mib_per_s"),
        ("codec", "lz4_decompress_mib_per_s"),
        ("codec", "decode_speedup"),
        ("codec", "hot_range_read_mib_per_s"),
        ("persist", "segment_append_mib_per_s"),
        ("persist", "wal_replay_ops_per_s"),
        ("persist", "recovery_wall_s"),
        ("serving", "p50_latency_ms"),
        ("serving", "sustained_ops_per_s"),
        ("serving", "fairness_max_min_served"),
        ("metrics_overhead", "plain_wall_s"),
        ("metrics_overhead", "metrics_wall_s"),
    ] {
        let t = v
            .get(path.0)
            .and_then(|p| p.get(path.1))
            .and_then(|t| t.as_f64())
            .ok_or_else(|| format!("{}/{} missing", path.0, path.1))?;
        if !(t.is_finite() && t > 0.0) {
            return Err(format!("{}/{}: {t} not positive", path.0, path.1));
        }
    }
    for field in [
        "publish_wall_s",
        "five_store_publish_sequential_wall_s",
        "five_store_publish_concurrent_wall_s",
        "five_store_publish_speedup",
        "churn_wall_s",
    ] {
        let t = v
            .get("end_to_end")
            .and_then(|e| e.get(field))
            .and_then(|t| t.as_f64())
            .ok_or_else(|| format!("end_to_end/{field} missing"))?;
        if !(t.is_finite() && t > 0.0) {
            return Err(format!("end_to_end/{field}: {t} not positive"));
        }
    }

    // The observability-tax gate: with real parallelism available the
    // metrics leg must stay within 5% of the bare leg. Single-core
    // hosts (gated=false) are exempt — one preempted timeslice there
    // dwarfs any counter cost.
    let mo = v
        .get("metrics_overhead")
        .ok_or("metrics_overhead missing")?;
    let gated = mo.get("gated").and_then(|g| g.as_bool()).unwrap_or(false);
    let overhead = mo
        .get("overhead_frac")
        .and_then(|x| x.as_f64())
        .ok_or("metrics_overhead/overhead_frac missing")?;
    if !overhead.is_finite() {
        return Err(format!("metrics_overhead/overhead_frac: {overhead}"));
    }
    if gated && overhead >= 0.05 {
        return Err(format!(
            "metrics registry costs {:.1}% churn wall (>= 5% gate)",
            overhead * 100.0
        ));
    }

    // Structural random-access claim, host-independent: the standard
    // run's range read must inflate well under 1/8 of the container
    // (the quick run's container is too small for the 1/8 bound to be
    // meaningful, so only nonzero/coverage is asserted there).
    let usize_at = |section: &str, field: &str| -> Result<usize, String> {
        v.get(section)
            .and_then(|s| s.get(field))
            .and_then(|x| x.as_f64())
            .map(|x| x as usize)
            .ok_or_else(|| format!("{section}/{field} missing"))
    };
    let touched = usize_at("blocked", "range_blocks_touched")?;
    let total = usize_at("blocked", "range_blocks_total")?;
    let quick = v.get("quick").and_then(|q| q.as_bool()).unwrap_or(false);
    if touched == 0 || total == 0 {
        return Err(format!(
            "blocked range read touched {touched} of {total} blocks"
        ));
    }
    if !quick && touched * 8 >= total {
        return Err(format!(
            "blocked range read touched {touched} of {total} blocks — not random access"
        ));
    }

    // Codec-tier claims, host-independent where possible. Both ratios
    // must show real compression of the synthetic payload, and the fast
    // codec must decode faster than DEFLATE — by at least 3× on a full
    // (non-quick) run, the acceptance floor for the hot tier. The quick
    // run only requires >1× (tiny payloads are timer-noise territory).
    for field in ["deflate_ratio", "lz4_ratio"] {
        let ratio = v
            .get("codec")
            .and_then(|c| c.get(field))
            .and_then(|x| x.as_f64())
            .ok_or_else(|| format!("codec/{field} missing"))?;
        if !(ratio > 0.0 && ratio < 1.0) {
            return Err(format!("codec/{field}: {ratio} out of (0, 1)"));
        }
    }
    v.get("codec")
        .and_then(|c| c.get("blocked_codec"))
        .and_then(|x| x.as_str())
        .filter(|name| ["blocked-deflate", "blocked-lz4"].contains(name))
        .ok_or("codec/blocked_codec missing or unknown")?;
    let speedup = v
        .get("codec")
        .and_then(|c| c.get("decode_speedup"))
        .and_then(|x| x.as_f64())
        .unwrap_or(0.0);
    let floor = if quick { 1.0 } else { 3.0 };
    if speedup < floor {
        return Err(format!(
            "fast-codec decode speedup {speedup:.2}× below the {floor}× floor \
             over DEFLATE inflate"
        ));
    }

    // Speedup assertions, gated on the effective worker count.
    let effective = |section: &str| -> usize {
        let threads = usize_at(section, "threads").unwrap_or(1);
        let cpus = usize_at(section, "host_cpus").unwrap_or(1);
        threads.min(cpus)
    };
    if effective("parallel") > 1 {
        let speedup = v
            .get("parallel")
            .and_then(|p| p.get("speedup"))
            .and_then(|x| x.as_f64())
            .unwrap_or(0.0);
        if speedup <= 1.0 {
            return Err(format!(
                "parallel gzip speedup {speedup:.2} on a multi-core pool"
            ));
        }
    }
    if effective("blocked") > 1 {
        let nt = v
            .get("blocked")
            .and_then(|b| b.get("blocked_inflate_nt_mib_per_s"))
            .and_then(|x| x.as_f64())
            .unwrap_or(0.0);
        let ss = v
            .get("blocked")
            .and_then(|b| b.get("single_stream_inflate_mib_per_s"))
            .and_then(|x| x.as_f64())
            .unwrap_or(f64::MAX);
        if nt <= ss {
            return Err(format!(
                "blocked inflate {nt:.1} MiB/s does not beat single-stream {ss:.1} \
                 MiB/s on a multi-core pool"
            ));
        }
    }

    // Serving gates. The request-log fingerprint must always be there
    // (it is the cross-thread determinism witness CI diffs); the p99
    // ordering and the coalescing claim are checked only when the
    // replay pool had more than one effective worker — the shapes are
    // tuned for saturated multi-worker runs, and a single-core host is
    // not the configuration the claim is about.
    let log = v
        .get("serving")
        .and_then(|s| s.get("request_log_sha256"))
        .and_then(|x| x.as_str())
        .ok_or("serving/request_log_sha256 missing")?;
    if log.len() != 64 || !log.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("serving/request_log_sha256 malformed: {log:?}"));
    }
    if effective("serving") > 1 {
        let p50 = v
            .get("serving")
            .and_then(|s| s.get("p50_latency_ms"))
            .and_then(|x| x.as_f64())
            .unwrap_or(0.0);
        let p99 = v
            .get("serving")
            .and_then(|s| s.get("p99_latency_ms"))
            .and_then(|x| x.as_f64())
            .unwrap_or(0.0);
        if !(p99.is_finite() && p99 >= p50) {
            return Err(format!("serving p99 {p99} ms below p50 {p50} ms"));
        }
        let hit_rate = v
            .get("serving")
            .and_then(|s| s.get("coalescing_hit_rate"))
            .and_then(|x| x.as_f64())
            .unwrap_or(0.0);
        if !(hit_rate > 0.0 && hit_rate < 1.0) {
            return Err(format!(
                "serving coalescing hit-rate {hit_rate} out of (0, 1) under a \
                 saturated Zipf load"
            ));
        }
    }
    Ok(())
}

/// Plain-text rendering for the console.
pub fn render(report: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "BENCH (schema v{}, {} cpus{})",
        report.schema_version,
        report.host_cpus,
        if report.quick { ", quick" } else { "" }
    );
    let _ = writeln!(
        s,
        "{:<16} {:>12} {:>8} {:>14} {:>12}",
        "kernel", "bytes", "iters", "median", "MiB/s"
    );
    for k in &report.kernels {
        let _ = writeln!(
            s,
            "{:<16} {:>12} {:>8} {:>12.3}ms {:>12.1}",
            k.name,
            k.input_bytes,
            k.iterations,
            k.median_seconds * 1e3,
            k.mib_per_s
        );
    }
    let p = &report.parallel;
    let _ = writeln!(
        s,
        "gzip-parallel    {:>12} bytes  1-thread {:.1} MiB/s, {}-thread {:.1} MiB/s, speedup {:.2}x",
        p.input_bytes, p.one_thread_mib_per_s, p.threads, p.n_thread_mib_per_s, p.speedup
    );
    let b = &report.blocked;
    let _ = writeln!(
        s,
        "blocked-codec    {:>12} bytes  single-stream {:.1} MiB/s, 1t {:.1}, {}t {:.1} \
         ({:.2}x), range {} B touched {}/{} blocks at {:.1} MiB/s",
        b.input_bytes,
        b.single_stream_inflate_mib_per_s,
        b.blocked_inflate_1t_mib_per_s,
        b.threads,
        b.blocked_inflate_nt_mib_per_s,
        b.inflate_speedup,
        b.range_len,
        b.range_blocks_touched,
        b.range_blocks_total,
        b.range_read_mib_per_s
    );
    let c = &report.codec;
    let _ = writeln!(
        s,
        "codec-tiers      {} container; ratios deflate {:.3} / lz4 {:.3}; decode \
         inflate {:.1} MiB/s vs lz4 {:.1} MiB/s ({:.1}x), hot range read {:.1} MiB/s",
        c.blocked_codec,
        c.deflate_ratio,
        c.lz4_ratio,
        c.inflate_mib_per_s,
        c.lz4_decompress_mib_per_s,
        c.decode_speedup,
        c.hot_range_read_mib_per_s
    );
    let d = &report.persist;
    let _ = writeln!(
        s,
        "persist          segment-append {:.1} MiB/s, WAL replay {:.0} ops/s ({} records), \
         recovery {:.3}s ({} blobs)",
        d.segment_append_mib_per_s,
        d.wal_replay_ops_per_s,
        d.wal_replay_records,
        d.recovery_wall_s,
        d.recovery_blobs
    );
    let v = &report.serving;
    let _ = writeln!(
        s,
        "serving          {} reqs / {} tenants / {} servers: p50 {:.3}ms p99 {:.3}ms \
         (virtual), {:.0} store-hits/s wall, coalesce {:.3}, fairness {:.2}",
        v.requests,
        v.tenants,
        v.servers,
        v.p50_latency_ms,
        v.p99_latency_ms,
        v.sustained_ops_per_s,
        v.coalescing_hit_rate,
        v.fairness_max_min_served
    );
    let e = &report.end_to_end;
    let _ = writeln!(
        s,
        "publish          {} images in {:.3}s",
        e.publish_images, e.publish_wall_s
    );
    let _ = writeln!(
        s,
        "publish-5-store  sequential {:.3}s, concurrent {:.3}s, speedup {:.2}x",
        e.five_store_publish_sequential_wall_s,
        e.five_store_publish_concurrent_wall_s,
        e.five_store_publish_speedup
    );
    let _ = writeln!(
        s,
        "churn            {} ops ({} scale) in {:.3}s",
        e.churn_ops, e.churn_scale, e.churn_wall_s
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_validates() {
        let report = run_microbench(true);
        assert!(report.kernels.len() >= 12);
        for k in &report.kernels {
            assert!(k.mib_per_s > 0.0, "{} throughput must be positive", k.name);
        }
        assert!(report.blocked.range_blocks_touched > 0);
        assert!(report.blocked.range_blocks_touched < report.blocked.range_blocks_total);
        assert_eq!(report.parallel.host_cpus, report.blocked.host_cpus);
        assert_eq!(report.codec.blocked_codec, "blocked-deflate");
        assert!(report.codec.deflate_ratio > 0.0 && report.codec.deflate_ratio < 1.0);
        assert!(report.codec.lz4_ratio > 0.0 && report.codec.lz4_ratio < 1.0);
        assert!(report.codec.decode_speedup > 0.0);
        assert!(report.codec.hot_range_read_mib_per_s > 0.0);
        let json = serde_json::to_string_pretty(&report).unwrap();
        check_report_json(&json).expect("self-check must pass");
        let text = render(&report);
        assert!(text.contains("gzip-parallel"));
        assert!(text.contains("blocked-codec"));
        assert!(text.contains("codec-tiers"));
        assert!(text.contains("serving"));
        assert_eq!(report.serving.request_log_sha256.len(), 64);
    }

    #[test]
    fn bench_accepts_the_lz4_container_codec() {
        // `repro bench --codec lz4` swaps the blocked section's inner
        // codec; the report must still self-validate and record which
        // container it measured.
        let report = run_microbench_codec(true, InnerCodec::Lz4);
        assert_eq!(report.codec.blocked_codec, "blocked-lz4");
        let json = serde_json::to_string_pretty(&report).unwrap();
        check_report_json(&json).expect("lz4-container self-check must pass");
    }

    #[test]
    fn check_rejects_missing_and_zero_fields() {
        assert!(check_report_json("{}").is_err());
        assert!(check_report_json("not json").is_err());
        let report = run_microbench(true);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let broken = json.replacen("\"mib_per_s\"", "\"mib_per_s_gone\"", 1);
        assert!(check_report_json(&broken).is_err());
    }
}
