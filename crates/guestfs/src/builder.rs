//! `virt-builder`-style image construction.
//!
//! A [`BaseTemplate`] captures a distribution's base install (attribute
//! quadruple + base package set + the shared base file layer); an
//! [`ImageRecipe`] names primary packages and user data; the
//! [`ImageBuilder`] resolves the recipe against a catalog and produces a
//! ready [`Vmi`] with a materialized disk.

use crate::fstree::{FileOwner, FileRecord, FsTree};
use crate::vmi::Vmi;
use xpl_pkg::dpkgdb::InstallReason;
use xpl_pkg::{BaseImageAttrs, Catalog, DpkgDb, PackageId, ResolveError};
use xpl_util::{FxHashSet, IStr, SplitMix64};

/// A distribution base install shared by many images.
#[derive(Clone)]
pub struct BaseTemplate {
    pub attrs: BaseImageAttrs,
    /// Install closure of the base system (essential set and friends).
    pub base_packages: Vec<PackageId>,
    /// The shared base file layer (base package files + system files).
    pub base_layer: crate::fstree::FsLayer,
}

impl BaseTemplate {
    /// Build a template from the catalog: the closure of
    /// `base_package_names` plus `extra_system_files` generated
    /// deterministically (boot blobs, caches, locale archives — content
    /// the package manager does not own).
    pub fn build(
        catalog: &Catalog,
        attrs: BaseImageAttrs,
        base_package_names: &[&str],
        extra_system_files: &[(String, u32)],
        seed: u64,
    ) -> Result<BaseTemplate, ResolveError> {
        let roots: Vec<PackageId> = base_package_names
            .iter()
            .map(|n| {
                catalog
                    .newest(n)
                    .ok_or_else(|| ResolveError::UnknownPackage(IStr::new(n)))
            })
            .collect::<Result<_, _>>()?;
        let closure = catalog.install_closure(&roots, attrs.arch)?;

        let mut records: Vec<FileRecord> = Vec::new();
        let mut seen: FxHashSet<IStr> = FxHashSet::default();
        for &id in &closure {
            for f in &catalog.get(id).manifest.files {
                // First package to claim a path wins (same as dpkg).
                if seen.insert(f.path) {
                    records.push(FileRecord {
                        path: f.path,
                        size: f.size,
                        seed: f.seed,
                        owner: FileOwner::Package(id),
                    });
                }
            }
        }
        let rng = SplitMix64::new(seed);
        for (path, size) in extra_system_files {
            let path_i = IStr::new(path);
            if seen.insert(path_i) {
                let mut file_rng = rng.derive(path);
                records.push(FileRecord {
                    path: path_i,
                    size: *size,
                    seed: file_rng.next_u64(),
                    owner: FileOwner::System,
                });
            }
        }
        Ok(BaseTemplate {
            attrs,
            base_packages: closure,
            base_layer: crate::fstree::layer_from(records),
        })
    }

    /// Total bytes of the base layer.
    pub fn base_bytes(&self) -> u64 {
        self.base_layer.iter().map(|r| r.size as u64).sum()
    }
}

/// A group of "junk" files: package caches, logs, tmp — content that
/// mounts (and file-level stores) see, but that semantic decomposition
/// discards. Groups with equal seeds produce identical files (dedupable
/// across images); per-image seeds model image-unique noise.
#[derive(Clone, Debug)]
pub struct JunkGroup {
    /// Total materialized bytes.
    pub bytes: u64,
    pub files: u32,
    pub seed: u64,
}

/// What to build on top of a base template.
#[derive(Clone, Debug)]
pub struct ImageRecipe {
    pub name: String,
    /// Primary package names (resolved to newest matching versions).
    pub primary: Vec<String>,
    /// Pinned versions: `(name, version)` overrides for successive-build
    /// workloads. Applied when a primary name matches.
    pub pinned: Vec<(String, xpl_pkg::Version)>,
    /// User-data volume (materialized bytes) and its content seed.
    pub user_data_bytes: u64,
    pub user_data_seed: u64,
    /// Cache/log/tmp noise in the image.
    pub junk: Vec<JunkGroup>,
}

impl ImageRecipe {
    pub fn new(name: &str, primary: &[&str]) -> Self {
        ImageRecipe {
            name: name.to_string(),
            primary: primary.iter().map(|s| s.to_string()).collect(),
            pinned: Vec::new(),
            user_data_bytes: 0,
            user_data_seed: 0,
            junk: Vec::new(),
        }
    }

    pub fn with_user_data(mut self, bytes: u64, seed: u64) -> Self {
        self.user_data_bytes = bytes;
        self.user_data_seed = seed;
        self
    }

    pub fn with_pin(mut self, name: &str, version: xpl_pkg::Version) -> Self {
        self.pinned.push((name.to_string(), version));
        self
    }

    pub fn with_junk(mut self, bytes: u64, files: u32, seed: u64) -> Self {
        self.junk.push(JunkGroup { bytes, files, seed });
        self
    }
}

/// The builder.
pub struct ImageBuilder<'a> {
    pub catalog: &'a Catalog,
    pub template: &'a BaseTemplate,
}

impl<'a> ImageBuilder<'a> {
    pub fn new(catalog: &'a Catalog, template: &'a BaseTemplate) -> Self {
        ImageBuilder { catalog, template }
    }

    /// Build an image from a recipe.
    pub fn build(&self, recipe: &ImageRecipe) -> Result<Vmi, ResolveError> {
        let catalog = self.catalog;
        let host = self.template.attrs.arch;

        // 1. Base install.
        let mut fs = FsTree::with_base(std::sync::Arc::clone(&self.template.base_layer));
        let mut pkgdb = DpkgDb::new();
        for &id in &self.template.base_packages {
            let reason = if catalog.get(id).essential {
                InstallReason::Manual
            } else {
                InstallReason::Auto
            };
            pkgdb.install(catalog, id, reason);
        }

        // 2. Resolve primary packages (respecting pins).
        let mut primary_ids: Vec<PackageId> = Vec::with_capacity(recipe.primary.len());
        for name in &recipe.primary {
            let pinned = recipe.pinned.iter().find(|(n, _)| n == name);
            let id = match pinned {
                Some((_, v)) => catalog.best_match(
                    IStr::new(name),
                    &xpl_pkg::VersionReq::Exact(v.clone()),
                    host,
                )?,
                None => catalog.best_match(IStr::new(name), &xpl_pkg::VersionReq::Any, host)?,
            };
            primary_ids.push(id);
        }

        // 3. Install the primary closure (skipping what the base supplies).
        let installed_names: FxHashSet<IStr> = self
            .template
            .base_packages
            .iter()
            .map(|&id| catalog.get(id).name)
            .collect();
        let closure = catalog.install_closure(&primary_ids, host)?;
        let primary_set: FxHashSet<PackageId> = primary_ids.iter().copied().collect();
        let mut vmi = Vmi {
            name: recipe.name.clone(),
            base: self.template.attrs.clone(),
            fs: FsTree::new(),
            pkgdb: DpkgDb::new(),
            primary: primary_ids.clone(),
            disk: xpl_vdisk::QcowImage::create(&recipe.name, 0),
        };
        std::mem::swap(&mut vmi.fs, &mut fs);
        std::mem::swap(&mut vmi.pkgdb, &mut pkgdb);
        for &id in &closure {
            let name = catalog.get(id).name;
            let is_primary = primary_set.contains(&id);
            if installed_names.contains(&name) && !is_primary {
                // Dependency already satisfied by the base install.
                continue;
            }
            let reason = if is_primary {
                InstallReason::Manual
            } else {
                InstallReason::Auto
            };
            vmi.install_package_raw(catalog, id, reason);
        }

        // 4. User data.
        if recipe.user_data_bytes > 0 {
            let rng = SplitMix64::new(recipe.user_data_seed);
            let mut remaining = recipe.user_data_bytes;
            let mut i = 0;
            while remaining > 0 {
                let size = remaining.clamp(1, 2048) as u32;
                let mut frng = rng.derive(&format!("user-{i}"));
                vmi.fs.add_file(FileRecord {
                    path: IStr::new(&format!("/home/user/data/{}-{i}.bin", recipe.name)),
                    size,
                    seed: frng.next_u64(),
                    owner: FileOwner::UserData,
                });
                remaining -= size as u64;
                i += 1;
            }
        }

        // 5. Junk (caches/logs/tmp). Paths are derived from the group
        // seed, so equal seeds yield identical files across images.
        for (gi, group) in recipe.junk.iter().enumerate() {
            let rng = SplitMix64::new(group.seed ^ 0x4A554E4B);
            let files = group.files.max(1);
            let per = (group.bytes / files as u64).max(1);
            for i in 0..files {
                let dir = match i % 3 {
                    0 => "/var/cache/apt/archives",
                    1 => "/var/log/journal",
                    _ => "/tmp/build",
                };
                let mut frng = rng.derive(&format!("junk-{gi}-{i}"));
                let tag = frng.next_u64();
                let size = if i + 1 == files {
                    group.bytes - per * (files as u64 - 1)
                } else {
                    per
                };
                vmi.fs.add_file(FileRecord {
                    path: IStr::new(&format!("{dir}/j{tag:016x}")),
                    size: size.min(u32::MAX as u64) as u32,
                    seed: tag,
                    owner: FileOwner::System,
                });
            }
        }

        // 6. Status file + disk.
        vmi.refresh_status_file(catalog);
        vmi.rebuild_disk();
        Ok(vmi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_pkg::catalog::PackageSpec;
    use xpl_pkg::meta::{Dependency, FileManifest, PkgFile, Section};
    use xpl_pkg::{Arch, Version};

    fn spec(
        name: &str,
        version: &str,
        essential: bool,
        files: Vec<PkgFile>,
        deps: Vec<Dependency>,
    ) -> PackageSpec {
        let installed: u64 = files.iter().map(|f| f.size as u64).sum();
        PackageSpec {
            name: name.to_string(),
            version: Version::parse(version),
            arch: Arch::Amd64,
            section: Section::Misc,
            essential,
            deb_size: installed / 3 + 1,
            installed_size: installed,
            depends: deps,
            manifest: FileManifest { files },
        }
    }

    fn pf(path: &str, size: u32, seed: u64) -> PkgFile {
        PkgFile {
            path: IStr::new(path),
            size,
            seed,
        }
    }

    fn world() -> (Catalog, BaseTemplate) {
        let mut c = Catalog::new();
        c.add(spec(
            "libc6",
            "2.23",
            true,
            vec![pf("/lib/libc.so", 1800, 1)],
            vec![],
        ));
        c.add(spec(
            "coreutils",
            "8.25",
            true,
            vec![pf("/bin/ls", 120, 2), pf("/bin/cat", 50, 3)],
            vec![Dependency::any("libc6")],
        ));
        c.add(spec(
            "libssl",
            "1.0.2",
            false,
            vec![pf("/usr/lib/libssl.so", 400, 4)],
            vec![Dependency::any("libc6")],
        ));
        c.add(spec(
            "redis",
            "3.0.6",
            false,
            vec![pf("/usr/bin/redis-server", 700, 5)],
            vec![Dependency::any("libssl")],
        ));
        let t = BaseTemplate::build(
            &c,
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            &["coreutils"],
            &[("/boot/vmlinuz".to_string(), 900)],
            77,
        )
        .unwrap();
        (c, t)
    }

    #[test]
    fn base_template_contains_closure_files() {
        let (_c, t) = world();
        // coreutils + libc6 files + boot blob.
        assert_eq!(t.base_layer.len(), 4);
        assert_eq!(t.base_packages.len(), 2);
        assert_eq!(t.base_bytes(), 1800 + 120 + 50 + 900);
    }

    #[test]
    fn build_minimal_image() {
        let (c, t) = world();
        let vmi = ImageBuilder::new(&c, &t)
            .build(&ImageRecipe::new("mini", &[]))
            .unwrap();
        assert_eq!(vmi.primary.len(), 0);
        assert_eq!(vmi.pkgdb.len(), 2);
        // files: 4 base + status file.
        assert_eq!(vmi.file_count(), 5);
        assert!(vmi.disk_bytes() > 0);
    }

    #[test]
    fn build_with_primary_installs_closure() {
        let (c, t) = world();
        let vmi = ImageBuilder::new(&c, &t)
            .build(&ImageRecipe::new("redis", &["redis"]))
            .unwrap();
        assert!(vmi.pkgdb.is_installed(IStr::new("redis")));
        assert!(vmi.pkgdb.is_installed(IStr::new("libssl")));
        assert_eq!(
            vmi.pkgdb.reason_of(IStr::new("redis")),
            Some(xpl_pkg::dpkgdb::InstallReason::Manual)
        );
        assert_eq!(
            vmi.pkgdb.reason_of(IStr::new("libssl")),
            Some(xpl_pkg::dpkgdb::InstallReason::Auto)
        );
        // Base-satisfied dependency (libc6) not re-installed.
        assert!(vmi.pkgdb.is_installed(IStr::new("libc6")));
    }

    #[test]
    fn user_data_materializes() {
        let (c, t) = world();
        let recipe = ImageRecipe::new("data", &[]).with_user_data(5000, 99);
        let vmi = ImageBuilder::new(&c, &t).build(&recipe).unwrap();
        assert_eq!(vmi.user_data_bytes(), 5000);
        assert!(vmi.user_data_files().len() >= 3);
    }

    #[test]
    fn pinned_version_respected() {
        let (mut c, _) = world();
        c.add(spec(
            "redis",
            "4.0.1",
            false,
            vec![pf("/usr/bin/redis-server", 750, 6)],
            vec![],
        ));
        let t = BaseTemplate::build(
            &c,
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            &["coreutils"],
            &[],
            77,
        )
        .unwrap();
        let pinned = ImageRecipe::new("r3", &["redis"]).with_pin("redis", Version::parse("3.0.6"));
        let vmi = ImageBuilder::new(&c, &t).build(&pinned).unwrap();
        let set = vmi.installed_package_set(&c);
        assert!(set.iter().any(|s| s.starts_with("redis=3.0.6")), "{set:?}");

        let latest = ImageBuilder::new(&c, &t)
            .build(&ImageRecipe::new("r4", &["redis"]))
            .unwrap();
        let set = latest.installed_package_set(&c);
        assert!(set.iter().any(|s| s.starts_with("redis=4.0.1")), "{set:?}");
    }

    #[test]
    fn identical_recipes_identical_disks() {
        let (c, t) = world();
        let b = ImageBuilder::new(&c, &t);
        let r = ImageRecipe::new("same", &["redis"]).with_user_data(1000, 5);
        let v1 = b.build(&r).unwrap();
        let v2 = b.build(&r).unwrap();
        assert_eq!(v1.disk.serialize(), v2.disk.serialize());
    }

    #[test]
    fn unknown_primary_errors() {
        let (c, t) = world();
        let err = ImageBuilder::new(&c, &t).build(&ImageRecipe::new("x", &["ghost"]));
        assert!(err.is_err());
    }
}
