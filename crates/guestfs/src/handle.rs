//! The libguestfs-like charged access handle.
//!
//! Every Expelliarmus publish/retrieve in the paper starts by configuring
//! and launching a `guestfs` handle (a minimal qemu appliance boot, ~7 s);
//! package operations then run *through the guest*, so their costs follow
//! installed sizes. [`GuestHandle`] reproduces that interface and charges
//! the [`xpl_simio::SimEnv`] cost table.

use crate::vmi::Vmi;
use xpl_pkg::dpkgdb::InstallReason;
use xpl_pkg::{Catalog, DebPackage, PackageId};
use xpl_simio::{SimDuration, SimEnv};
use xpl_util::IStr;

/// A launched handle over one VMI.
pub struct GuestHandle<'a> {
    vmi: &'a mut Vmi,
    env: SimEnv,
}

impl<'a> GuestHandle<'a> {
    /// Configure + launch (charges `guestfs_launch`).
    pub fn launch(env: &SimEnv, vmi: &'a mut Vmi) -> Self {
        env.local.charge_fixed(env.costs.guestfs_launch);
        GuestHandle {
            vmi,
            env: env.clone(),
        }
    }

    pub fn vmi(&self) -> &Vmi {
        self.vmi
    }

    pub fn vmi_mut(&mut self) -> &mut Vmi {
        self.vmi
    }

    /// Query the installed package list through the guest package manager
    /// (`dpkg -l`-class work, charged per package).
    pub fn installed_packages(&self, _catalog: &Catalog) -> Vec<PackageId> {
        let ids = self.vmi.pkgdb.installed_ids();
        self.env
            .local
            .charge_fixed(SimDuration(self.env.costs.pkg_query.0 * ids.len() as u64));
        ids
    }

    /// Install a package (files + DB + status refresh), charged by
    /// installed size. Returns the charged duration.
    pub fn install_package(
        &mut self,
        catalog: &Catalog,
        id: PackageId,
        reason: InstallReason,
    ) -> SimDuration {
        let installed = catalog.get(id).installed_size;
        let d = self.env.costs.pkg_install(installed);
        self.env.local.charge_fixed(d);
        self.vmi.install_package_raw(catalog, id, reason);
        d
    }

    /// Remove a package by name, charged by the bytes removed.
    pub fn remove_package(&mut self, _catalog: &Catalog, name: IStr) -> SimDuration {
        let removed = self.vmi.remove_package_raw(name);
        let d = self.env.costs.pkg_remove(removed);
        self.env.local.charge_fixed(d);
        d
    }

    /// Remove every auto-installed package no longer required by a manual
    /// one (`apt autoremove`); returns the removed ids.
    pub fn autoremove(&mut self, catalog: &Catalog) -> Vec<PackageId> {
        let mut all_removed = Vec::new();
        // Iterate to a fixed point: removing one package can orphan others.
        while let Ok(unused) = self
            .vmi
            .pkgdb
            .unused_dependencies(catalog, self.vmi.base.arch)
        {
            if unused.is_empty() {
                break;
            }
            for id in unused {
                let name = catalog.get(id).name;
                self.remove_package(catalog, name);
                all_removed.push(id);
            }
        }
        all_removed
    }

    /// Rebuild the binary package for an installed package
    /// (`dpkg-repack`): charged by *installed* size, which the paper
    /// identifies as the dominant publish cost.
    pub fn export_deb(&self, catalog: &Catalog, id: PackageId) -> DebPackage {
        let installed = catalog.get(id).installed_size;
        self.env
            .local
            .charge_fixed(self.env.costs.deb_build(installed));
        xpl_pkg::deb::build_deb(catalog, id)
    }

    /// `virt-sysprep`-style reset: drop user data, caches and logs;
    /// charges the fixed reset cost.
    pub fn sysprep_reset(&mut self) -> u64 {
        self.env.local.charge_fixed(self.env.costs.sysprep_reset);
        self.vmi.fs.remove_user_data() + self.vmi.fs.remove_junk()
    }

    /// Refresh the dpkg status file after package operations.
    pub fn refresh_status(&mut self, catalog: &Catalog) {
        self.vmi.refresh_status_file(catalog);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fstree::{FileOwner, FileRecord, FsTree};
    use xpl_pkg::catalog::PackageSpec;
    use xpl_pkg::meta::{Dependency, FileManifest, PkgFile, Section};
    use xpl_pkg::{Arch, BaseImageAttrs, DpkgDb, Version};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(PackageSpec {
            name: "libhiredis".into(),
            version: Version::parse("0.14"),
            arch: Arch::Amd64,
            section: Section::Libs,
            essential: false,
            deb_size: 40,
            installed_size: 120,
            depends: vec![],
            manifest: FileManifest {
                files: vec![PkgFile {
                    path: IStr::new("/usr/lib/libhiredis.so"),
                    size: 120,
                    seed: 1,
                }],
            },
        });
        c.add(PackageSpec {
            name: "redis".into(),
            version: Version::parse("6.0"),
            arch: Arch::Amd64,
            section: Section::Databases,
            essential: false,
            deb_size: 100,
            installed_size: 400,
            depends: vec![Dependency::any("libhiredis")],
            manifest: FileManifest {
                files: vec![PkgFile {
                    path: IStr::new("/usr/bin/redis"),
                    size: 400,
                    seed: 2,
                }],
            },
        });
        c
    }

    fn fresh_vmi() -> Vmi {
        Vmi::assemble(
            "t",
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            FsTree::new(),
            DpkgDb::new(),
            vec![],
        )
    }

    #[test]
    fn launch_charges_fixed_cost() {
        let env = SimEnv::testbed();
        let mut vmi = fresh_vmi();
        let t0 = env.clock.now();
        let _h = GuestHandle::launch(&env, &mut vmi);
        let dt = env.clock.since(t0).as_secs_f64();
        assert!((6.5..7.5).contains(&dt), "{dt}");
    }

    #[test]
    fn install_charges_by_installed_size() {
        let env = SimEnv::testbed();
        let c = catalog();
        let redis = c.newest("redis").unwrap();
        let lib = c.newest("libhiredis").unwrap();
        let mut vmi = fresh_vmi();
        let mut h = GuestHandle::launch(&env, &mut vmi);
        let big = h.install_package(&c, redis, InstallReason::Manual);
        let small = h.install_package(&c, lib, InstallReason::Auto);
        assert!(big > small);
        assert_eq!(h.vmi().file_count(), 2);
    }

    #[test]
    fn autoremove_iterates_to_fixpoint() {
        let env = SimEnv::free();
        let c = catalog();
        let redis = c.newest("redis").unwrap();
        let lib = c.newest("libhiredis").unwrap();
        let mut vmi = fresh_vmi();
        let mut h = GuestHandle::launch(&env, &mut vmi);
        h.install_package(&c, redis, InstallReason::Manual);
        h.install_package(&c, lib, InstallReason::Auto);
        // Remove the primary, then autoremove should clear the orphan lib.
        h.remove_package(&c, IStr::new("redis"));
        let removed = h.autoremove(&c);
        assert_eq!(removed.len(), 1);
        assert_eq!(h.vmi().file_count(), 0);
    }

    #[test]
    fn export_deb_returns_deterministic_package() {
        let env = SimEnv::free();
        let c = catalog();
        let redis = c.newest("redis").unwrap();
        let mut vmi = fresh_vmi();
        let h = GuestHandle::launch(&env, &mut vmi);
        let a = h.export_deb(&c, redis);
        let b = h.export_deb(&c, redis);
        assert_eq!(a.digest, b.digest);
        // Archive is at least deb_size (header can exceed it for tiny
        // packages).
        assert!(a.bytes.len() as u64 >= c.get(redis).deb_size);
    }

    #[test]
    fn sysprep_drops_user_data_and_charges() {
        let env = SimEnv::testbed();
        let mut vmi = fresh_vmi();
        vmi.fs.add_file(FileRecord {
            path: IStr::new("/home/u/x"),
            size: 500,
            seed: 3,
            owner: FileOwner::UserData,
        });
        let mut h = GuestHandle::launch(&env, &mut vmi);
        let t0 = env.clock.now();
        let dropped = h.sysprep_reset();
        assert_eq!(dropped, 500);
        assert!(env.clock.since(t0).as_secs_f64() > 7.0);
        assert_eq!(h.vmi().user_data_bytes(), 0);
    }
}
