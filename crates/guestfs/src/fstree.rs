//! Layered guest file tree.
//!
//! An image's file population = shared base layers (Arc'd, typically the
//! distribution's ~tens-of-thousands of OS files) + a per-image overlay +
//! tombstones for deletions. File *content* is not stored here — every
//! record carries a `(seed, size)` pair from which
//! [`xpl_pkg::content::generate`] reproduces the bytes deterministically.

use std::collections::BTreeMap;
use std::sync::Arc;

use xpl_pkg::PackageId;
use xpl_util::{FxHashSet, IStr};

/// Who put a file into the image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileOwner {
    /// Installed by a package.
    Package(PackageId),
    /// User data (`Data` in the paper's model) — not known to dpkg.
    UserData,
    /// Base system plumbing not attributed to any package (boot files,
    /// generated caches).
    System,
}

/// One file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileRecord {
    pub path: IStr,
    /// Materialized size in bytes.
    pub size: u32,
    /// Content seed (identical (seed, size) ⇒ identical bytes).
    pub seed: u64,
    pub owner: FileOwner,
}

impl FileRecord {
    /// The file's content bytes (generated on demand).
    pub fn content(&self) -> Vec<u8> {
        xpl_pkg::content::generate(self.seed, self.size as usize)
    }

    /// Content digest without materializing.
    pub fn content_digest(&self) -> xpl_util::Digest {
        xpl_pkg::content::content_digest(self.seed, self.size as usize)
    }
}

/// A base layer: path-sorted, immutable, shared between images.
pub type FsLayer = Arc<Vec<FileRecord>>;

/// Build a layer from records (sorts by path string; panics on duplicate
/// paths — base layers are authored, not accumulated).
pub fn layer_from(mut records: Vec<FileRecord>) -> FsLayer {
    records.sort_by_key(|r| r.path.as_str());
    for w in records.windows(2) {
        assert_ne!(
            w[0].path, w[1].path,
            "duplicate path in layer: {}",
            w[0].path
        );
    }
    Arc::new(records)
}

/// The layered tree.
#[derive(Clone, Default)]
pub struct FsTree {
    layers: Vec<FsLayer>,
    overlay: BTreeMap<&'static str, FileRecord>,
    tombstones: FxHashSet<IStr>,
}

impl FsTree {
    pub fn new() -> Self {
        FsTree::default()
    }

    pub fn with_base(layer: FsLayer) -> Self {
        FsTree {
            layers: vec![layer],
            overlay: BTreeMap::new(),
            tombstones: FxHashSet::default(),
        }
    }

    pub fn push_layer(&mut self, layer: FsLayer) {
        self.layers.push(layer);
    }

    /// Add (or replace) a file.
    pub fn add_file(&mut self, rec: FileRecord) {
        self.tombstones.remove(&rec.path);
        self.overlay.insert(rec.path.as_str(), rec);
    }

    /// Remove a path (tombstoning base-layer files).
    pub fn remove_path(&mut self, path: IStr) -> bool {
        let existed = self.get(path).is_some();
        self.overlay.remove(path.as_str());
        if self.layers.iter().any(|l| layer_contains(l, path)) {
            self.tombstones.insert(path);
        }
        existed
    }

    /// Remove every file owned by `pkg`; returns bytes removed.
    pub fn remove_owned_by(&mut self, pkg: PackageId) -> u64 {
        let mut removed = 0u64;
        let doomed: Vec<IStr> = self
            .iter()
            .filter(|r| r.owner == FileOwner::Package(pkg))
            .map(|r| r.path)
            .collect();
        for path in doomed {
            if let Some(r) = self.get(path) {
                removed += r.size as u64;
            }
            self.remove_path(path);
        }
        removed
    }

    /// Path prefixes counted as junk (caches, logs, tmp) — content that
    /// semantic publishing cleans up ("cleaning up the cached repository
    /// files", §V-3) but that file-level stores faithfully keep.
    pub const JUNK_PREFIXES: [&'static str; 3] = ["/var/cache/", "/var/log/", "/tmp/"];

    /// Is this path junk?
    pub fn is_junk_path(path: IStr) -> bool {
        let s = path.as_str();
        Self::JUNK_PREFIXES.iter().any(|p| s.starts_with(p))
    }

    /// Remove all junk files; returns bytes removed.
    pub fn remove_junk(&mut self) -> u64 {
        let mut removed = 0u64;
        let doomed: Vec<IStr> = self
            .iter()
            .filter(|r| Self::is_junk_path(r.path))
            .map(|r| r.path)
            .collect();
        for path in doomed {
            if let Some(r) = self.get(path) {
                removed += r.size as u64;
            }
            self.remove_path(path);
        }
        removed
    }

    /// Remove all user-data files; returns bytes removed.
    pub fn remove_user_data(&mut self) -> u64 {
        let mut removed = 0u64;
        let doomed: Vec<IStr> = self
            .iter()
            .filter(|r| r.owner == FileOwner::UserData)
            .map(|r| r.path)
            .collect();
        for path in doomed {
            if let Some(r) = self.get(path) {
                removed += r.size as u64;
            }
            self.remove_path(path);
        }
        removed
    }

    /// Effective lookup: overlay wins, then newest layer, unless
    /// tombstoned.
    pub fn get(&self, path: IStr) -> Option<FileRecord> {
        if self.tombstones.contains(&path) {
            return self.overlay.get(path.as_str()).copied();
        }
        if let Some(r) = self.overlay.get(path.as_str()) {
            return Some(*r);
        }
        for layer in self.layers.iter().rev() {
            if let Some(r) = layer_get(layer, path) {
                return Some(*r);
            }
        }
        None
    }

    /// Iterate effective files in deterministic (path) order.
    pub fn iter(&self) -> impl Iterator<Item = FileRecord> + '_ {
        self.effective().into_iter()
    }

    fn effective(&self) -> Vec<FileRecord> {
        // Merge: paths from overlay + all layers, overlay shadowing,
        // tombstones filtered.
        let mut out: BTreeMap<&'static str, FileRecord> = BTreeMap::new();
        for layer in &self.layers {
            for r in layer.iter() {
                out.insert(r.path.as_str(), *r);
            }
        }
        for path in &self.tombstones {
            out.remove(path.as_str());
        }
        for (k, r) in &self.overlay {
            out.insert(k, *r);
        }
        out.into_values().collect()
    }

    pub fn file_count(&self) -> usize {
        self.effective().len()
    }

    pub fn total_bytes(&self) -> u64 {
        self.iter().map(|r| r.size as u64).sum()
    }

    /// Files owned by a specific package.
    pub fn files_of(&self, pkg: PackageId) -> Vec<FileRecord> {
        self.iter()
            .filter(|r| r.owner == FileOwner::Package(pkg))
            .collect()
    }
}

fn layer_get(layer: &FsLayer, path: IStr) -> Option<&FileRecord> {
    layer
        .binary_search_by_key(&path.as_str(), |r| r.path.as_str())
        .ok()
        .map(|i| &layer[i])
}

fn layer_contains(layer: &FsLayer, path: IStr) -> bool {
    layer_get(layer, path).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(path: &str, size: u32, owner: FileOwner) -> FileRecord {
        FileRecord {
            path: IStr::new(path),
            size,
            seed: size as u64 * 7 + 1,
            owner,
        }
    }

    fn base_layer() -> FsLayer {
        layer_from(vec![
            rec("/bin/bash", 1000, FileOwner::Package(PackageId(0))),
            rec("/etc/hostname", 10, FileOwner::System),
            rec("/usr/lib/libc.so", 2000, FileOwner::Package(PackageId(1))),
        ])
    }

    #[test]
    fn base_files_visible() {
        let fs = FsTree::with_base(base_layer());
        assert_eq!(fs.file_count(), 3);
        assert_eq!(fs.total_bytes(), 3010);
        assert_eq!(fs.get(IStr::new("/bin/bash")).unwrap().size, 1000);
    }

    #[test]
    fn overlay_shadows_base() {
        let mut fs = FsTree::with_base(base_layer());
        fs.add_file(rec("/etc/hostname", 25, FileOwner::UserData));
        assert_eq!(fs.get(IStr::new("/etc/hostname")).unwrap().size, 25);
        assert_eq!(fs.file_count(), 3, "replacement, not addition");
    }

    #[test]
    fn tombstone_hides_base_file() {
        let mut fs = FsTree::with_base(base_layer());
        assert!(fs.remove_path(IStr::new("/bin/bash")));
        assert!(fs.get(IStr::new("/bin/bash")).is_none());
        assert_eq!(fs.file_count(), 2);
        // Re-adding resurrects.
        fs.add_file(rec("/bin/bash", 999, FileOwner::System));
        assert_eq!(fs.get(IStr::new("/bin/bash")).unwrap().size, 999);
    }

    #[test]
    fn remove_owned_by_package() {
        let mut fs = FsTree::with_base(base_layer());
        fs.add_file(rec("/opt/tool/bin", 500, FileOwner::Package(PackageId(9))));
        fs.add_file(rec("/opt/tool/conf", 50, FileOwner::Package(PackageId(9))));
        let removed = fs.remove_owned_by(PackageId(9));
        assert_eq!(removed, 550);
        assert_eq!(fs.file_count(), 3);
        // Base-layer files of another package untouched.
        assert!(fs.get(IStr::new("/usr/lib/libc.so")).is_some());
    }

    #[test]
    fn remove_user_data() {
        let mut fs = FsTree::with_base(base_layer());
        fs.add_file(rec("/home/user/a.dat", 300, FileOwner::UserData));
        fs.add_file(rec("/home/user/b.dat", 200, FileOwner::UserData));
        assert_eq!(fs.remove_user_data(), 500);
        assert_eq!(fs.file_count(), 3);
    }

    #[test]
    fn shared_base_is_cheap() {
        let base = base_layer();
        let a = FsTree::with_base(Arc::clone(&base));
        let b = FsTree::with_base(Arc::clone(&base));
        assert_eq!(a.file_count(), b.file_count());
        assert_eq!(Arc::strong_count(&base), 3);
    }

    #[test]
    fn iteration_is_path_sorted() {
        let mut fs = FsTree::with_base(base_layer());
        fs.add_file(rec("/aaa", 1, FileOwner::System));
        let paths: Vec<&str> = fs.iter().map(|r| r.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
        assert_eq!(paths[0], "/aaa");
    }

    #[test]
    fn content_is_deterministic_per_record() {
        let r = rec("/bin/bash", 100, FileOwner::System);
        assert_eq!(r.content(), r.content());
        assert_eq!(r.content().len(), 100);
    }

    #[test]
    #[should_panic(expected = "duplicate path")]
    fn layer_rejects_duplicates() {
        layer_from(vec![
            rec("/x", 1, FileOwner::System),
            rec("/x", 2, FileOwner::System),
        ]);
    }

    #[test]
    fn files_of_package() {
        let fs = FsTree::with_base(base_layer());
        let files = fs.files_of(PackageId(1));
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].path.as_str(), "/usr/lib/libc.so");
    }
}
