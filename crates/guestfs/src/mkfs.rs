//! Deterministic filesystem layout onto a qcow image.
//!
//! Layout follows ext4's *block group* idea: the address space is divided
//! into fixed-capacity groups; each file is assigned to a group by a hash
//! of its path and packed there in path order. Group start addresses are
//! fixed, so adding a file to one image disturbs only that file's group —
//! images sharing a file population lay it out at identical offsets. That
//! allocation stability is what makes block-level deduplication effective
//! on VM images (Jin & Miller), and the Gzip/block-dedup baselines depend
//! on it behaving realistically.
//!
//! Files larger than a group's capacity (and group overflow) go to a
//! spill region after the groups, packed in path order.

use crate::fstree::{FileRecord, FsTree};
use xpl_util::FxHasher;
use xpl_vdisk::QcowImage;

/// Per-file metadata overhead written ahead of content. Real inodes are
/// ~256 bytes; under the 1024× scale model that is a fraction of a byte,
/// so a 2-byte boundary marker is already generous.
const INODE_BYTES: u64 = 2;
/// Superblock + allocator bitmaps stand-in at the front of the disk.
const SUPERBLOCK_BYTES: u64 = 512;
/// Content alignment inside a group (1 = tight packing; real block
/// alignment is sub-byte at scale).
const ALIGN: u64 = 1;
/// Number of block groups.
const NGROUPS: u64 = 512;
/// Capacity headroom: groups are sized for ~1.6× their expected load so
/// image-to-image additions rarely spill.
const HEADROOM_NUM: u64 = 8;
const HEADROOM_DEN: u64 = 5;

fn group_of(rec: &FileRecord) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = FxHasher::default();
    rec.path.as_str().hash(&mut h);
    h.finish() % NGROUPS
}

fn align_up(v: u64, a: u64) -> u64 {
    v.div_ceil(a) * a
}

fn file_span(rec: &FileRecord) -> u64 {
    align_up(INODE_BYTES + rec.size as u64, ALIGN)
}

/// Geometry derived from a tree: per-group capacity and spill size.
struct Geometry {
    group_capacity: u64,
    groups_end: u64,
    disk_size: u64,
}

fn geometry(fs: &FsTree) -> (Geometry, Vec<Vec<FileRecord>>, Vec<FileRecord>) {
    let mut groups: Vec<Vec<FileRecord>> = (0..NGROUPS).map(|_| Vec::new()).collect();
    let mut total_span = 0u64;
    for rec in fs.iter() {
        total_span += file_span(&rec);
        groups[group_of(&rec) as usize].push(rec);
    }
    // Fixed capacity for every group. Rounding the raw capacity up to a
    // power of two makes the geometry *coarse*: images whose populations
    // differ by less than the headroom share identical group addresses,
    // which preserves cross-image allocation stability (and hence block
    // dedup) within an image family.
    let raw_cap = (total_span * HEADROOM_NUM / HEADROOM_DEN).div_ceil(NGROUPS);
    let group_capacity = raw_cap.max(256).next_power_of_two();
    // Files that don't fit their group spill.
    let mut spill: Vec<FileRecord> = Vec::new();
    for g in groups.iter_mut() {
        // Pack in path order (already sorted by fs.iter()), overflow to
        // spill.
        let mut used = 0u64;
        let mut keep = Vec::with_capacity(g.len());
        for rec in g.drain(..) {
            let span = file_span(&rec);
            if used + span <= group_capacity {
                used += span;
                keep.push(rec);
            } else {
                spill.push(rec);
            }
        }
        *g = keep;
    }
    spill.sort_by_key(|r| r.path.as_str());
    let spill_span: u64 = spill.iter().map(file_span).sum();
    let groups_end = SUPERBLOCK_BYTES + NGROUPS * group_capacity;
    let disk_size = align_up(groups_end + spill_span + 4096, 4096);
    (
        Geometry {
            group_capacity,
            groups_end,
            disk_size,
        },
        groups,
        spill,
    )
}

/// Size the virtual disk for a tree.
pub fn disk_size_for(fs: &FsTree) -> u64 {
    geometry(fs).0.disk_size
}

/// One file's placement on disk: the [`INODE_BYTES`] boundary marker
/// sits at `offset`, content immediately after.
#[derive(Clone, Debug)]
pub struct Extent {
    pub rec: FileRecord,
    /// Disk offset of the marker.
    pub offset: u64,
}

impl Extent {
    /// Disk offset of the file's first content byte.
    pub fn content_offset(&self) -> u64 {
        self.offset + INODE_BYTES
    }

    /// Disk offset one past the file's last content byte.
    pub fn end(&self) -> u64 {
        self.offset + INODE_BYTES + self.rec.size as u64
    }
}

/// The single placement walk both [`mkfs`] and [`extents`] follow —
/// groups in index order, then spill — so the extent map and the
/// materialized disk can never drift apart.
fn placements(fs: &FsTree) -> (Geometry, Vec<Extent>) {
    let (geo, groups, spill) = geometry(fs);
    let mut out = Vec::with_capacity(fs.file_count());
    let mut place = |cursor: &mut u64, rec: FileRecord| {
        let next = align_up(*cursor + INODE_BYTES + rec.size as u64, ALIGN);
        out.push(Extent {
            rec,
            offset: *cursor,
        });
        *cursor = next;
    };
    for (gi, group) in groups.into_iter().enumerate() {
        let mut cursor = SUPERBLOCK_BYTES + gi as u64 * geo.group_capacity;
        for rec in group {
            place(&mut cursor, rec);
        }
    }
    let mut cursor = geo.groups_end;
    for rec in spill {
        place(&mut cursor, rec);
    }
    (geo, out)
}

fn superblock(fs: &FsTree, geo: &Geometry) -> Vec<u8> {
    // Superblock: magic + counts (deterministic, participates in content).
    let mut sb = Vec::with_capacity(SUPERBLOCK_BYTES as usize);
    sb.extend_from_slice(b"XFS2");
    sb.extend_from_slice(&(fs.file_count() as u64).to_le_bytes());
    sb.extend_from_slice(&fs.total_bytes().to_le_bytes());
    sb.extend_from_slice(&geo.group_capacity.to_le_bytes());
    sb.resize(SUPERBLOCK_BYTES as usize, 0);
    sb
}

/// Every file's disk placement, sorted by offset. Computable from tree
/// *metadata* alone (path, size, seed — never content): this is the
/// semantics-aware map from disk byte ranges to owning files that range
/// retrieval walks to decide which blobs to fetch.
pub fn extents(fs: &FsTree) -> Vec<Extent> {
    let (_, mut ex) = placements(fs);
    ex.sort_by_key(|e| e.offset);
    ex
}

/// Write the tree into a fresh qcow image named `name`.
pub fn mkfs(name: &str, fs: &FsTree) -> QcowImage {
    let (geo, extents) = placements(fs);
    let mut img = QcowImage::create(name, geo.disk_size);
    img.write_at(0, &superblock(fs, &geo))
        .expect("superblock fits");
    for e in &extents {
        // Boundary marker derived from the content seed (stable across
        // runs, unlike interner ids).
        let marker = (e.rec.seed as u16).to_le_bytes();
        img.write_at(e.offset, &marker).expect("inode fits");
        img.write_at(e.content_offset(), &e.rec.content())
            .expect("content fits");
    }
    img
}

/// Materialize disk bytes `[start, start+len)` from metadata plus
/// per-file content fetched on demand — without building the whole
/// image. `fetch(rec, off, len)` must return exactly bytes
/// `[off, off+len)` of `rec`'s content; a semantics-aware store backs it
/// with a CAS range read so only the overlapping slice of each touched
/// file moves. The result is byte-identical to
/// `mkfs(_, fs).read_at(start, ..)` (zeros where nothing is placed,
/// superblock and inode markers overlaid); the range clamps to the disk
/// size like a slice.
pub fn materialize_range<F>(
    fs: &FsTree,
    start: u64,
    len: u64,
    mut fetch: F,
) -> Result<Vec<u8>, String>
where
    F: FnMut(&FileRecord, u64, u64) -> Result<Vec<u8>, String>,
{
    let (geo, mut extents) = placements(fs);
    extents.sort_by_key(|e| e.offset);
    let end = start.saturating_add(len).min(geo.disk_size);
    if start >= end {
        return Ok(Vec::new());
    }
    let mut out = vec![0u8; (end - start) as usize];
    if start < SUPERBLOCK_BYTES {
        let sb = superblock(fs, &geo);
        let to = end.min(SUPERBLOCK_BYTES);
        out[..(to - start) as usize].copy_from_slice(&sb[start as usize..to as usize]);
    }
    let first = extents.partition_point(|e| e.end() <= start);
    for e in &extents[first..] {
        if e.offset >= end {
            break;
        }
        let marker = (e.rec.seed as u16).to_le_bytes();
        for (k, &b) in marker.iter().enumerate() {
            let pos = e.offset + k as u64;
            if (start..end).contains(&pos) {
                out[(pos - start) as usize] = b;
            }
        }
        let c0 = e.content_offset();
        let lo = c0.max(start);
        let hi = e.end().min(end);
        if lo < hi {
            let chunk = fetch(&e.rec, lo - c0, hi - lo)?;
            if chunk.len() as u64 != hi - lo {
                return Err(format!(
                    "fetch for {} returned {} bytes, wanted {}",
                    e.rec.path.as_str(),
                    chunk.len(),
                    hi - lo
                ));
            }
            out[(lo - start) as usize..(hi - start) as usize].copy_from_slice(&chunk);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fstree::{layer_from, FileOwner, FileRecord, FsTree};
    use xpl_util::IStr;

    fn tree() -> FsTree {
        FsTree::with_base(layer_from(vec![
            FileRecord {
                path: IStr::new("/bin/a"),
                size: 500,
                seed: 1,
                owner: FileOwner::System,
            },
            FileRecord {
                path: IStr::new("/bin/b"),
                size: 300,
                seed: 2,
                owner: FileOwner::System,
            },
        ]))
    }

    fn big_tree(n: u32) -> FsTree {
        let mut fs = FsTree::new();
        let mut rng = xpl_util::SplitMix64::new(9);
        for i in 0..n {
            fs.add_file(FileRecord {
                path: IStr::new(&format!("/usr/lib/pkg{}/f{i}", i % 50)),
                size: rng.next_range(20, 2000) as u32,
                seed: i as u64,
                owner: FileOwner::System,
            });
        }
        fs
    }

    #[test]
    fn deterministic_layout() {
        let fs = tree();
        let a = mkfs("img", &fs).serialize();
        let b = mkfs("other-name", &fs).serialize();
        assert_eq!(a, b, "same content, name-independent");
    }

    #[test]
    fn different_content_different_disk() {
        let fs1 = tree();
        let mut fs2 = tree();
        fs2.add_file(FileRecord {
            path: IStr::new("/bin/c"),
            size: 100,
            seed: 3,
            owner: FileOwner::System,
        });
        assert_ne!(mkfs("img", &fs1).serialize(), mkfs("img", &fs2).serialize());
    }

    #[test]
    fn adding_a_file_disturbs_little() {
        // The block-group property: one extra file must leave almost all
        // clusters identical (allocation stability).
        let base = big_tree(2000);
        let mut extended = base.clone();
        extended.add_file(FileRecord {
            path: IStr::new("/opt/newpkg/binary"),
            size: 700,
            seed: 99,
            owner: FileOwner::System,
        });
        let a = mkfs("a", &base);
        let b = mkfs("b", &extended);
        // Compare cluster-by-cluster over the common span.
        let cs = a.cluster_size();
        let clusters = a.virtual_size().min(b.virtual_size()) / cs;
        let mut differing = 0u64;
        for i in 0..clusters {
            let ca = a.read_at(i * cs, cs as usize).unwrap();
            let cb = b.read_at(i * cs, cs as usize).unwrap();
            if ca != cb {
                differing += 1;
            }
        }
        let frac = differing as f64 / clusters as f64;
        assert!(
            frac < 0.05,
            "{differing}/{clusters} clusters differ ({frac:.3})"
        );
    }

    #[test]
    fn allocated_bytes_track_content() {
        let fs = big_tree(500);
        let img = mkfs("img", &fs);
        let alloc = img.allocated_bytes();
        let content = fs.total_bytes();
        assert!(alloc >= content, "alloc {alloc} < content {content}");
        assert!(
            alloc < content * 2 + 300_000,
            "alloc {alloc} too sparse for content {content}"
        );
    }

    #[test]
    fn disk_size_grows_with_tree() {
        let small = tree();
        let mut big = tree();
        for i in 0..100 {
            big.add_file(FileRecord {
                path: IStr::new(&format!("/data/f{i}")),
                size: 1000,
                seed: i,
                owner: FileOwner::UserData,
            });
        }
        assert!(disk_size_for(&big) > disk_size_for(&small) + 90_000);
    }

    #[test]
    fn empty_tree_still_valid() {
        let fs = FsTree::new();
        let img = mkfs("empty", &fs);
        assert!(img.allocated_bytes() > 0, "superblock allocated");
    }

    #[test]
    fn extents_describe_the_materialized_disk() {
        let fs = big_tree(400);
        let img = mkfs("img", &fs);
        let ex = extents(&fs);
        assert_eq!(ex.len(), fs.file_count());
        let mut prev_end = 0u64;
        for e in &ex {
            assert!(e.offset >= prev_end, "extents overlap at {}", e.offset);
            prev_end = e.end();
            // Marker + content at the recorded offsets.
            let marker = img.read_at(e.offset, 2).unwrap();
            assert_eq!(marker, (e.rec.seed as u16).to_le_bytes());
            let content = img
                .read_at(e.content_offset(), e.rec.size as usize)
                .unwrap();
            assert_eq!(content, e.rec.content(), "{}", e.rec.path.as_str());
        }
    }

    #[test]
    fn materialize_range_matches_mkfs_disk() {
        let fs = big_tree(600);
        let img = mkfs("img", &fs);
        let size = img.virtual_size();
        let fetch = |rec: &FileRecord, off: u64, len: u64| {
            let c = rec.content();
            Ok(c[off as usize..(off + len) as usize].to_vec())
        };
        let mut rng = xpl_util::SplitMix64::new(31);
        let mut spans: Vec<(u64, u64)> = (0..40)
            .map(|_| (rng.next_below(size), rng.next_below(8192) + 1))
            .collect();
        spans.extend([
            (0, 700),                  // superblock + first group
            (size - 100, 500),         // clamp at the end
            (size + 10, 10),           // fully past the end
            (0, 0),                    // empty
            (SUPERBLOCK_BYTES - 1, 3), // superblock boundary
        ]);
        for (start, len) in spans {
            let got = materialize_range(&fs, start, len, fetch).unwrap();
            let end = start.saturating_add(len).min(size);
            let expect = if start >= end {
                Vec::new()
            } else {
                img.read_at(start, (end - start) as usize).unwrap()
            };
            assert_eq!(got, expect, "range [{start}, +{len})");
        }
    }

    #[test]
    fn materialize_range_surfaces_short_fetch() {
        let fs = big_tree(50);
        let e = &extents(&fs)[0];
        let err = materialize_range(&fs, e.offset, 64, |_r, _o, _l| Ok(vec![0u8; 1])).unwrap_err();
        assert!(err.contains("wanted"), "{err}");
    }

    #[test]
    fn oversized_file_goes_to_spill() {
        let mut fs = big_tree(100);
        fs.add_file(FileRecord {
            path: IStr::new("/huge/blob"),
            size: 3_000_000, // bigger than any group
            seed: 1,
            owner: FileOwner::System,
        });
        let img = mkfs("img", &fs);
        // Must still hold all content.
        assert!(img.allocated_bytes() >= fs.total_bytes());
    }
}
