//! `xpl-guestfs` — guest filesystem, VMI model, and the libguestfs-like
//! access handle.
//!
//! The paper manipulates real qcow2 images through `libguestfs` (launch a
//! handle, query dpkg, export/import packages, `virt-sysprep` reset). This
//! crate reproduces that stack over [`xpl_vdisk`]:
//!
//! * [`fstree`] — a layered file tree (shared base layer + per-image
//!   overlay + tombstones), so nineteen images sharing one Ubuntu base
//!   cost one base file-set in memory.
//! * [`mkfs`] — deterministic layout of a file tree onto a qcow image.
//! * [`vmi`] — the [`Vmi`] type: base-image attributes, filesystem,
//!   installed-package DB, primary-package list, materialized disk.
//! * [`handle`] — [`GuestHandle`]: charged operations (launch, package
//!   query/install/remove/export, sysprep reset).
//! * [`builder`] — `virt-builder`-style image construction from a catalog
//!   and a recipe.

pub mod builder;
pub mod fstree;
pub mod handle;
pub mod mkfs;
pub mod vmi;

pub use builder::{BaseTemplate, ImageBuilder, ImageRecipe, JunkGroup};
pub use fstree::{FileOwner, FileRecord, FsTree};
pub use handle::GuestHandle;
pub use mkfs::{disk_size_for, extents, materialize_range, Extent};
pub use vmi::Vmi;
