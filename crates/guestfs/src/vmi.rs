//! The VMI model: `I = (BI, PS, DS, Data)`.
//!
//! Matches §III-A: a base image `BI` (with its attribute quadruple), a
//! primary package set `PS`, the dependency packages `DS` (tracked in the
//! dpkg database by install reason), and user data `Data` (files the
//! package manager does not know about).

use crate::fstree::{FileOwner, FileRecord, FsTree};
use crate::mkfs;
use xpl_pkg::dpkgdb::InstallReason;
use xpl_pkg::{BaseImageAttrs, Catalog, DpkgDb, PackageId};
use xpl_util::IStr;
use xpl_vdisk::QcowImage;

/// A virtual machine image.
#[derive(Clone)]
pub struct Vmi {
    pub name: String,
    /// Base-image attributes (type, distro, ver, arch).
    pub base: BaseImageAttrs,
    /// The guest filesystem.
    pub fs: FsTree,
    /// Installed-package database (primary = Manual, dependency = Auto).
    pub pkgdb: DpkgDb,
    /// The user-declared primary package set `PS`.
    pub primary: Vec<PackageId>,
    /// Materialized qcow disk. **Not** auto-synced with `fs`; call
    /// [`Vmi::rebuild_disk`] after mutating the tree when the disk matters
    /// (stores read it; decomposition does not).
    pub disk: QcowImage,
}

impl Vmi {
    /// Assemble a VMI from parts, materializing the disk once.
    pub fn assemble(
        name: &str,
        base: BaseImageAttrs,
        fs: FsTree,
        pkgdb: DpkgDb,
        primary: Vec<PackageId>,
    ) -> Vmi {
        let disk = mkfs::mkfs(name, &fs);
        Vmi {
            name: name.to_string(),
            base,
            fs,
            pkgdb,
            primary,
            disk,
        }
    }

    /// Re-materialize the disk from the current tree.
    pub fn rebuild_disk(&mut self) {
        self.disk = mkfs::mkfs(&self.name, &self.fs);
    }

    /// Mounted filesystem size (Table II's "Mounted size" column),
    /// materialized bytes.
    pub fn mounted_bytes(&self) -> u64 {
        self.fs.total_bytes()
    }

    /// Number of files (Table II's "Number of files" column).
    pub fn file_count(&self) -> usize {
        self.fs.file_count()
    }

    /// On-disk (allocated) size of the qcow image, materialized bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.disk.allocated_bytes()
    }

    /// Bytes of user data (`Data` component).
    pub fn user_data_bytes(&self) -> u64 {
        self.fs
            .iter()
            .filter(|r| r.owner == FileOwner::UserData)
            .map(|r| r.size as u64)
            .sum()
    }

    /// User-data file records (for import on retrieval).
    pub fn user_data_files(&self) -> Vec<FileRecord> {
        self.fs
            .iter()
            .filter(|r| r.owner == FileOwner::UserData)
            .collect()
    }

    /// Identity strings of all installed packages — the functional
    /// equality notion used by publish→retrieve round-trip tests.
    pub fn installed_package_set(&self, catalog: &Catalog) -> std::collections::BTreeSet<String> {
        self.pkgdb
            .installed_ids()
            .iter()
            .map(|&id| catalog.get(id).identity())
            .collect()
    }

    /// Refresh the `/var/lib/dpkg/status` file from the package DB. The
    /// file's content is keyed by a digest of the rendered status text, so
    /// images with equal package sets carry identical status files (and
    /// dedup accordingly).
    pub fn refresh_status_file(&mut self, catalog: &Catalog) {
        let text = self.pkgdb.render_status(catalog);
        let digest = xpl_util::Sha256::digest(text.as_bytes());
        self.fs.add_file(FileRecord {
            path: IStr::new("/var/lib/dpkg/status"),
            size: text.len() as u32,
            seed: digest.prefix64(),
            owner: FileOwner::System,
        });
    }

    /// Install a package's files + DB record (no cost charging — the
    /// charged path is [`crate::GuestHandle::install_package`]).
    pub fn install_package_raw(&mut self, catalog: &Catalog, id: PackageId, reason: InstallReason) {
        let meta = catalog.get(id);
        for f in &meta.manifest.files {
            self.fs.add_file(FileRecord {
                path: f.path,
                size: f.size,
                seed: f.seed,
                owner: FileOwner::Package(id),
            });
        }
        self.pkgdb.install(catalog, id, reason);
    }

    /// Remove a package's files + DB record; returns removed bytes.
    pub fn remove_package_raw(&mut self, name: IStr) -> u64 {
        match self.pkgdb.remove(name) {
            Some(id) => self.fs.remove_owned_by(id),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_pkg::catalog::PackageSpec;
    use xpl_pkg::meta::{FileManifest, PkgFile, Section};
    use xpl_pkg::{Arch, Version};

    fn tiny_catalog() -> (Catalog, PackageId) {
        let mut c = Catalog::new();
        let id = c.add(PackageSpec {
            name: "redis".into(),
            version: Version::parse("6.0"),
            arch: Arch::Amd64,
            section: Section::Databases,
            essential: false,
            deb_size: 100,
            installed_size: 350,
            depends: vec![],
            manifest: FileManifest {
                files: vec![
                    PkgFile {
                        path: IStr::new("/usr/bin/redis"),
                        size: 300,
                        seed: 70,
                    },
                    PkgFile {
                        path: IStr::new("/etc/redis.conf"),
                        size: 50,
                        seed: 71,
                    },
                ],
            },
        });
        (c, id)
    }

    fn empty_vmi() -> Vmi {
        Vmi::assemble(
            "test",
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            FsTree::new(),
            DpkgDb::new(),
            vec![],
        )
    }

    #[test]
    fn install_adds_files_and_db_entry() {
        let (c, id) = tiny_catalog();
        let mut vmi = empty_vmi();
        vmi.install_package_raw(&c, id, InstallReason::Manual);
        assert_eq!(vmi.file_count(), 2);
        assert_eq!(vmi.mounted_bytes(), 350);
        assert!(vmi.pkgdb.is_installed(IStr::new("redis")));
        assert_eq!(
            vmi.installed_package_set(&c)
                .into_iter()
                .collect::<Vec<_>>(),
            vec!["redis=6.0/amd64"]
        );
    }

    #[test]
    fn remove_undoes_install() {
        let (c, id) = tiny_catalog();
        let mut vmi = empty_vmi();
        vmi.install_package_raw(&c, id, InstallReason::Manual);
        let removed = vmi.remove_package_raw(IStr::new("redis"));
        assert_eq!(removed, 350);
        assert_eq!(vmi.file_count(), 0);
        assert!(!vmi.pkgdb.is_installed(IStr::new("redis")));
    }

    #[test]
    fn status_file_reflects_package_set() {
        let (c, id) = tiny_catalog();
        let mut a = empty_vmi();
        a.refresh_status_file(&c);
        let empty_status = a.fs.get(IStr::new("/var/lib/dpkg/status")).unwrap();
        a.install_package_raw(&c, id, InstallReason::Manual);
        a.refresh_status_file(&c);
        let with_redis = a.fs.get(IStr::new("/var/lib/dpkg/status")).unwrap();
        assert_ne!(empty_status.seed, with_redis.seed);

        // A second image with the same package set gets an identical file.
        let mut b = empty_vmi();
        b.install_package_raw(&c, id, InstallReason::Manual);
        b.refresh_status_file(&c);
        let b_status = b.fs.get(IStr::new("/var/lib/dpkg/status")).unwrap();
        assert_eq!(with_redis.seed, b_status.seed);
        assert_eq!(with_redis.size, b_status.size);
    }

    #[test]
    fn user_data_accounting() {
        let mut vmi = empty_vmi();
        vmi.fs.add_file(FileRecord {
            path: IStr::new("/home/u/data.bin"),
            size: 1234,
            seed: 9,
            owner: FileOwner::UserData,
        });
        assert_eq!(vmi.user_data_bytes(), 1234);
        assert_eq!(vmi.user_data_files().len(), 1);
    }

    #[test]
    fn rebuild_disk_tracks_fs() {
        let (c, id) = tiny_catalog();
        let mut vmi = empty_vmi();
        let before = vmi.disk_bytes();
        vmi.install_package_raw(&c, id, InstallReason::Manual);
        vmi.rebuild_disk();
        assert!(vmi.disk_bytes() > before);
    }
}
