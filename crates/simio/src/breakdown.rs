//! Labelled time segments.
//!
//! Figure 5a decomposes Expelliarmus retrieval into four named phases
//! (base-image copy, libguestfs handle creation, VMI reset, import).
//! [`Breakdown`] records such phases generically: callers bracket a phase
//! with [`Breakdown::measure`] and the enclosed clock advancement is
//! attributed to the label.

use std::sync::Arc;

use crate::clock::{SimClock, SimDuration, SimInstant};

/// An ordered list of `(label, duration)` segments.
#[derive(Clone, Debug, Default)]
pub struct Breakdown {
    segments: Vec<(String, SimDuration)>,
}

impl Breakdown {
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Run `f`, attributing all simulated time it charges to `label`.
    /// Repeated labels accumulate into one segment.
    pub fn measure<T>(&mut self, clock: &Arc<SimClock>, label: &str, f: impl FnOnce() -> T) -> T {
        let t0 = clock.now();
        let out = f();
        self.record(label, clock.since(t0));
        out
    }

    /// Attribute an externally measured duration to `label`.
    pub fn record(&mut self, label: &str, d: SimDuration) {
        if let Some(seg) = self.segments.iter_mut().find(|(l, _)| l == label) {
            seg.1 += d;
        } else {
            self.segments.push((label.to_string(), d));
        }
    }

    /// Attribute time since `start` to `label` (explicit-start variant).
    pub fn record_since(&mut self, clock: &Arc<SimClock>, label: &str, start: SimInstant) {
        self.record(label, clock.since(start));
    }

    pub fn get(&self, label: &str) -> SimDuration {
        self.segments
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, d)| *d)
            .unwrap_or(SimDuration::ZERO)
    }

    pub fn total(&self) -> SimDuration {
        self.segments.iter().map(|(_, d)| *d).sum()
    }

    pub fn segments(&self) -> &[(String, SimDuration)] {
        &self.segments
    }

    /// Merge another breakdown into this one (label-wise accumulation).
    pub fn absorb(&mut self, other: &Breakdown) {
        for (l, d) in &other.segments {
            self.record(l, *d);
        }
    }
}

impl std::fmt::Display for Breakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (l, d) in &self.segments {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{l}={d}")?;
            first = false;
        }
        write!(f, " (total {})", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_attributes_clock_time() {
        let clock = Arc::new(SimClock::new());
        let mut b = Breakdown::new();
        b.measure(&clock, "copy", || {
            clock.advance(SimDuration::from_millis(7));
        });
        b.measure(&clock, "reset", || {
            clock.advance(SimDuration::from_millis(3));
        });
        assert_eq!(b.get("copy"), SimDuration::from_millis(7));
        assert_eq!(b.get("reset"), SimDuration::from_millis(3));
        assert_eq!(b.total(), SimDuration::from_millis(10));
    }

    #[test]
    fn repeated_labels_accumulate() {
        let clock = Arc::new(SimClock::new());
        let mut b = Breakdown::new();
        for _ in 0..3 {
            b.measure(&clock, "import", || {
                clock.advance(SimDuration::from_millis(2));
            });
        }
        assert_eq!(b.get("import"), SimDuration::from_millis(6));
        assert_eq!(b.segments().len(), 1);
    }

    #[test]
    fn absorb_merges() {
        let mut a = Breakdown::new();
        a.record("x", SimDuration::from_millis(1));
        let mut b = Breakdown::new();
        b.record("x", SimDuration::from_millis(2));
        b.record("y", SimDuration::from_millis(5));
        a.absorb(&b);
        assert_eq!(a.get("x"), SimDuration::from_millis(3));
        assert_eq!(a.get("y"), SimDuration::from_millis(5));
    }

    #[test]
    fn missing_label_is_zero() {
        let b = Breakdown::new();
        assert_eq!(b.get("nope"), SimDuration::ZERO);
    }

    #[test]
    fn display_is_readable() {
        let mut b = Breakdown::new();
        b.record("copy", SimDuration::from_secs_f64(9.0));
        b.record("import", SimDuration::from_secs_f64(1.5));
        let s = format!("{b}");
        assert!(s.contains("copy=9.00 s"), "{s}");
        assert!(s.contains("total 10.50 s"), "{s}");
    }
}
