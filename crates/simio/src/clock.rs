//! The virtual clock.
//!
//! A single atomic nanosecond counter shared (via `Arc`) by every charged
//! component. Charges are `fetch_add`s, so parallel workers (rayon pools
//! hashing files, compressing clusters, …) can charge concurrently; the
//! final reading is the *sum of work*, which models the paper's mostly
//! I/O-bound, effectively serialized pipeline. Components that model
//! overlapped I/O (e.g. pipelined copy) charge `max(read, write)`
//! explicitly instead of both legs.

use std::sync::atomic::{AtomicU64, Ordering};

/// A point in simulated time, in nanoseconds since the clock's origin.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SimInstant(pub u64);

impl SimInstant {
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

/// A span of simulated time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).round().max(0.0) as u64)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.as_secs_f64();
        if s < 0.001 {
            write!(f, "{:.1} µs", s * 1e6)
        } else if s < 1.0 {
            write!(f, "{:.1} ms", s * 1e3)
        } else {
            write!(f, "{s:.2} s")
        }
    }
}

/// The shared virtual clock.
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    pub fn new() -> Self {
        SimClock {
            nanos: AtomicU64::new(0),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        SimInstant(self.nanos.load(Ordering::Relaxed))
    }

    /// Advance the clock by a charge. Returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        SimInstant(self.nanos.fetch_add(d.0, Ordering::Relaxed) + d.0)
    }

    /// Elapsed time since `start`.
    pub fn since(&self, start: SimInstant) -> SimDuration {
        self.now().duration_since(start)
    }

    /// Reset to zero (test convenience; never used mid-experiment).
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        let t0 = c.now();
        c.advance(SimDuration::from_millis(5));
        c.advance(SimDuration::from_micros(250));
        assert_eq!(c.since(t0).as_nanos(), 5_250_000);
    }

    #[test]
    fn concurrent_advances_sum() {
        use std::sync::Arc;
        let c = Arc::new(SimClock::new());
        let mut handles = vec![];
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance(SimDuration::from_nanos(3));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now().0, 8 * 1000 * 3);
    }

    #[test]
    fn duration_display() {
        assert_eq!(format!("{}", SimDuration::from_nanos(500)), "0.5 µs");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.0 ms");
        assert_eq!(format!("{}", SimDuration::from_secs_f64(39.52)), "39.52 s");
    }

    #[test]
    fn from_secs_roundtrip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn saturating_since() {
        let later = SimInstant(10);
        let earlier = SimInstant(50);
        assert_eq!(later.duration_since(earlier), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let parts = [SimDuration::from_millis(1), SimDuration::from_millis(2)];
        let total: SimDuration = parts.iter().copied().sum();
        assert_eq!(total, SimDuration::from_millis(3));
    }
}
