//! Calibrated cost profiles for the experiment testbed.
//!
//! The constants below were fitted once against the end-points the paper
//! reports (Table II publish/retrieval columns, Figures 4–5) and then
//! frozen; every experiment uses the same [`SimEnv::testbed`]. Per-constant
//! provenance is documented inline. Absolute values are synthetic by
//! construction — the experiments compare *shape* against the paper.

use std::sync::Arc;

use crate::clock::{SimClock, SimDuration};
use crate::device::{DeviceProfile, SimDevice};

const MIB: u64 = 1024 * 1024;

/// Profile of the 1 TB external repository SSD from the paper's setup.
pub fn repository_ssd() -> DeviceProfile {
    DeviceProfile {
        name: "repository-ssd",
        // External SATA/USB SSD class: the paper's base-image copy phase
        // (~9 s for a ~1.9 GB image, Fig. 5a) implies ~210 MB/s effective.
        seq_read_bps: 250 * MIB,
        seq_write_bps: 210 * MIB,
        // Per-file overheads drive Mirage's publish/retrieve penalty: the
        // paper attributes "time penalties in the range of seconds to few
        // minutes" to matching/reading ~75 k files per image.
        file_open: SimDuration::from_micros(900),
        file_create: SimDuration::from_micros(1200),
        // "inefficient in reading small files (below 1MB)" — Fig. 5b.
        small_file_threshold: MIB,
        small_file_extra: SimDuration::from_micros(3300),
        // Hemera stores small files as DB rows; SQLite-class row access.
        db_row_read: SimDuration::from_micros(170),
        db_row_write: SimDuration::from_micros(260),
        fsync: SimDuration::from_millis(4),
    }
}

/// Profile of the local scratch disk where images are built/assembled.
pub fn local_ssd() -> DeviceProfile {
    DeviceProfile {
        name: "local-ssd",
        // Internal NVMe-class disk, faster than the external repository.
        seq_read_bps: 420 * MIB,
        seq_write_bps: 380 * MIB,
        file_open: SimDuration::from_micros(250),
        file_create: SimDuration::from_micros(400),
        small_file_threshold: MIB,
        small_file_extra: SimDuration::from_micros(800),
        db_row_read: SimDuration::from_micros(120),
        db_row_write: SimDuration::from_micros(200),
        fsync: SimDuration::from_millis(2),
    }
}

/// Guest-side operation costs (libguestfs, dpkg/APT, virt-sysprep).
#[derive(Clone, Debug)]
pub struct CostParams {
    /// Creating and launching a `guestfs` appliance handle. libguestfs
    /// boots a minimal qemu VM: ~7 s on the paper's class of hardware
    /// (Fig. 5a shows the handle-creation band ≈ the copy band).
    pub guestfs_launch: SimDuration,
    /// `virt-sysprep` reset of a base image (Fig. 5a third band).
    pub sysprep_reset: SimDuration,
    /// Querying one installed package's metadata through the guest package
    /// manager while building the semantic graph (`dpkg -s`-class work).
    pub pkg_query: SimDuration,
    /// Rebuilding a binary package (`dpkg-repack`-class) per nominal
    /// *installed* byte. The paper stresses publish time follows the
    /// *installation* size of exported packages, not the `.deb` size.
    pub deb_build_per_byte: SimDuration,
    /// Fixed cost per rebuilt package.
    pub deb_build_fixed: SimDuration,
    /// Removing an installed package from the image, per installed byte
    /// (file unlinks + dpkg database update).
    pub pkg_remove_per_byte: SimDuration,
    /// Installing a package at retrieval, per nominal installed byte
    /// (unpack + configure). Dominates the Fig. 5a "Import" band.
    pub pkg_install_per_byte: SimDuration,
    /// Fixed cost per installed package (maintainer scripts, triggers).
    pub pkg_install_fixed: SimDuration,
    /// Local-repository scan per imported package (`apt-ftparchive`-class
    /// metadata generation at retrieval).
    pub repo_scan_per_pkg: SimDuration,
    /// Semantic-graph similarity computation per package vertex compared.
    /// The paper reports <100 ms per VMI for the whole computation.
    pub sim_per_vertex: SimDuration,
    /// Flatten/compact a base image into its repository qcow2 form
    /// (`qemu-img convert`-class work), per nominal byte. Paid once per
    /// *new* base image stored (dominates Mini's publish together with
    /// the reset and copy phases).
    pub base_pack_per_byte: SimDuration,
}

impl CostParams {
    pub fn testbed() -> Self {
        CostParams {
            guestfs_launch: SimDuration::from_secs_f64(7.0),
            sysprep_reset: SimDuration::from_secs_f64(7.3),
            pkg_query: SimDuration::from_micros(450),
            // ≈0.4 µs per nominal installed byte + 0.29 s/package: with the
            // workload's stack sizes this reproduces the paper's entire
            // publish column (Desktop 126 pkgs/0.40 GB → ≈202 s; Elastic
            // 3 pkgs/0.40 GB → ≈166 s; Redis → ≈10 s).
            deb_build_per_byte: SimDuration::from_nanos(400),
            deb_build_fixed: SimDuration::from_millis(290),
            pkg_remove_per_byte: SimDuration::from_nanos(4),
            // ≈0.19 µs per nominal installed byte + 20 ms/pkg: Desktop's
            // import band lands at ≈95 s and Elastic's at ≈76 s, matching
            // the Fig. 5a/Table II retrieval shape.
            pkg_install_per_byte: SimDuration::from_nanos(190),
            pkg_install_fixed: SimDuration::from_millis(20),
            repo_scan_per_pkg: SimDuration::from_millis(20),
            sim_per_vertex: SimDuration::from_micros(35),
            base_pack_per_byte: SimDuration::from_nanos(5),
        }
    }

    /// Time to rebuild a binary package with the given *materialized*
    /// installed size (scaled to nominal internally, like `SimDevice`).
    pub fn deb_build(&self, installed_bytes_real: u64) -> SimDuration {
        let nominal = installed_bytes_real.saturating_mul(xpl_util::SCALE_FACTOR);
        SimDuration(self.deb_build_fixed.0 + self.deb_build_per_byte.0.saturating_mul(nominal))
    }

    /// Time to install a package of the given materialized installed size.
    pub fn pkg_install(&self, installed_bytes_real: u64) -> SimDuration {
        let nominal = installed_bytes_real.saturating_mul(xpl_util::SCALE_FACTOR);
        SimDuration(self.pkg_install_fixed.0 + self.pkg_install_per_byte.0.saturating_mul(nominal))
    }

    /// Time to remove an installed package (materialized size).
    pub fn pkg_remove(&self, installed_bytes_real: u64) -> SimDuration {
        let nominal = installed_bytes_real.saturating_mul(xpl_util::SCALE_FACTOR);
        SimDuration(self.pkg_remove_per_byte.0.saturating_mul(nominal))
    }
}

/// The complete simulated environment handed to stores and to Expelliarmus:
/// one shared clock, the repository device, the local scratch device, and
/// the guest-operation cost table.
#[derive(Clone)]
pub struct SimEnv {
    pub clock: Arc<SimClock>,
    pub repo: Arc<SimDevice>,
    pub local: Arc<SimDevice>,
    pub costs: Arc<CostParams>,
}

impl SimEnv {
    /// The standard experiment environment (paper testbed analogue).
    pub fn testbed() -> Self {
        let clock = Arc::new(SimClock::new());
        SimEnv {
            repo: Arc::new(SimDevice::new(repository_ssd(), Arc::clone(&clock))),
            local: Arc::new(SimDevice::new(local_ssd(), Arc::clone(&clock))),
            costs: Arc::new(CostParams::testbed()),
            clock,
        }
    }

    /// An environment whose clock charges nothing — used by tests that only
    /// care about functional behaviour. (Devices still count operations.)
    pub fn free() -> Self {
        let clock = Arc::new(SimClock::new());
        let zero = DeviceProfile {
            name: "free",
            seq_read_bps: 0,
            seq_write_bps: 0,
            file_open: SimDuration::ZERO,
            file_create: SimDuration::ZERO,
            small_file_threshold: 0,
            small_file_extra: SimDuration::ZERO,
            db_row_read: SimDuration::ZERO,
            db_row_write: SimDuration::ZERO,
            fsync: SimDuration::ZERO,
        };
        SimEnv {
            repo: Arc::new(SimDevice::new(zero.clone(), Arc::clone(&clock))),
            local: Arc::new(SimDevice::new(zero, Arc::clone(&clock))),
            costs: Arc::new(CostParams {
                guestfs_launch: SimDuration::ZERO,
                sysprep_reset: SimDuration::ZERO,
                pkg_query: SimDuration::ZERO,
                deb_build_per_byte: SimDuration::ZERO,
                deb_build_fixed: SimDuration::ZERO,
                pkg_remove_per_byte: SimDuration::ZERO,
                pkg_install_per_byte: SimDuration::ZERO,
                pkg_install_fixed: SimDuration::ZERO,
                repo_scan_per_pkg: SimDuration::ZERO,
                sim_per_vertex: SimDuration::ZERO,
                base_pack_per_byte: SimDuration::ZERO,
            }),
            clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_env_charges_time() {
        let env = SimEnv::testbed();
        let t0 = env.clock.now();
        env.repo.charge_write(MIB); // 1 GiB nominal at 210 MiB/s ≈ 4.88 s
        let dt = env.clock.since(t0).as_secs_f64();
        assert!((dt - 1024.0 / 210.0).abs() < 0.01, "{dt}");
    }

    #[test]
    fn free_env_charges_nothing() {
        let env = SimEnv::free();
        env.repo.charge_write(MIB);
        env.local.charge_open(10);
        env.repo.charge_fixed(env.costs.guestfs_launch);
        assert_eq!(env.clock.now().0, 0);
    }

    #[test]
    fn base_image_copy_matches_fig5a_band() {
        // A ~1.9 GB nominal base image copied repo→local should take ≈9 s,
        // matching the Fig. 5a base-image-copy band.
        let env = SimEnv::testbed();
        let real = (1.913 * 1024.0 * 1024.0) as u64; // 1.913 GiB nominal
        let t = env.repo.charge_copy_to(&env.local, real);
        let s = t.as_secs_f64();
        assert!((7.0..11.0).contains(&s), "copy time {s}");
    }

    #[test]
    fn install_cost_scales_with_installed_size() {
        let costs = CostParams::testbed();
        // Arguments are materialized bytes: 400 MiB nominal = 400 KiB real.
        let small = costs.pkg_install(10 * 1024);
        let large = costs.pkg_install(400 * 1024);
        assert!(large.as_secs_f64() > 10.0 * small.as_secs_f64() / 2.0);
        // ≈0.4 GB nominal of installed content imports in ≈80 s — the
        // Desktop/Elastic Fig. 5a import band.
        assert!((70.0..90.0).contains(&large.as_secs_f64()), "{large}");
    }

    #[test]
    fn deb_build_dominated_by_installed_bytes() {
        let costs = CostParams::testbed();
        // Redis-class stack: 8 MB nominal → ≈3.4 s + fixed (Table II row
        // 2 publishes in ≈10 s including the 7 s launch).
        let t = costs.deb_build(8 * 1024);
        assert!((3.0..4.5).contains(&t.as_secs_f64()), "{t}");
    }
}
