//! `xpl-simio` — simulated storage devices and a virtual clock.
//!
//! The paper reports wall-clock publish/retrieval times measured on a real
//! testbed (quad-core host, 1 TB external SSD). This reproduction replaces
//! the testbed with an explicit *cost model*: every byte moved, file
//! opened, database row touched, package built or installed advances a
//! shared [`SimClock`]. The result is deterministic "seconds" whose shape
//! (ordering, ratios, crossovers between systems) mirrors the paper's,
//! which is exactly what the experiments compare.
//!
//! Layout:
//! * [`clock`] — the virtual clock and duration type.
//! * [`device`] — [`SimDevice`]: a charged block/file device with
//!   throughput, per-file and small-file costs, plus operation counters.
//! * [`breakdown`] — labelled time segments (Figure 5a renders these).
//! * [`profiles`] — calibrated constants for the repository SSD, local
//!   scratch disk, metadata DB, and the guest-side package operations.

pub mod breakdown;
pub mod clock;
pub mod device;
pub mod profiles;

pub use breakdown::Breakdown;
pub use clock::{SimClock, SimDuration, SimInstant};
pub use device::{DeviceProfile, DeviceStats, SimDevice};
pub use profiles::{CostParams, SimEnv};
