//! Charged storage devices.
//!
//! A [`SimDevice`] wraps a [`DeviceProfile`] (throughputs and per-operation
//! latencies) and a shared [`SimClock`]. Stores call the `charge_*` methods
//! as they move data; the device advances the clock and maintains
//! operation counters for the experiment reports.
//!
//! **Scale-model note:** all `bytes` arguments are *materialized* (real)
//! bytes. Profiles express throughput in *nominal* bytes per second (the
//! paper's axis), and the device multiplies real bytes by
//! [`xpl_util::SCALE_FACTOR`] before applying throughput, so charged time
//! matches the nominal data volume.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::{SimClock, SimDuration};
use xpl_util::SCALE_FACTOR;

/// Static description of a device's performance characteristics.
#[derive(Clone, Debug)]
pub struct DeviceProfile {
    pub name: &'static str,
    /// Sequential read throughput, nominal bytes/second.
    pub seq_read_bps: u64,
    /// Sequential write throughput, nominal bytes/second.
    pub seq_write_bps: u64,
    /// Fixed cost to open an existing file (metadata lookup).
    pub file_open: SimDuration,
    /// Fixed cost to create a file (dentry + inode allocation).
    pub file_create: SimDuration,
    /// Files at or below this *nominal* size pay `small_file_extra` on each
    /// open/create — the "inefficient in reading small files" penalty the
    /// paper attributes to Mirage's file-system repository.
    pub small_file_threshold: u64,
    pub small_file_extra: SimDuration,
    /// Cost of a metadata-database row read (Hemera keeps small files in
    /// the DB precisely because this is much cheaper than `file_open`).
    pub db_row_read: SimDuration,
    /// Cost of a metadata-database row write.
    pub db_row_write: SimDuration,
    /// Fixed cost of a durability barrier.
    pub fsync: SimDuration,
}

impl DeviceProfile {
    fn xfer_time(bps: u64, real_bytes: u64) -> SimDuration {
        if bps == 0 {
            return SimDuration::ZERO;
        }
        let nominal = real_bytes as u128 * SCALE_FACTOR as u128;
        SimDuration(((nominal * 1_000_000_000) / bps as u128) as u64)
    }
}

/// Monotonic operation counters (relaxed atomics — totals only).
#[derive(Debug, Default)]
pub struct DeviceStats {
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
    pub files_opened: AtomicU64,
    pub files_created: AtomicU64,
    pub db_rows_read: AtomicU64,
    pub db_rows_written: AtomicU64,
    pub fsyncs: AtomicU64,
}

/// Snapshot of [`DeviceStats`] for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub files_opened: u64,
    pub files_created: u64,
    pub db_rows_read: u64,
    pub db_rows_written: u64,
    pub fsyncs: u64,
}

/// A charged device bound to the shared clock.
pub struct SimDevice {
    profile: DeviceProfile,
    clock: Arc<SimClock>,
    stats: DeviceStats,
}

impl SimDevice {
    pub fn new(profile: DeviceProfile, clock: Arc<SimClock>) -> Self {
        SimDevice {
            profile,
            clock,
            stats: DeviceStats::default(),
        }
    }

    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// Sequentially read `real_bytes` (charged at nominal volume).
    pub fn charge_read(&self, real_bytes: u64) -> SimDuration {
        self.stats
            .bytes_read
            .fetch_add(real_bytes, Ordering::Relaxed);
        let d = DeviceProfile::xfer_time(self.profile.seq_read_bps, real_bytes);
        self.clock.advance(d);
        d
    }

    /// Sequentially write `real_bytes`.
    pub fn charge_write(&self, real_bytes: u64) -> SimDuration {
        self.stats
            .bytes_written
            .fetch_add(real_bytes, Ordering::Relaxed);
        let d = DeviceProfile::xfer_time(self.profile.seq_write_bps, real_bytes);
        self.clock.advance(d);
        d
    }

    /// Pipelined copy of `real_bytes` from `self` to `dst`: reader and
    /// writer overlap, so wall time is the max of the two legs (this is how
    /// `cp`/`qemu-img convert` behave on two devices), not their sum.
    pub fn charge_copy_to(&self, dst: &SimDevice, real_bytes: u64) -> SimDuration {
        self.stats
            .bytes_read
            .fetch_add(real_bytes, Ordering::Relaxed);
        dst.stats
            .bytes_written
            .fetch_add(real_bytes, Ordering::Relaxed);
        let r = DeviceProfile::xfer_time(self.profile.seq_read_bps, real_bytes);
        let w = DeviceProfile::xfer_time(dst.profile.seq_write_bps, real_bytes);
        let d = r.max(w);
        self.clock.advance(d);
        d
    }

    /// Open an existing file of the given nominal size.
    pub fn charge_open(&self, nominal_size: u64) -> SimDuration {
        self.stats.files_opened.fetch_add(1, Ordering::Relaxed);
        let mut d = self.profile.file_open;
        if nominal_size <= self.profile.small_file_threshold {
            d += self.profile.small_file_extra;
        }
        self.clock.advance(d);
        d
    }

    /// Create a file (content charged separately via
    /// [`Self::charge_write`]). Creation does **not** pay the small-file
    /// penalty: content-addressed stores append new content sequentially;
    /// the penalty models random *reads* of small files (the paper's
    /// Mirage-retrieval pathology), not log-structured writes.
    pub fn charge_create(&self, _nominal_size: u64) -> SimDuration {
        self.stats.files_created.fetch_add(1, Ordering::Relaxed);
        let d = self.profile.file_create;
        self.clock.advance(d);
        d
    }

    /// Read one metadata-DB row (Hemera's small-file path).
    pub fn charge_db_read(&self, rows: u64) -> SimDuration {
        self.stats.db_rows_read.fetch_add(rows, Ordering::Relaxed);
        let d = SimDuration(self.profile.db_row_read.0 * rows);
        self.clock.advance(d);
        d
    }

    /// Write metadata-DB rows.
    pub fn charge_db_write(&self, rows: u64) -> SimDuration {
        self.stats
            .db_rows_written
            .fetch_add(rows, Ordering::Relaxed);
        let d = SimDuration(self.profile.db_row_write.0 * rows);
        self.clock.advance(d);
        d
    }

    /// Durability barrier.
    pub fn charge_fsync(&self) -> SimDuration {
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.clock.advance(self.profile.fsync);
        self.profile.fsync
    }

    /// Charge an arbitrary fixed compute/IO cost on this device's clock.
    pub fn charge_fixed(&self, d: SimDuration) -> SimDuration {
        self.clock.advance(d);
        d
    }

    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.stats.bytes_written.load(Ordering::Relaxed),
            files_opened: self.stats.files_opened.load(Ordering::Relaxed),
            files_created: self.stats.files_created.load(Ordering::Relaxed),
            db_rows_read: self.stats.db_rows_read.load(Ordering::Relaxed),
            db_rows_written: self.stats.db_rows_written.load(Ordering::Relaxed),
            fsyncs: self.stats.fsyncs.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_profile() -> DeviceProfile {
        DeviceProfile {
            name: "test",
            seq_read_bps: 250 * 1024 * 1024,
            seq_write_bps: 200 * 1024 * 1024,
            file_open: SimDuration::from_micros(100),
            file_create: SimDuration::from_micros(200),
            small_file_threshold: 1024 * 1024,
            small_file_extra: SimDuration::from_millis(2),
            db_row_read: SimDuration::from_micros(170),
            db_row_write: SimDuration::from_micros(300),
            fsync: SimDuration::from_millis(5),
        }
    }

    fn dev() -> SimDevice {
        SimDevice::new(test_profile(), Arc::new(SimClock::new()))
    }

    #[test]
    fn read_charges_nominal_volume() {
        let d = dev();
        // 1 MiB real == 1 GiB nominal; at 250 MiB/s nominal that is 4.096 s.
        let t = d.charge_read(1024 * 1024);
        let expect = (1u64 << 30) as f64 / (250.0 * 1024.0 * 1024.0);
        assert!((t.as_secs_f64() - expect).abs() < 1e-6, "{t}");
        assert_eq!(d.stats().bytes_read, 1024 * 1024);
    }

    #[test]
    fn copy_is_pipelined_not_summed() {
        let clock = Arc::new(SimClock::new());
        let a = SimDevice::new(test_profile(), Arc::clone(&clock));
        let b = SimDevice::new(test_profile(), Arc::clone(&clock));
        let t0 = clock.now();
        a.charge_copy_to(&b, 1024 * 1024);
        let elapsed = clock.since(t0);
        // Write is the slower leg (200 MiB/s): copy time == write time.
        let write_time = (1u64 << 30) as f64 / (200.0 * 1024.0 * 1024.0);
        assert!((elapsed.as_secs_f64() - write_time).abs() < 1e-6);
        assert_eq!(a.stats().bytes_read, 1024 * 1024);
        assert_eq!(b.stats().bytes_written, 1024 * 1024);
    }

    #[test]
    fn small_file_penalty_applies_below_threshold() {
        let d = dev();
        let small = d.charge_open(4096);
        let large = d.charge_open(10 * 1024 * 1024);
        assert!(small > large);
        assert_eq!(small.saturating_sub(large), SimDuration::from_millis(2));
        assert_eq!(d.stats().files_opened, 2);
    }

    #[test]
    fn db_rows_cheaper_than_small_files() {
        let d = dev();
        let file = d.charge_open(100); // small file
        let row = d.charge_db_read(1);
        assert!(
            row < file,
            "db row {row} should be cheaper than small file {file}"
        );
    }

    #[test]
    fn counters_accumulate() {
        let d = dev();
        d.charge_create(10);
        d.charge_create(10);
        d.charge_db_write(5);
        d.charge_fsync();
        let s = d.stats();
        assert_eq!(s.files_created, 2);
        assert_eq!(s.db_rows_written, 5);
        assert_eq!(s.fsyncs, 1);
    }

    #[test]
    fn zero_bps_means_free() {
        let mut p = test_profile();
        p.seq_read_bps = 0;
        let d = SimDevice::new(p, Arc::new(SimClock::new()));
        assert_eq!(d.charge_read(12345), SimDuration::ZERO);
    }
}
