//! The virtual-time registry engine: a discrete-event simulation of
//! admission, deficit-round-robin dispatch, coalescing, and completion.
//!
//! Determinism contract: given the same requests, model, and config,
//! every field of [`RegistryOutcome`] — including the rendered request
//! log and its SHA-256 fingerprint — is byte-identical. The engine is
//! sequential; nothing here depends on the thread pool, the host, or
//! wall time. Ties are broken explicitly: completions at time `t` are
//! processed before arrivals at `t`, simultaneous completions order by
//! dispatch sequence number, simultaneous arrivals by request index.

use crate::{RequestKey, ServeRequest, ServiceModel};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use xpl_obs::{Counter, Gauge, Histogram, Registry, Section};
use xpl_util::Sha256;

/// Registry policy knobs.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Simulated service executors (concurrent store hits).
    pub servers: usize,
    /// Per-tenant queue bound; arrivals beyond it are rejected.
    pub queue_depth: usize,
    /// Deficit round-robin quantum, in virtual ns of service time
    /// granted per scheduler visit.
    pub quantum_ns: u64,
    /// Coalesce concurrent identical retrievals into one store hit.
    pub coalesce: bool,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            servers: 4,
            queue_depth: 64,
            quantum_ns: 5_000_000,
            coalesce: true,
        }
    }
}

/// How one request ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Dispatched (or fanned out) and completed.
    Served {
        /// When its store hit started (for a coalesced waiter: the
        /// primary's start).
        start_ns: u64,
        finish_ns: u64,
        /// `true` if this request rode another request's store hit.
        coalesced: bool,
    },
    /// Rejected at admission: the tenant's queue was full.
    Overload {
        /// Queue depth observed at rejection (== configured bound).
        depth: usize,
    },
}

/// A request joined with its outcome, in submission order.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    pub tenant: u32,
    pub arrival_ns: u64,
    pub key: RequestKey,
    pub outcome: Outcome,
}

/// Per-tenant accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    pub submitted: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub served: u64,
    /// Of `served`, how many rode a coalesced store hit.
    pub coalesced: u64,
    /// Virtual store-hit time charged to this tenant's primaries.
    pub service_ns: u64,
    /// Sum of sojourn times (finish − arrival) over served requests.
    pub sojourn_ns: u64,
}

/// Everything the engine produced: per-request records, per-tenant
/// stats, aggregate counters, and the store-hit schedule to replay
/// against a real store.
#[derive(Clone, Debug)]
pub struct RegistryOutcome {
    pub records: Vec<RequestRecord>,
    pub tenants: Vec<TenantStats>,
    pub served: u64,
    pub rejected: u64,
    /// Served requests that rode someone else's store hit.
    pub coalesced_hits: u64,
    /// Actual store hits (primaries) — what a real backend executes.
    pub store_hits: u64,
    /// Request indices of the primaries, in dispatch order.
    pub store_hit_indices: Vec<usize>,
    /// Virtual time at which the last request finished.
    pub makespan_ns: u64,
    /// Sojourn times of served requests, ascending.
    pub latencies_sorted_ns: Vec<u64>,
    /// DRR scheduler visits: ring-front examinations during dispatch
    /// (each either dispatches, coalesces, or earns a quantum and
    /// rotates). A pure function of the schedule — deterministic.
    pub ring_visits: u64,
    /// Deepest any tenant queue got at admission time.
    pub max_queue_depth: usize,
}

impl RegistryOutcome {
    /// Nearest-rank percentile over served sojourn times (0 if nothing
    /// was served). `pct` in `[0, 100]`.
    pub fn latency_percentile_ns(&self, pct: u32) -> u64 {
        let n = self.latencies_sorted_ns.len();
        if n == 0 {
            return 0;
        }
        let idx = ((n - 1) as u64 * pct as u64 / 100) as usize;
        self.latencies_sorted_ns[idx]
    }

    /// Coalesced fraction of served requests, in `[0, 1]`.
    pub fn coalescing_hit_rate(&self) -> f64 {
        if self.served == 0 {
            return 0.0;
        }
        self.coalesced_hits as f64 / self.served as f64
    }

    /// Max/min served count over tenants that submitted anything
    /// (1.0 is perfectly fair; a starved tenant pushes this toward the
    /// max served count).
    pub fn fairness_max_min_served(&self) -> f64 {
        let counts: Vec<u64> = self
            .tenants
            .iter()
            .filter(|t| t.submitted > 0)
            .map(|t| t.served)
            .collect();
        match (counts.iter().max(), counts.iter().min()) {
            (Some(&max), Some(&min)) => max as f64 / min.max(1) as f64,
            _ => 1.0,
        }
    }

    /// Canonical request log: one line per request in submission order.
    /// This is the determinism witness — byte-identical across runs and
    /// thread counts.
    pub fn render_log(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 64);
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "#{i:06} t={} tenant={} {} -> ",
                r.arrival_ns,
                r.tenant,
                r.key.render()
            ));
            match &r.outcome {
                Outcome::Served {
                    start_ns,
                    finish_ns,
                    coalesced,
                } => out.push_str(&format!(
                    "served start={start_ns} finish={finish_ns} sojourn={} via={}\n",
                    finish_ns - r.arrival_ns,
                    if *coalesced { "coalesced" } else { "hit" }
                )),
                Outcome::Overload { depth } => {
                    out.push_str(&format!("rejected overload depth={depth}\n"))
                }
            }
        }
        out
    }

    /// SHA-256 of [`RegistryOutcome::render_log`], hex.
    pub fn log_digest_hex(&self) -> String {
        Sha256::digest(self.render_log().as_bytes()).to_hex()
    }
}

struct Tenant {
    queue: VecDeque<usize>,
    deficit: u64,
    in_ring: bool,
}

/// One in-flight store hit: the primary request plus coalesced waiters.
struct Task {
    key: RequestKey,
    primary: usize,
    start_ns: u64,
    waiters: Vec<usize>,
}

struct Engine<'a, M: ServiceModel> {
    reqs: &'a [ServeRequest],
    model: &'a M,
    cfg: &'a RegistryConfig,
    now: u64,
    busy: usize,
    seq: u64,
    tenants: Vec<Tenant>,
    stats: Vec<TenantStats>,
    ring: VecDeque<u32>,
    tasks: Vec<Task>,
    inflight: HashMap<RequestKey, usize>,
    completions: BinaryHeap<Reverse<(u64, u64, usize)>>,
    outcomes: Vec<Option<Outcome>>,
    store_hit_indices: Vec<usize>,
    ring_visits: u64,
    max_queue_depth: usize,
}

impl<M: ServiceModel> Engine<'_, M> {
    fn arrive(&mut self, idx: usize) {
        let req = &self.reqs[idx];
        let t = req.tenant as usize;
        self.stats[t].submitted += 1;
        if self.cfg.coalesce {
            if let Some(&tid) = self.inflight.get(&req.key) {
                // Ride the in-flight hit: no queue slot, no store cost.
                self.tasks[tid].waiters.push(idx);
                self.stats[t].admitted += 1;
                return;
            }
        }
        let tenant = &mut self.tenants[t];
        if tenant.queue.len() >= self.cfg.queue_depth {
            self.outcomes[idx] = Some(Outcome::Overload {
                depth: tenant.queue.len(),
            });
            self.stats[t].rejected += 1;
            return;
        }
        tenant.queue.push_back(idx);
        self.max_queue_depth = self.max_queue_depth.max(tenant.queue.len());
        self.stats[t].admitted += 1;
        if !tenant.in_ring {
            tenant.in_ring = true;
            self.ring.push_back(req.tenant);
        }
    }

    /// Start store hits while servers are free and queues are
    /// non-empty. Deficit round-robin: the tenant at the ring's front
    /// dispatches if its deficit covers the head's cost, otherwise it
    /// earns a quantum and rotates to the back. Every rotation grants a
    /// quantum, so any queued head is served after at most
    /// `cost / quantum` visits — no tenant starves.
    fn dispatch(&mut self) {
        while self.busy < self.cfg.servers {
            let Some(&tn) = self.ring.front() else { break };
            self.ring_visits += 1;
            let t = tn as usize;
            let head = *self.tenants[t]
                .queue
                .front()
                .expect("ring tenant non-empty");
            let key = self.reqs[head].key.clone();
            if self.cfg.coalesce {
                if let Some(&tid) = self.inflight.get(&key) {
                    self.tasks[tid].waiters.push(head);
                    self.pop_head(t);
                    continue;
                }
            }
            let cost = self.model.service_ns(&key).max(1);
            let tenant = &mut self.tenants[t];
            if tenant.deficit < cost {
                // Alone in the ring there is no one to defer to; jump
                // straight to the cost instead of iterating quanta.
                if self.ring.len() == 1 {
                    tenant.deficit = cost;
                } else {
                    tenant.deficit += self.cfg.quantum_ns.max(1);
                    self.ring.rotate_left(1);
                }
                continue;
            }
            tenant.deficit -= cost;
            self.pop_head(t);
            let tid = self.tasks.len();
            self.tasks.push(Task {
                key: key.clone(),
                primary: head,
                start_ns: self.now,
                waiters: Vec::new(),
            });
            self.inflight.insert(key, tid);
            self.store_hit_indices.push(head);
            self.stats[t].service_ns += cost;
            self.busy += 1;
            self.seq += 1;
            self.completions
                .push(Reverse((self.now + cost, self.seq, tid)));
        }
    }

    /// Remove tenant `t`'s queue head; drop it from the ring (resetting
    /// its deficit, per classic DRR) when the queue empties.
    fn pop_head(&mut self, t: usize) {
        let tenant = &mut self.tenants[t];
        tenant.queue.pop_front();
        if tenant.queue.is_empty() {
            tenant.deficit = 0;
            tenant.in_ring = false;
            let pos = self
                .ring
                .iter()
                .position(|&x| x as usize == t)
                .expect("tenant in ring");
            self.ring.remove(pos);
        }
    }

    /// Finish task `tid` at `self.now`: record the primary, fan the
    /// payload out to waiters, free the server.
    fn complete(&mut self, tid: usize) {
        let key = self.tasks[tid].key.clone();
        self.inflight.remove(&key);
        let start_ns = self.tasks[tid].start_ns;
        let primary = self.tasks[tid].primary;
        self.record_served(primary, start_ns, self.now, false);
        let fanout = self.model.fanout_ns(&key).max(1);
        let waiters = std::mem::take(&mut self.tasks[tid].waiters);
        for w in waiters {
            self.record_served(w, start_ns, self.now + fanout, true);
        }
        self.busy -= 1;
    }

    fn record_served(&mut self, idx: usize, start_ns: u64, finish_ns: u64, coalesced: bool) {
        let t = self.reqs[idx].tenant as usize;
        self.outcomes[idx] = Some(Outcome::Served {
            start_ns,
            finish_ns,
            coalesced,
        });
        self.stats[t].served += 1;
        if coalesced {
            self.stats[t].coalesced += 1;
        }
        self.stats[t].sojourn_ns += finish_ns - self.reqs[idx].arrival_ns;
    }
}

/// Run the registry over `requests` (sorted by `arrival_ns`; ties by
/// position) against a service-cost model. Panics if arrivals are out
/// of order — schedules come from deterministic generators that sort.
pub fn run_registry<M: ServiceModel>(
    requests: &[ServeRequest],
    model: &M,
    cfg: &RegistryConfig,
) -> RegistryOutcome {
    assert!(cfg.servers > 0, "registry needs at least one server");
    assert!(cfg.queue_depth > 0, "queue depth must be at least 1");
    assert!(
        requests
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns),
        "requests must be sorted by arrival time"
    );
    let n_tenants = requests.iter().map(|r| r.tenant + 1).max().unwrap_or(0) as usize;
    let mut eng = Engine {
        reqs: requests,
        model,
        cfg,
        now: 0,
        busy: 0,
        seq: 0,
        tenants: (0..n_tenants)
            .map(|_| Tenant {
                queue: VecDeque::new(),
                deficit: 0,
                in_ring: false,
            })
            .collect(),
        stats: vec![TenantStats::default(); n_tenants],
        ring: VecDeque::new(),
        tasks: Vec::new(),
        inflight: HashMap::new(),
        completions: BinaryHeap::new(),
        outcomes: vec![None; requests.len()],
        store_hit_indices: Vec::new(),
        ring_visits: 0,
        max_queue_depth: 0,
    };

    for (idx, req) in requests.iter().enumerate() {
        let t_arr = req.arrival_ns;
        // Completions at or before this arrival happen first.
        while let Some(&Reverse((finish, _, tid))) = eng.completions.peek() {
            if finish > t_arr {
                break;
            }
            eng.completions.pop();
            eng.now = finish;
            eng.complete(tid);
            eng.dispatch();
        }
        eng.now = t_arr;
        eng.arrive(idx);
        eng.dispatch();
    }
    // Drain: every completion may unblock queued work.
    while let Some(Reverse((finish, _, tid))) = eng.completions.pop() {
        eng.now = finish;
        eng.complete(tid);
        eng.dispatch();
    }
    debug_assert!(eng.ring.is_empty() && eng.busy == 0);

    let records: Vec<RequestRecord> = requests
        .iter()
        .zip(&eng.outcomes)
        .map(|(r, o)| RequestRecord {
            tenant: r.tenant,
            arrival_ns: r.arrival_ns,
            key: r.key.clone(),
            outcome: o.clone().expect("every request has an outcome"),
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    let mut served = 0u64;
    let mut rejected = 0u64;
    let mut coalesced_hits = 0u64;
    let mut makespan_ns = 0u64;
    for r in &records {
        match &r.outcome {
            Outcome::Served {
                finish_ns,
                coalesced,
                ..
            } => {
                served += 1;
                if *coalesced {
                    coalesced_hits += 1;
                }
                latencies.push(finish_ns - r.arrival_ns);
                makespan_ns = makespan_ns.max(*finish_ns);
            }
            Outcome::Overload { .. } => rejected += 1,
        }
    }
    latencies.sort_unstable();
    RegistryOutcome {
        served,
        rejected,
        coalesced_hits,
        store_hits: eng.store_hit_indices.len() as u64,
        store_hit_indices: eng.store_hit_indices,
        makespan_ns,
        latencies_sorted_ns: latencies,
        records,
        tenants: eng.stats,
        ring_visits: eng.ring_visits,
        max_queue_depth: eng.max_queue_depth,
    }
}

/// Pre-resolved `xpl-obs` handles for the registry engine. The engine
/// is a sequential DES over virtual time, so everything op-derived here
/// is deterministic; the queue-depth gauge is a high-water mark and
/// lives in the wall section (gauges are point-in-time by nature).
pub struct RegObs {
    served: Arc<Counter>,
    overloads: Arc<Counter>,
    coalesce_hits: Arc<Counter>,
    store_hits: Arc<Counter>,
    ring_visits: Arc<Counter>,
    sojourn_ns: Arc<Histogram>,
    tenant_served: Arc<Histogram>,
    queue_depth_max: Arc<Gauge>,
}

impl RegObs {
    /// Resolve (or re-use) the `registry.*` metric family in `reg`.
    pub fn new(reg: &Registry) -> Self {
        RegObs {
            served: reg.counter("registry.served", Section::Det),
            overloads: reg.counter("registry.overloads", Section::Det),
            coalesce_hits: reg.counter("registry.coalesce.hits", Section::Det),
            store_hits: reg.counter("registry.store_hits", Section::Det),
            ring_visits: reg.counter("registry.ring.visits", Section::Det),
            sojourn_ns: reg.histogram("registry.sojourn_ns", Section::Det),
            tenant_served: reg.histogram("registry.tenant_served", Section::Det),
            queue_depth_max: reg.gauge("registry.queue_depth.max", Section::Wall),
        }
    }

    /// Fold one finished run into the registry. Sojourns are recorded
    /// from the sorted latency list (same multiset, canonical order),
    /// per-tenant served counts as one histogram sample per tenant that
    /// submitted anything.
    pub fn record(&self, out: &RegistryOutcome) {
        self.served.add(out.served);
        self.overloads.add(out.rejected);
        self.coalesce_hits.add(out.coalesced_hits);
        self.store_hits.add(out.store_hits);
        self.ring_visits.add(out.ring_visits);
        for &ns in &out.latencies_sorted_ns {
            self.sojourn_ns.record(ns);
        }
        for t in out.tenants.iter().filter(|t| t.submitted > 0) {
            self.tenant_served.record(t.served);
        }
        self.queue_depth_max.set_max(out.max_queue_depth as u64);
    }
}

/// [`run_registry`] with an optional metrics sink. The sink is folded
/// in *after* the run from the outcome alone, so attaching one cannot
/// perturb the schedule — the outcome (and its log fingerprint) is
/// byte-identical with or without `obs`.
pub fn run_registry_obs<M: ServiceModel>(
    requests: &[ServeRequest],
    model: &M,
    cfg: &RegistryConfig,
    obs: Option<&RegObs>,
) -> RegistryOutcome {
    let out = run_registry(requests, model, cfg);
    if let Some(o) = obs {
        o.record(&out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic stub: cost keyed off the rendered key's bytes.
    struct StubModel {
        base_ns: u64,
        spread_ns: u64,
        fanout: u64,
    }

    impl StubModel {
        fn flat(cost: u64) -> StubModel {
            StubModel {
                base_ns: cost,
                spread_ns: 0,
                fanout: 1_000,
            }
        }
    }

    impl ServiceModel for StubModel {
        fn service_ns(&self, key: &RequestKey) -> u64 {
            let h = Sha256::digest(key.render().as_bytes()).prefix64();
            self.base_ns
                + if self.spread_ns == 0 {
                    0
                } else {
                    h % self.spread_ns
                }
        }
        fn fanout_ns(&self, _key: &RequestKey) -> u64 {
            self.fanout
        }
    }

    fn img(name: &str) -> RequestKey {
        RequestKey::Image {
            image: name.to_string(),
        }
    }

    fn req(tenant: u32, arrival_ns: u64, key: RequestKey) -> ServeRequest {
        ServeRequest {
            tenant,
            arrival_ns,
            key,
        }
    }

    #[test]
    fn empty_schedule_is_empty_outcome() {
        let out = run_registry(&[], &StubModel::flat(100), &RegistryConfig::default());
        assert_eq!(out.served, 0);
        assert_eq!(out.rejected, 0);
        assert_eq!(out.latency_percentile_ns(99), 0);
        assert_eq!(out.fairness_max_min_served(), 1.0);
        assert_eq!(out.render_log(), "");
    }

    #[test]
    fn full_queue_rejects_with_typed_overload() {
        let cfg = RegistryConfig {
            servers: 1,
            queue_depth: 2,
            coalesce: false,
            ..RegistryConfig::default()
        };
        // One slow hit in service, two queued, the rest must bounce.
        let reqs: Vec<ServeRequest> = (0..6)
            .map(|i| req(0, 0, img(&format!("img-{i}"))))
            .collect();
        let out = run_registry(&reqs, &StubModel::flat(1_000_000), &cfg);
        assert_eq!(out.served, 3, "1 in service + 2 queued");
        assert_eq!(out.rejected, 3);
        assert!(matches!(
            out.records[5].outcome,
            Outcome::Overload { depth: 2 }
        ));
        assert_eq!(out.tenants[0].rejected, 3);
        // The queue drains once the server frees up: all admitted served.
        assert_eq!(out.tenants[0].admitted, out.tenants[0].served);
    }

    #[test]
    fn queue_bound_is_per_tenant() {
        let cfg = RegistryConfig {
            servers: 1,
            queue_depth: 4,
            coalesce: false,
            ..RegistryConfig::default()
        };
        // Tenant 0 floods far past its own bound; tenant 1's single
        // request arrives after the flood and must still be admitted.
        let mut reqs: Vec<ServeRequest> = (0..20)
            .map(|i| req(0, 0, img(&format!("flood-{i}"))))
            .collect();
        reqs.push(req(1, 0, img("light")));
        let out = run_registry(&reqs, &StubModel::flat(1_000_000), &cfg);
        assert_eq!(out.tenants[1].rejected, 0);
        assert_eq!(out.tenants[1].served, 1);
        assert!(out.tenants[0].rejected > 0);
    }

    #[test]
    fn coalescing_shares_one_store_hit() {
        let cfg = RegistryConfig {
            servers: 2,
            queue_depth: 64,
            coalesce: true,
            ..RegistryConfig::default()
        };
        let reqs: Vec<ServeRequest> = (0..5).map(|i| req(i % 3, i as u64, img("hot"))).collect();
        let out = run_registry(&reqs, &StubModel::flat(1_000_000), &cfg);
        assert_eq!(out.store_hits, 1, "all five ride one hit");
        assert_eq!(out.coalesced_hits, 4);
        assert_eq!(out.served, 5);
        assert_eq!(out.store_hit_indices, vec![0]);
        // Waiters finish at the primary's finish plus the fanout cost.
        let Outcome::Served { finish_ns: f0, .. } = out.records[0].outcome else {
            panic!()
        };
        for r in &out.records[1..] {
            let Outcome::Served {
                finish_ns,
                coalesced,
                ..
            } = r.outcome
            else {
                panic!()
            };
            assert!(coalesced);
            assert_eq!(finish_ns, f0 + 1_000);
        }
        // A request arriving after completion is a fresh store hit.
        let mut reqs2 = reqs.clone();
        reqs2.push(req(0, 10_000_000, img("hot")));
        let out2 = run_registry(&reqs2, &StubModel::flat(1_000_000), &cfg);
        assert_eq!(out2.store_hits, 2);
    }

    #[test]
    fn coalescing_off_hits_store_every_time() {
        let cfg = RegistryConfig {
            servers: 2,
            queue_depth: 64,
            coalesce: false,
            ..RegistryConfig::default()
        };
        let reqs: Vec<ServeRequest> = (0..5).map(|i| req(0, i as u64, img("hot"))).collect();
        let out = run_registry(&reqs, &StubModel::flat(1_000_000), &cfg);
        assert_eq!(out.store_hits, 5);
        assert_eq!(out.coalesced_hits, 0);
    }

    #[test]
    fn drr_alternates_between_backlogged_tenants() {
        let cfg = RegistryConfig {
            servers: 1,
            queue_depth: 64,
            quantum_ns: 1_000_000,
            coalesce: false,
        };
        // Tenant 0 enqueues its entire flood before tenant 1's requests
        // arrive (same virtual instant, earlier indices). Global FIFO
        // would serve all of tenant 0 first; DRR must alternate.
        let mut reqs: Vec<ServeRequest> =
            (0..20).map(|i| req(0, 0, img(&format!("a-{i}")))).collect();
        reqs.extend((0..20).map(|i| req(1, 0, img(&format!("b-{i}")))));
        let out = run_registry(&reqs, &StubModel::flat(1_000_000), &cfg);
        assert_eq!(out.served, 40);
        // Every prefix of the service order is near-balanced.
        let mut a = 0i64;
        let mut b = 0i64;
        for &idx in &out.store_hit_indices {
            if out.records[idx].tenant == 0 {
                a += 1;
            } else {
                b += 1;
            }
            assert!((a - b).abs() <= 2, "service order drifted: a={a} b={b}");
        }
        assert!((out.fairness_max_min_served() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_log_and_digest() {
        let cfg = RegistryConfig::default();
        let model = StubModel {
            base_ns: 200_000,
            spread_ns: 3_000_000,
            fanout: 5_000,
        };
        let mut rng = xpl_util::SplitMix64::new(99);
        let reqs: Vec<ServeRequest> = (0..200)
            .scan(0u64, |t, i| {
                *t += rng.next_below(50_000);
                Some(req(
                    (i % 7) as u32,
                    *t,
                    img(&format!("img-{}", rng.next_below(20))),
                ))
            })
            .collect();
        let a = run_registry(&reqs, &model, &cfg);
        let b = run_registry(&reqs, &model, &cfg);
        assert_eq!(a.render_log(), b.render_log());
        assert_eq!(a.log_digest_hex(), b.log_digest_hex());
        assert_eq!(a.tenants, b.tenants);
        assert_eq!(a.latencies_sorted_ns, b.latencies_sorted_ns);
        assert!(a.served + a.rejected == 200);
        assert!(a.latency_percentile_ns(99) >= a.latency_percentile_ns(50));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let out = RegistryOutcome {
            records: vec![],
            tenants: vec![],
            served: 4,
            rejected: 0,
            coalesced_hits: 0,
            store_hits: 4,
            store_hit_indices: vec![],
            makespan_ns: 0,
            latencies_sorted_ns: vec![10, 20, 30, 40],
            ring_visits: 0,
            max_queue_depth: 0,
        };
        assert_eq!(out.latency_percentile_ns(0), 10);
        assert_eq!(out.latency_percentile_ns(50), 20);
        assert_eq!(out.latency_percentile_ns(99), 30);
        assert_eq!(out.latency_percentile_ns(100), 40);
    }
}
