//! Multi-tenant image-registry front end.
//!
//! The stores below this crate answer one retrieval at a time; a
//! registry *serves* them: thousands of clients, skewed popularity,
//! tenants that must not starve each other. This crate is that front
//! end, kept deliberately free of store types so it can sit in front of
//! any of the five evaluated stores (the bench crate plugs in a
//! [`ServiceModel`] measured against a real store):
//!
//! * **Admission control** — each tenant owns a bounded FIFO queue;
//!   a request arriving at a full queue is rejected with a typed
//!   `Overload` outcome instead of growing memory without bound. The
//!   bound is per tenant, so one tenant's flood can fill only its own
//!   queue.
//! * **Coalescing** — concurrent identical retrievals share one store
//!   hit: the first request becomes the *primary*, later arrivals for
//!   the same key attach as waiters and are fanned the payload out at
//!   completion for a copy cost, not a store cost.
//! * **Fair share** — servers pick work by deficit round-robin over the
//!   tenant queues: each visit grants a tenant a quantum of virtual
//!   service time, and a tenant may only dispatch when its accumulated
//!   deficit covers the head request's cost. Heavy tenants therefore
//!   get throughput proportional to their share, never the whole box.
//!
//! The engine ([`run_registry`]) is a discrete-event simulation over
//! **virtual time**: service costs come from the cost ledger the
//! simulated stores already maintain, so latency percentiles are exact,
//! reproducible numbers — byte-identical across runs, hosts, and thread
//! counts — rather than wall-clock noise. Real-store execution (and the
//! wall-clock throughput number) happens outside, by replaying the
//! engine's store-hit schedule; see `xpl-bench`'s serve driver.

mod engine;
mod gate;

pub use engine::{
    run_registry, run_registry_obs, Outcome, RegObs, RegistryConfig, RegistryOutcome,
    RequestRecord, TenantStats,
};
pub use gate::{AdmissionGate, AdmissionPermit, Overloaded};

/// What a client asks the registry for. Keys are the coalescing
/// identity: two requests coalesce iff their keys are equal.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RequestKey {
    /// Full image retrieval.
    Image { image: String },
    /// A byte range of the image's disk; `start_frac` is in 256ths of
    /// the disk size (the trace convention), `len_bytes` in bytes.
    Range {
        image: String,
        start_frac: u32,
        len_bytes: u32,
    },
}

impl RequestKey {
    /// Canonical one-token rendering used by request logs.
    pub fn render(&self) -> String {
        match self {
            RequestKey::Image { image } => format!("retrieve {image}"),
            RequestKey::Range {
                image,
                start_frac,
                len_bytes,
            } => format!("range {image} frac={start_frac} len={len_bytes}"),
        }
    }

    /// Inverse of [`RequestKey::render`] — the wire layer ships keys in
    /// their canonical rendering, and the server parses them back.
    /// Returns `None` for anything that is not an exact rendering
    /// (image names may contain spaces; the range suffix is parsed from
    /// the right).
    pub fn parse(s: &str) -> Option<RequestKey> {
        if let Some(image) = s.strip_prefix("retrieve ") {
            if image.is_empty() {
                return None;
            }
            return Some(RequestKey::Image {
                image: image.to_string(),
            });
        }
        let rest = s.strip_prefix("range ")?;
        let (rest, len_tok) = rest.rsplit_once(' ')?;
        let (image, frac_tok) = rest.rsplit_once(' ')?;
        if image.is_empty() {
            return None;
        }
        let start_frac: u32 = frac_tok.strip_prefix("frac=")?.parse().ok()?;
        let len_bytes: u32 = len_tok.strip_prefix("len=")?.parse().ok()?;
        Some(RequestKey::Range {
            image: image.to_string(),
            start_frac,
            len_bytes,
        })
    }
}

/// One client request: which tenant, when (virtual ns), and what.
/// Requests must be fed to the engine sorted by `arrival_ns` (ties
/// break by position, which is how simultaneous arrivals stay
/// deterministic).
#[derive(Clone, Debug)]
pub struct ServeRequest {
    pub tenant: u32,
    pub arrival_ns: u64,
    pub key: RequestKey,
}

/// The service-cost oracle the engine charges virtual time against.
pub trait ServiceModel {
    /// Virtual nanoseconds one store hit for `key` takes.
    fn service_ns(&self, key: &RequestKey) -> u64;
    /// Virtual nanoseconds to fan a completed payload out to one
    /// coalesced waiter (a memory copy, not a store hit).
    fn fanout_ns(&self, key: &RequestKey) -> u64;
}

#[cfg(test)]
mod key_tests {
    use super::RequestKey;

    #[test]
    fn parse_is_the_inverse_of_render() {
        let keys = [
            RequestKey::Image {
                image: "redis".into(),
            },
            RequestKey::Image {
                image: "name with spaces".into(),
            },
            RequestKey::Range {
                image: "ide-build".into(),
                start_frac: 0,
                len_bytes: 512,
            },
            RequestKey::Range {
                image: "a b c".into(),
                start_frac: 255,
                len_bytes: 16384,
            },
        ];
        for key in keys {
            assert_eq!(
                RequestKey::parse(&key.render()).as_ref(),
                Some(&key),
                "{}",
                key.render()
            );
        }
    }

    #[test]
    fn parse_rejects_malformed_renderings() {
        for bad in [
            "",
            "retrieve ",
            "fetch img",
            "range img frac=1",
            "range  frac=1 len=2",
            "range img frac=x len=2",
            "range img frac=1 len=",
            "range img len=2 frac=1",
        ] {
            assert_eq!(RequestKey::parse(bad), None, "{bad:?}");
        }
    }
}
