//! Live admission control: the wall-clock counterpart of the engine's
//! per-tenant bounded queues.
//!
//! The virtual-time engine models admission as a bounded FIFO per
//! tenant; a real threaded front end needs the same bound enforced
//! against *in-flight* requests. [`AdmissionGate`] is that bound: each
//! tenant may have at most `depth` requests in service at once, and an
//! arrival past the bound gets a typed [`Overloaded`] — the wire layer
//! turns that into an `Overload` response, never a dropped connection.
//! The bound is per tenant, so one tenant's flood can exhaust only its
//! own slots (the same isolation contract the engine pins).

use std::collections::HashMap;
use std::sync::Mutex;

/// Typed admission rejection: the tenant's in-flight bound is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    pub tenant: u32,
    /// In-flight requests observed at rejection (== the bound).
    pub in_flight: usize,
}

/// Per-tenant bounded in-flight admission. All methods are `&self`;
/// the gate is shared across connection threads.
pub struct AdmissionGate {
    depth: usize,
    in_flight: Mutex<HashMap<u32, usize>>,
}

impl AdmissionGate {
    /// A gate admitting at most `depth` concurrent requests per tenant.
    pub fn new(depth: usize) -> AdmissionGate {
        assert!(depth > 0, "admission gate needs a positive depth");
        AdmissionGate {
            depth,
            in_flight: Mutex::new(HashMap::new()),
        }
    }

    /// Try to admit one request for `tenant`. The returned permit
    /// releases the slot on drop.
    pub fn try_admit(&self, tenant: u32) -> Result<AdmissionPermit<'_>, Overloaded> {
        let mut map = self.in_flight.lock().unwrap();
        let slot = map.entry(tenant).or_insert(0);
        if *slot >= self.depth {
            return Err(Overloaded {
                tenant,
                in_flight: *slot,
            });
        }
        *slot += 1;
        Ok(AdmissionPermit { gate: self, tenant })
    }

    /// Currently admitted requests for `tenant`.
    pub fn in_flight(&self, tenant: u32) -> usize {
        *self.in_flight.lock().unwrap().get(&tenant).unwrap_or(&0)
    }

    fn release(&self, tenant: u32) {
        let mut map = self.in_flight.lock().unwrap();
        let slot = map.get_mut(&tenant).expect("release without admit");
        *slot = slot.checked_sub(1).expect("admission underflow");
    }
}

/// RAII admission slot; dropping it frees the tenant's slot.
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
    tenant: u32,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.release(self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_enforced_and_released() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_admit(0).unwrap();
        let _b = gate.try_admit(0).unwrap();
        assert_eq!(
            gate.try_admit(0).err(),
            Some(Overloaded {
                tenant: 0,
                in_flight: 2
            })
        );
        assert_eq!(gate.in_flight(0), 2);
        drop(a);
        assert!(gate.try_admit(0).is_ok());
    }

    #[test]
    fn bound_is_per_tenant() {
        let gate = AdmissionGate::new(1);
        let _a = gate.try_admit(0).unwrap();
        assert!(gate.try_admit(0).is_err());
        // Another tenant's slots are untouched by tenant 0's flood.
        assert!(gate.try_admit(1).is_ok());
    }

    #[test]
    fn concurrent_admits_never_exceed_depth() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let gate = Arc::new(AdmissionGate::new(3));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (gate, peak, live) = (gate.clone(), peak.clone(), live.clone());
                s.spawn(move || {
                    for _ in 0..200 {
                        if let Ok(_permit) = gate.try_admit(7) {
                            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            live.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(gate.in_flight(7), 0);
    }
}
