//! Quota/fairness properties under adversarial skew: a heavy tenant
//! floods the registry ahead of everyone else, with random costs,
//! tenant counts, and queue bounds. Deficit round-robin must keep the
//! light tenants flowing — no starvation, no "drain the flood first".

use proptest::prelude::*;
use xpl_registry::{run_registry, Outcome, RegistryConfig, RequestKey, ServeRequest, ServiceModel};
use xpl_util::Sha256;

/// Deterministic pseudo-random costs keyed off the request key.
struct HashCostModel {
    base_ns: u64,
    spread_ns: u64,
}

impl ServiceModel for HashCostModel {
    fn service_ns(&self, key: &RequestKey) -> u64 {
        self.base_ns + Sha256::digest(key.render().as_bytes()).prefix64() % self.spread_ns
    }
    fn fanout_ns(&self, _key: &RequestKey) -> u64 {
        1_000
    }
}

fn img(tenant: u32, i: u64) -> RequestKey {
    RequestKey::Image {
        image: format!("t{tenant}-img-{i}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_tenant_starves_under_adversarial_skew(
        light_tenants in 1u32..5,
        light_requests in 1u64..8,
        flood in 40u64..120,
        base_ns in 10_000u64..1_000_000,
        spread_ns in 1u64..2_000_000,
        servers in 1usize..4,
        quantum_ns in 100_000u64..10_000_000,
    ) {
        // Tenant 0 floods everything at t=0, before any light tenant's
        // requests; queue depth admits the whole flood, so FIFO-by-
        // arrival would serve the flood to completion first.
        let mut reqs: Vec<ServeRequest> = (0..flood)
            .map(|i| ServeRequest { tenant: 0, arrival_ns: 0, key: img(0, i) })
            .collect();
        for t in 1..=light_tenants {
            for i in 0..light_requests {
                reqs.push(ServeRequest { tenant: t, arrival_ns: 1, key: img(t, i) });
            }
        }
        let cfg = RegistryConfig {
            servers,
            queue_depth: (flood + light_requests) as usize,
            quantum_ns,
            coalesce: false,
        };
        let model = HashCostModel { base_ns, spread_ns };
        let out = run_registry(&reqs, &model, &cfg);

        // Everything admitted is eventually served; nobody starves.
        prop_assert_eq!(out.rejected, 0);
        for (t, stats) in out.tenants.iter().enumerate() {
            prop_assert_eq!(stats.served, stats.submitted, "tenant {} starved", t);
        }

        // The scheduler must interleave: every light tenant's first
        // request finishes before the flood's last request does (global
        // FIFO would violate this for every light tenant).
        let flood_last_finish = out.records[..flood as usize]
            .iter()
            .map(|r| match r.outcome {
                Outcome::Served { finish_ns, .. } => finish_ns,
                _ => unreachable!(),
            })
            .max()
            .unwrap();
        for t in 1..=light_tenants {
            let first_finish = out
                .records
                .iter()
                .filter(|r| r.tenant == t)
                .map(|r| match r.outcome {
                    Outcome::Served { finish_ns, .. } => finish_ns,
                    _ => unreachable!(),
                })
                .min()
                .unwrap();
            prop_assert!(
                first_finish < flood_last_finish,
                "tenant {} waited out the entire flood ({} >= {})",
                t, first_finish, flood_last_finish
            );
        }

        // Determinism: the rerun is byte-identical.
        let again = run_registry(&reqs, &model, &cfg);
        prop_assert_eq!(out.log_digest_hex(), again.log_digest_hex());
    }
}
