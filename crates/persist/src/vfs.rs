//! The virtual filesystem all durable I/O goes through.
//!
//! Two implementations:
//!
//! * [`StdFs`] — real `std::fs` under a root directory, for actually
//!   durable repositories (`fsync` maps to `File::sync_all`, atomic
//!   swap maps to `rename(2)`).
//! * [`MemFs`] — a deterministic in-memory medium with fault injection.
//!   Every file tracks how many of its bytes have been synced; a
//!   [`MemFs::power_cut`] drops everything after the last sync, and
//!   [`MemFs::set_crash_at`] arms a crash at the N-th mutating
//!   operation, which applies a *torn* append (only a prefix of the
//!   payload reaches the platter) and then fails every operation until
//!   the power cut "reboots" the medium. This is what makes
//!   crash-recovery testable byte-deterministically in `cargo test`.
//!
//! File names are flat (no separators); the durable store namespaces its
//! files with a `prefix.` convention (`pkg.wal`, `pkg.seg-000001`, …).

use std::collections::BTreeMap;
use std::io::{Read as _, Seek as _, Write as _};
use std::path::PathBuf;
use std::sync::Mutex;

use crate::PersistError;

/// Abstract durable medium. All operations are `&self`; implementations
/// are internally synchronized.
pub trait Vfs: Send + Sync {
    /// Read a whole file.
    fn read(&self, name: &str) -> Result<Vec<u8>, PersistError>;

    /// Read `len` bytes at `offset`; short reads are errors.
    fn read_at(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PersistError>;

    /// Append bytes, creating the file if missing. Appended bytes are
    /// *not* durable until [`Vfs::sync`].
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), PersistError>;

    /// Make all previously appended bytes of `name` durable.
    fn sync(&self, name: &str) -> Result<(), PersistError>;

    /// Replace the file's content atomically (write-temp + rename): a
    /// crash leaves either the old content or the new, never a mix.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), PersistError>;

    /// Truncate the file to zero length (durable immediately).
    fn truncate(&self, name: &str) -> Result<(), PersistError>;

    /// Truncate the file to `len` bytes (durable immediately). Recovery
    /// uses this to cut a torn tail off the WAL so later appends extend
    /// a clean log.
    fn truncate_to(&self, name: &str, len: u64) -> Result<(), PersistError>;

    /// Delete the file (durable immediately; missing files are fine).
    /// Checkpoints use this to retire stale WAL generations.
    fn remove(&self, name: &str) -> Result<(), PersistError>;

    fn exists(&self, name: &str) -> bool;

    /// Current length in bytes (0 for missing files).
    fn file_len(&self, name: &str) -> Result<u64, PersistError>;

    /// All file names, sorted.
    fn list(&self) -> Vec<String>;
}

// ------------------------------------------------------------------ MemFs

struct MemFile {
    bytes: Vec<u8>,
    /// Bytes `[0, synced)` survive a power cut.
    synced: usize,
}

struct MemState {
    files: BTreeMap<String, MemFile>,
    /// Mutating operations performed (append / sync / write_atomic /
    /// truncate).
    mutations: u64,
    /// Crash when `mutations` reaches this value.
    crash_at: Option<u64>,
    crashed: bool,
}

/// Deterministic in-memory medium with fault injection.
pub struct MemFs {
    state: Mutex<MemState>,
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl MemFs {
    pub fn new() -> MemFs {
        MemFs {
            state: Mutex::new(MemState {
                files: BTreeMap::new(),
                mutations: 0,
                crash_at: None,
                crashed: false,
            }),
        }
    }

    /// Arm a crash at the `nth` mutating operation from now (1 = the
    /// very next one). The crashing operation applies *partially*: an
    /// append tears (half its payload reaches the platter, durably — a
    /// torn sector write), every other mutation is simply lost. All
    /// subsequent operations fail with [`PersistError::Crashed`] until
    /// [`MemFs::power_cut`] reboots the medium.
    pub fn set_crash_at(&self, nth: u64) {
        let mut st = self.state.lock().unwrap();
        st.crash_at = Some(st.mutations + nth);
    }

    /// Power loss + reboot: every file loses its unsynced tail, the
    /// crashed flag clears, and any armed crash is disarmed. The medium
    /// is readable again; the caller re-runs recovery.
    pub fn power_cut(&self) {
        let mut st = self.state.lock().unwrap();
        for f in st.files.values_mut() {
            let keep = f.synced;
            f.bytes.truncate(keep);
        }
        st.crashed = false;
        st.crash_at = None;
    }

    /// Test/harness hook: append raw garbage that *is* on the platter
    /// (a torn sector at the tail of `name`), bypassing crash
    /// accounting. Recovery must drop it cleanly.
    pub fn inject_torn_tail(&self, name: &str, garbage: &[u8]) {
        let mut st = self.state.lock().unwrap();
        let f = st.files.entry(name.to_string()).or_insert(MemFile {
            bytes: Vec::new(),
            synced: 0,
        });
        f.bytes.extend_from_slice(garbage);
        f.synced = f.bytes.len();
    }

    /// Test hook: replace a file's content wholesale (durably).
    pub fn set_file(&self, name: &str, bytes: &[u8]) {
        let mut st = self.state.lock().unwrap();
        st.files.insert(
            name.to_string(),
            MemFile {
                bytes: bytes.to_vec(),
                synced: bytes.len(),
            },
        );
    }

    /// Deep copy of the current medium (files + synced marks), with no
    /// armed crash. Used by tests sweeping many what-if recoveries off
    /// one recorded run.
    pub fn fork(&self) -> MemFs {
        let st = self.state.lock().unwrap();
        MemFs {
            state: Mutex::new(MemState {
                files: st
                    .files
                    .iter()
                    .map(|(k, v)| {
                        (
                            k.clone(),
                            MemFile {
                                bytes: v.bytes.clone(),
                                synced: v.synced,
                            },
                        )
                    })
                    .collect(),
                mutations: st.mutations,
                crash_at: None,
                crashed: false,
            }),
        }
    }

    /// Mutating operations performed so far (for aiming `set_crash_at`).
    pub fn mutations(&self) -> u64 {
        self.state.lock().unwrap().mutations
    }

    /// Whether an armed crash has fired and the medium awaits
    /// [`MemFs::power_cut`].
    pub fn is_crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Bump the mutation counter; returns true if this operation is the
    /// crashing one (caller applies its partial effect, then fails).
    fn account_mutation(st: &mut MemState) -> Result<bool, PersistError> {
        if st.crashed {
            return Err(PersistError::Crashed);
        }
        st.mutations += 1;
        if st.crash_at == Some(st.mutations) {
            st.crashed = true;
            return Ok(true);
        }
        Ok(false)
    }
}

impl Vfs for MemFs {
    fn read(&self, name: &str) -> Result<Vec<u8>, PersistError> {
        let st = self.state.lock().unwrap();
        if st.crashed {
            return Err(PersistError::Crashed);
        }
        st.files
            .get(name)
            .map(|f| f.bytes.clone())
            .ok_or_else(|| PersistError::Missing(name.to_string()))
    }

    fn read_at(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PersistError> {
        let st = self.state.lock().unwrap();
        if st.crashed {
            return Err(PersistError::Crashed);
        }
        let f = st
            .files
            .get(name)
            .ok_or_else(|| PersistError::Missing(name.to_string()))?;
        let (start, end) = (offset as usize, (offset + len) as usize);
        f.bytes.get(start..end).map(|s| s.to_vec()).ok_or_else(|| {
            PersistError::Io(format!(
                "short read of {name}: want [{start}, {end}), have {}",
                f.bytes.len()
            ))
        })
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), PersistError> {
        let mut st = self.state.lock().unwrap();
        let crashing = Self::account_mutation(&mut st)?;
        let f = st.files.entry(name.to_string()).or_insert(MemFile {
            bytes: Vec::new(),
            synced: 0,
        });
        if crashing {
            // Torn write: half the payload reaches the platter, durably.
            let torn = &bytes[..bytes.len() / 2];
            f.bytes.extend_from_slice(torn);
            f.synced = f.bytes.len();
            return Err(PersistError::Crashed);
        }
        f.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, name: &str) -> Result<(), PersistError> {
        let mut st = self.state.lock().unwrap();
        if Self::account_mutation(&mut st)? {
            return Err(PersistError::Crashed); // crash mid-fsync: nothing promoted
        }
        if let Some(f) = st.files.get_mut(name) {
            f.synced = f.bytes.len();
        }
        Ok(())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), PersistError> {
        let mut st = self.state.lock().unwrap();
        if Self::account_mutation(&mut st)? {
            return Err(PersistError::Crashed); // rename never happened: old file stays
        }
        st.files.insert(
            name.to_string(),
            MemFile {
                bytes: bytes.to_vec(),
                synced: bytes.len(),
            },
        );
        Ok(())
    }

    fn truncate(&self, name: &str) -> Result<(), PersistError> {
        let mut st = self.state.lock().unwrap();
        if Self::account_mutation(&mut st)? {
            return Err(PersistError::Crashed);
        }
        if let Some(f) = st.files.get_mut(name) {
            f.bytes.clear();
            f.synced = 0;
        }
        Ok(())
    }

    fn truncate_to(&self, name: &str, len: u64) -> Result<(), PersistError> {
        let mut st = self.state.lock().unwrap();
        if Self::account_mutation(&mut st)? {
            return Err(PersistError::Crashed);
        }
        if let Some(f) = st.files.get_mut(name) {
            f.bytes.truncate(len as usize);
            f.synced = f.bytes.len();
        }
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), PersistError> {
        let mut st = self.state.lock().unwrap();
        if Self::account_mutation(&mut st)? {
            return Err(PersistError::Crashed);
        }
        st.files.remove(name);
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.state.lock().unwrap().files.contains_key(name)
    }

    fn file_len(&self, name: &str) -> Result<u64, PersistError> {
        let st = self.state.lock().unwrap();
        if st.crashed {
            return Err(PersistError::Crashed);
        }
        Ok(st
            .files
            .get(name)
            .map(|f| f.bytes.len() as u64)
            .unwrap_or(0))
    }

    fn list(&self) -> Vec<String> {
        self.state.lock().unwrap().files.keys().cloned().collect()
    }
}

// ------------------------------------------------------------------ StdFs

/// Real-filesystem backend rooted at a directory.
pub struct StdFs {
    root: PathBuf,
    /// File names whose directory entry is already fsynced — a file's
    /// entry only changes on creation (or rename/removal, which do
    /// their own directory sync), so `sync` pays the directory fsync
    /// once per file instead of on every data fsync.
    dir_synced: Mutex<std::collections::BTreeSet<String>>,
}

impl StdFs {
    /// Open (creating if needed) a durable root directory.
    pub fn new(root: impl Into<PathBuf>) -> Result<StdFs, PersistError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| PersistError::Io(e.to_string()))?;
        Ok(StdFs {
            root,
            dir_synced: Mutex::new(std::collections::BTreeSet::new()),
        })
    }

    fn path(&self, name: &str) -> Result<PathBuf, PersistError> {
        if name.contains('/') || name.contains('\\') || name == "." || name == ".." {
            return Err(PersistError::Io(format!("invalid flat file name {name:?}")));
        }
        Ok(self.root.join(name))
    }

    fn io<T>(r: std::io::Result<T>) -> Result<T, PersistError> {
        r.map_err(|e| PersistError::Io(e.to_string()))
    }

    /// Fsync the root directory so freshly created files (and renames)
    /// survive power loss — data fsync alone does not persist the
    /// directory entry on ext4/xfs.
    fn sync_dir(&self) -> Result<(), PersistError> {
        let dir = Self::io(std::fs::File::open(&self.root))?;
        Self::io(dir.sync_all())
    }
}

impl Vfs for StdFs {
    fn read(&self, name: &str) -> Result<Vec<u8>, PersistError> {
        let path = self.path(name)?;
        if !path.exists() {
            return Err(PersistError::Missing(name.to_string()));
        }
        Self::io(std::fs::read(path))
    }

    fn read_at(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PersistError> {
        let mut f = Self::io(std::fs::File::open(self.path(name)?))?;
        Self::io(f.seek(std::io::SeekFrom::Start(offset)))?;
        let mut buf = vec![0u8; len as usize];
        Self::io(f.read_exact(&mut buf))?;
        Ok(buf)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), PersistError> {
        let mut f = Self::io(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(name)?),
        )?;
        Self::io(f.write_all(bytes))
    }

    fn sync(&self, name: &str) -> Result<(), PersistError> {
        let f = Self::io(std::fs::File::open(self.path(name)?))?;
        Self::io(f.sync_all())?;
        // The file may have been created by the preceding append; its
        // directory entry must be durable too — but only once per file,
        // not on every data fsync.
        if !self.dir_synced.lock().unwrap().contains(name) {
            self.sync_dir()?;
            self.dir_synced.lock().unwrap().insert(name.to_string());
        }
        Ok(())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), PersistError> {
        let tmp = self.path(&format!("{name}.tmp~"))?;
        let dst = self.path(name)?;
        {
            let mut f = Self::io(std::fs::File::create(&tmp))?;
            Self::io(f.write_all(bytes))?;
            Self::io(f.sync_all())?;
        }
        Self::io(std::fs::rename(&tmp, &dst))?;
        // Make the rename itself durable (directory metadata); the
        // destination's entry is now covered.
        self.sync_dir()?;
        self.dir_synced.lock().unwrap().insert(name.to_string());
        Ok(())
    }

    fn truncate(&self, name: &str) -> Result<(), PersistError> {
        let f = Self::io(
            std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(self.path(name)?),
        )?;
        Self::io(f.sync_all())
    }

    fn truncate_to(&self, name: &str, len: u64) -> Result<(), PersistError> {
        let f = Self::io(
            std::fs::OpenOptions::new()
                .create(true)
                .truncate(false) // set_len below does the (partial) truncation
                .write(true)
                .open(self.path(name)?),
        )?;
        Self::io(f.set_len(len))?;
        Self::io(f.sync_all())
    }

    fn remove(&self, name: &str) -> Result<(), PersistError> {
        match std::fs::remove_file(self.path(name)?) {
            Ok(()) => {
                self.dir_synced.lock().unwrap().remove(name);
                self.sync_dir()
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(PersistError::Io(e.to_string())),
        }
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).map(|p| p.exists()).unwrap_or(false)
    }

    fn file_len(&self, name: &str) -> Result<u64, PersistError> {
        let path = self.path(name)?;
        match std::fs::metadata(path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(PersistError::Io(e.to_string())),
        }
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.root)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().is_file())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_append_read_roundtrip() {
        let fs = MemFs::new();
        fs.append("a", b"hello ").unwrap();
        fs.append("a", b"world").unwrap();
        assert_eq!(fs.read("a").unwrap(), b"hello world");
        assert_eq!(fs.read_at("a", 6, 5).unwrap(), b"world");
        assert_eq!(fs.file_len("a").unwrap(), 11);
        assert!(matches!(fs.read("b"), Err(PersistError::Missing(_))));
    }

    #[test]
    fn power_cut_drops_unsynced_tail() {
        let fs = MemFs::new();
        fs.append("wal", b"durable").unwrap();
        fs.sync("wal").unwrap();
        fs.append("wal", b"-volatile").unwrap();
        fs.power_cut();
        assert_eq!(fs.read("wal").unwrap(), b"durable");
    }

    #[test]
    fn crash_at_tears_the_append_then_poisons() {
        let fs = MemFs::new();
        fs.append("wal", b"ok").unwrap();
        fs.sync("wal").unwrap();
        fs.set_crash_at(1);
        assert_eq!(fs.append("wal", b"ABCDEFGH"), Err(PersistError::Crashed));
        assert!(fs.is_crashed());
        // Poisoned until reboot.
        assert_eq!(fs.read("wal"), Err(PersistError::Crashed));
        assert_eq!(fs.append("wal", b"more"), Err(PersistError::Crashed));
        fs.power_cut();
        // Half of the torn append ("ABCD") reached the platter.
        assert_eq!(fs.read("wal").unwrap(), b"okABCD");
    }

    #[test]
    fn write_atomic_is_all_or_nothing_under_crash() {
        let fs = MemFs::new();
        fs.write_atomic("manifest", b"v1").unwrap();
        fs.set_crash_at(1);
        assert_eq!(
            fs.write_atomic("manifest", b"v2"),
            Err(PersistError::Crashed)
        );
        fs.power_cut();
        assert_eq!(fs.read("manifest").unwrap(), b"v1");
    }

    #[test]
    fn fork_is_independent() {
        let fs = MemFs::new();
        fs.append("f", b"base").unwrap();
        fs.sync("f").unwrap();
        let fork = fs.fork();
        fs.append("f", b"+more").unwrap();
        assert_eq!(fork.read("f").unwrap(), b"base");
        assert_eq!(fs.read("f").unwrap(), b"base+more");
    }

    #[test]
    fn stdfs_roundtrip_under_target_tmp() {
        // Keep test artifacts inside the workspace target dir.
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/persist-test")
            .join(format!("vfs-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let fs = StdFs::new(&dir).unwrap();
        fs.append("seg", b"abc").unwrap();
        fs.append("seg", b"def").unwrap();
        fs.sync("seg").unwrap();
        assert_eq!(fs.read("seg").unwrap(), b"abcdef");
        assert_eq!(fs.read_at("seg", 2, 3).unwrap(), b"cde");
        fs.write_atomic("manifest", b"m1").unwrap();
        assert_eq!(fs.read("manifest").unwrap(), b"m1");
        assert_eq!(fs.list(), vec!["manifest".to_string(), "seg".to_string()]);
        fs.truncate("seg").unwrap();
        assert_eq!(fs.file_len("seg").unwrap(), 0);
        assert!(matches!(fs.read("nope"), Err(PersistError::Missing(_))));
        assert!(fs.path("../escape").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
