//! `xpl-persist` — the durable persistence subsystem: a log-structured,
//! content-addressed segment store with a write-ahead log and an
//! atomically swapped manifest.
//!
//! The paper's repository is an on-disk system (measured against a 1 TB
//! SSD); every store in this reproduction was purely in-memory until this
//! crate. `xpl-persist` supplies the missing layer:
//!
//! * [`vfs`] — the [`Vfs`] trait all I/O goes through, with two
//!   implementations: [`StdFs`] (real `std::fs` under a root directory)
//!   and [`MemFs`] (deterministic in-memory backend with fault
//!   injection: power cuts that drop unsynced bytes, torn appends,
//!   crash-at-op-N). Recovery is therefore testable byte-deterministically
//!   inside `cargo test`.
//! * [`wal`] — write-ahead log framing (`[len][crc32][payload]`) and a
//!   replay reader that stops *cleanly* at a torn tail: a record is
//!   either fully present (length + CRC check out) or dropped, never
//!   half-applied.
//! * [`segment`] — append-only blob segments. Every record embeds its
//!   digest and a CRC-32 of the payload (the slice-by-8 kernel from
//!   `xpl-util`); a corrupted record surfaces a typed
//!   [`PersistError::CorruptRecord`], never a panic.
//! * [`manifest`] — a checkpoint of the full index (digest → segment
//!   location + refcount) swapped atomically (`write tmp` → `rename`),
//!   so a crash during checkpoint keeps the old manifest.
//! * [`store`] — [`DurableContentStore`]: the durable twin of
//!   `xpl-store`'s sharded CAS. Reads fan out across 16 digest-addressed
//!   shards; mutations append to the active segment and the WAL under
//!   the log lock, then update memory (disk-before-memory, so recovery
//!   never observes state the log cannot reproduce).
//!
//! # Write path and fsync points
//!
//! ```text
//! put(new blob):  segment append ── sync ──► WAL append ── sync ──► index insert
//! add_ref/release:                           WAL append ── sync ──► index update
//! checkpoint:     manifest tmp ── sync ──► rename ── sync ──► WAL rotation
//! ```
//!
//! Every mutation is durable before it returns (on [`StdFs`], syncs
//! also fsync the directory so freshly created files survive power
//! loss). The WAL is generational: each checkpoint's manifest names
//! the log generation it covers (`prefix.wal-NNNNNN`) and rotates to
//! the next, so a crash between the manifest swap and the old log's
//! cleanup can never double-apply a stale WAL over a newer manifest.
//! Recovery loads the manifest (if any), replays exactly that
//! generation over it, drops (and physically truncates) a torn tail,
//! and resumes appending at the physical end of the newest segment —
//! bytes orphaned by a crash between segment append and WAL append are
//! dead weight for the compactor, never live state.

pub mod error;
pub mod manifest;
pub mod segment;
pub mod store;
pub mod vfs;
pub mod wal;

pub use error::PersistError;
pub use store::{
    cas_state_fingerprint, DurableConfig, DurableContentStore, PersistObs, RecoveryReport,
};
pub use vfs::{MemFs, StdFs, Vfs};

/// Little-endian codec helpers shared by the WAL, segment and manifest
/// formats.
pub(crate) mod codec {
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
        Some(u32::from_le_bytes(buf.get(at..at + 4)?.try_into().ok()?))
    }

    pub fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
        Some(u64::from_le_bytes(buf.get(at..at + 8)?.try_into().ok()?))
    }
}
