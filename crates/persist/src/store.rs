//! The durable content-addressed store.
//!
//! [`DurableContentStore`] is the on-disk twin of `xpl-store`'s sharded
//! in-memory CAS: blobs keyed by SHA-256 digest, refcounted, deduped on
//! `put`. Bytes live in append-only [`crate::segment`] files; index
//! mutations are logged to the [`crate::wal`] before memory is updated;
//! a [`crate::manifest`] checkpoint bounds replay work and rotates the
//! log to a fresh generation.
//!
//! # Concurrency
//!
//! Reads (`get`, `contains`, `refs_of`, `snapshot_refs`) take only the
//! 16 digest-addressed shard locks and proceed in parallel, exactly like
//! the in-memory CAS. Mutations serialize on the **log lock** — they are
//! appends to a single active segment and a single WAL, so the lock
//! mirrors the physical bottleneck (one disk head); the lock also makes
//! checkpoints consistent (a checkpoint cannot interleave with a
//! half-logged operation). Lock order: `log` → shard; reads never take
//! `log`.
//!
//! # Crash consistency
//!
//! Mutations touch disk before memory, in dependency order: segment
//! payload → WAL record → in-memory index. A crash between any two steps
//! loses at most the in-flight operation, and recovery
//! ([`DurableContentStore::open`] / `reopen_in_place`) rebuilds exactly
//! the logged prefix: manifest, then WAL replay (torn tail dropped),
//! then resume appending at the physical end of the newest segment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use xpl_obs::{Counter, ObsSlot, Registry, Section, TraceRing};
use xpl_util::{Digest, FxHashMap, Sha256};

use crate::manifest::{self, Manifest, ManifestEntry};
use crate::segment;
use crate::vfs::Vfs;
use crate::wal::{self, WalOp};
use crate::PersistError;

/// Same shard fan-out as the in-memory CAS.
pub const SHARD_COUNT: usize = 16;

fn shard_of(digest: &Digest) -> usize {
    (digest.0[0] as usize) & (SHARD_COUNT - 1)
}

/// Store configuration.
#[derive(Clone, Debug)]
pub struct DurableConfig {
    /// File-name prefix: `{prefix}.wal-NNNNNN`, `{prefix}.manifest`,
    /// `{prefix}.seg-NNNNNN`.
    pub prefix: String,
    /// Roll to a new segment once the active one reaches this size.
    pub segment_target_bytes: u64,
    /// Checkpoint (manifest swap + WAL rotation) every N logged ops;
    /// 0 disables automatic checkpoints.
    pub checkpoint_every_ops: u64,
}

impl DurableConfig {
    pub fn named(prefix: &str) -> DurableConfig {
        DurableConfig {
            prefix: prefix.to_string(),
            segment_target_bytes: 8 * 1024 * 1024,
            checkpoint_every_ops: 1024,
        }
    }
}

#[derive(Clone, Copy)]
struct DurableBlob {
    segment: u32,
    offset: u64,
    len: u64,
    refs: u32,
}

struct LogState {
    /// Active segment id (1-based).
    segment: u32,
    /// Logged ops since the last checkpoint.
    ops_since_checkpoint: u64,
    /// WAL generation. Each checkpoint rotates to a fresh log file
    /// (`prefix.wal-NNNNNN`) *named by the manifest it belongs to*, so
    /// a crash between the manifest swap and the old log's cleanup can
    /// never replay a stale WAL over a newer manifest.
    epoch: u64,
}

/// What recovery found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    pub manifest_entries: usize,
    pub wal_records_replayed: u64,
    /// Valid WAL bytes (torn tail excluded).
    pub wal_bytes_valid: u64,
    pub torn_wal_tail: bool,
    /// Live blobs after recovery.
    pub blobs: usize,
    pub unique_bytes: u64,
}

/// Pre-resolved `xpl-obs` handles for the durable hot paths. All
/// counters are op-count-derived and deterministic (the log lock
/// serializes mutations, but the *multiset* of logged ops is
/// thread-count-invariant, so totals are too). `deep_verify` — an audit
/// — reads through uncounted helpers and bumps nothing.
pub struct PersistObs {
    wal_appends: Arc<Counter>,
    fsyncs: Arc<Counter>,
    segment_appends: Arc<Counter>,
    segment_reads: Arc<Counter>,
    segment_read_bytes: Arc<Counter>,
    checkpoints: Arc<Counter>,
    recoveries: Arc<Counter>,
    replay_records: Arc<Counter>,
    replay_torn_tails: Arc<Counter>,
}

impl PersistObs {
    /// Resolve (or re-use) the `persist.*` metric family in `reg`.
    pub fn new(reg: &Registry) -> Self {
        PersistObs {
            wal_appends: reg.counter("persist.wal.appends", Section::Det),
            fsyncs: reg.counter("persist.fsyncs", Section::Det),
            segment_appends: reg.counter("persist.segment.appends", Section::Det),
            segment_reads: reg.counter("persist.segment.reads", Section::Det),
            segment_read_bytes: reg.counter("persist.segment.read_bytes", Section::Det),
            checkpoints: reg.counter("persist.checkpoints", Section::Det),
            recoveries: reg.counter("persist.recover.runs", Section::Det),
            replay_records: reg.counter("persist.recover.replayed", Section::Det),
            replay_torn_tails: reg.counter("persist.recover.torn_tails", Section::Det),
        }
    }
}

/// The durable CAS.
pub struct DurableContentStore {
    vfs: Arc<dyn Vfs>,
    cfg: DurableConfig,
    shards: Vec<RwLock<FxHashMap<Digest, DurableBlob>>>,
    log: Mutex<LogState>,
    unique_bytes: AtomicU64,
    dedup_hits: AtomicU64,
    wal_appends: AtomicU64,
    checkpoints: AtomicU64,
    obs: ObsSlot<PersistObs>,
    /// Optional span sink; recovery replay shows up as
    /// `persist.recover` spans when attached.
    trace: ObsSlot<TraceRing>,
}

/// Recovered logical state, before it is installed into a store.
struct Recovered {
    blobs: FxHashMap<Digest, DurableBlob>,
    segment: u32,
    epoch: u64,
    report: RecoveryReport,
}

/// WAL file of generation `epoch` under `prefix`.
fn wal_name(prefix: &str, epoch: u64) -> String {
    format!("{prefix}.wal-{epoch:06}")
}

/// Parse a WAL file name back to its epoch.
fn parse_wal_name(prefix: &str, name: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_prefix(".wal-")?
        .parse()
        .ok()
}

impl DurableContentStore {
    /// Open (or create) the store on `vfs`: load the manifest if one
    /// exists, replay the WAL over it (dropping a torn tail cleanly),
    /// and resume appending after the newest segment's physical end.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        cfg: DurableConfig,
    ) -> Result<(DurableContentStore, RecoveryReport), PersistError> {
        let recovered = Self::recover_state(vfs.as_ref(), &cfg)?;
        let store = DurableContentStore {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            log: Mutex::new(LogState {
                segment: recovered.segment,
                ops_since_checkpoint: recovered.report.wal_records_replayed,
                epoch: recovered.epoch,
            }),
            unique_bytes: AtomicU64::new(recovered.report.unique_bytes),
            dedup_hits: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            obs: ObsSlot::new(),
            trace: ObsSlot::new(),
            vfs,
            cfg,
        };
        for (digest, blob) in recovered.blobs {
            store.shards[shard_of(&digest)]
                .write()
                .unwrap()
                .insert(digest, blob);
        }
        let report = recovered.report;
        Ok((store, report))
    }

    /// Recover in place after the harness rebooted the medium: drop the
    /// whole in-memory index and rebuild it from disk. The handle stays
    /// valid, so callers holding the store through a write-through CAS
    /// keep working after recovery. All 16 shard locks are held for the
    /// swap, so concurrent readers see either the old state or the
    /// recovered one — never a half-cleared index.
    pub fn reopen_in_place(&self) -> Result<RecoveryReport, PersistError> {
        let mut log = self.log.lock().unwrap();
        let _span = self
            .trace
            .get()
            .map(|t| TraceRing::span(t, "persist.recover", None));
        let recovered = Self::recover_state(self.vfs.as_ref(), &self.cfg)?;
        {
            let mut guards: Vec<_> = self.shards.iter().map(|s| s.write().unwrap()).collect();
            for g in guards.iter_mut() {
                g.clear();
            }
            for (digest, blob) in recovered.blobs {
                guards[shard_of(&digest)].insert(digest, blob);
            }
        }
        self.unique_bytes
            .store(recovered.report.unique_bytes, Ordering::Relaxed);
        log.segment = recovered.segment;
        log.ops_since_checkpoint = recovered.report.wal_records_replayed;
        log.epoch = recovered.epoch;
        if let Some(o) = self.obs.get() {
            o.recoveries.inc();
            o.replay_records.add(recovered.report.wal_records_replayed);
            if recovered.report.torn_wal_tail {
                o.replay_torn_tails.inc();
            }
        }
        Ok(recovered.report)
    }

    /// Attach an observability registry (idempotent; first wins).
    pub fn attach_obs(&self, reg: &Arc<Registry>) {
        let _ = self.obs.set(Arc::new(PersistObs::new(reg)));
    }

    /// Attach a span sink so recovery replay shows up in traces.
    pub fn attach_trace(&self, ring: &Arc<TraceRing>) {
        let _ = self.trace.set(Arc::clone(ring));
    }

    fn recover_state(vfs: &dyn Vfs, cfg: &DurableConfig) -> Result<Recovered, PersistError> {
        let mut blobs: FxHashMap<Digest, DurableBlob> = FxHashMap::default();
        let mut report = RecoveryReport::default();
        let mut epoch = 0u64;

        let manifest_file = manifest::file_name(&cfg.prefix);
        if vfs.exists(&manifest_file) {
            let m = Manifest::decode(&vfs.read(&manifest_file)?)?;
            let summed: u64 = m.entries.iter().map(|e| e.len).sum();
            if summed != m.unique_bytes {
                return Err(PersistError::CorruptManifest(format!(
                    "size ledger {} vs {} bytes of entries",
                    m.unique_bytes, summed
                )));
            }
            report.manifest_entries = m.entries.len();
            epoch = m.wal_epoch;
            for e in m.entries {
                blobs.insert(
                    e.digest,
                    DurableBlob {
                        segment: e.segment,
                        offset: e.offset,
                        len: e.len,
                        refs: e.refs,
                    },
                );
            }
        }

        // Replay ONLY the log generation the manifest covers: a stale
        // WAL surviving a crash between the manifest swap and its
        // cleanup is ignored, never double-applied.
        let wal_file = wal_name(&cfg.prefix, epoch);
        if vfs.exists(&wal_file) {
            let replayed = wal::replay(&vfs.read(&wal_file)?);
            report.wal_records_replayed = replayed.ops.len() as u64;
            report.wal_bytes_valid = replayed.valid_bytes;
            report.torn_wal_tail = replayed.torn_tail;
            if replayed.torn_tail {
                // Cut the torn tail off the log so post-recovery appends
                // extend a clean record stream (otherwise the garbage
                // would shadow them at the *next* recovery).
                vfs.truncate_to(&wal_file, replayed.valid_bytes)?;
            }
            for op in replayed.ops {
                Self::apply_wal_op(&mut blobs, op)?;
            }
        }

        // Housekeeping: delete log generations older than the
        // manifest's (left behind when a crash hit between the swap and
        // the cleanup), so file count stays O(1) over the store's life.
        for name in vfs.list() {
            if let Some(e) = parse_wal_name(&cfg.prefix, &name) {
                if e < epoch {
                    vfs.remove(&name)?;
                }
            }
        }

        // Resume after the newest segment's physical end; bytes a crash
        // orphaned between segment append and WAL append stay as dead
        // weight (compaction's job), never as live state.
        let segment = vfs
            .list()
            .iter()
            .filter_map(|n| segment::parse_file_name(&cfg.prefix, n))
            .max()
            .unwrap_or(1)
            .max(1);

        report.blobs = blobs.len();
        report.unique_bytes = blobs.values().map(|b| b.len).sum();
        Ok(Recovered {
            blobs,
            segment,
            epoch,
            report,
        })
    }

    fn apply_wal_op(
        blobs: &mut FxHashMap<Digest, DurableBlob>,
        op: WalOp,
    ) -> Result<(), PersistError> {
        let inconsistent =
            |what: String| PersistError::Io(format!("WAL replay inconsistency: {what}"));
        match op {
            WalOp::Put {
                digest,
                segment,
                offset,
                len,
            } => {
                if blobs.contains_key(&digest) {
                    return Err(inconsistent(format!("duplicate put of {}", digest.short())));
                }
                blobs.insert(
                    digest,
                    DurableBlob {
                        segment,
                        offset,
                        len,
                        refs: 1,
                    },
                );
            }
            WalOp::AddRef { digest } => {
                blobs
                    .get_mut(&digest)
                    .ok_or_else(|| inconsistent(format!("add_ref of absent {}", digest.short())))?
                    .refs += 1;
            }
            WalOp::Release { digest } => {
                let blob = blobs
                    .get_mut(&digest)
                    .ok_or_else(|| inconsistent(format!("release of absent {}", digest.short())))?;
                blob.refs -= 1;
                if blob.refs == 0 {
                    blobs.remove(&digest);
                }
            }
        }
        Ok(())
    }

    /// Name of the WAL file of the *current* generation.
    pub fn wal_file(&self) -> String {
        wal_name(&self.cfg.prefix, self.log.lock().unwrap().epoch)
    }

    pub fn prefix(&self) -> &str {
        &self.cfg.prefix
    }

    /// Append `op` to the WAL and sync it. Caller holds the log lock.
    fn wal_append(&self, log: &mut LogState, op: &WalOp) -> Result<(), PersistError> {
        let file = wal_name(&self.cfg.prefix, log.epoch);
        self.vfs.append(&file, &op.frame())?;
        self.vfs.sync(&file)?;
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs.get() {
            o.wal_appends.inc();
            o.fsyncs.inc();
        }
        log.ops_since_checkpoint += 1;
        Ok(())
    }

    fn maybe_checkpoint(&self, log: &mut LogState) -> Result<(), PersistError> {
        if self.cfg.checkpoint_every_ops > 0
            && log.ops_since_checkpoint >= self.cfg.checkpoint_every_ops
        {
            self.checkpoint_locked(log)?;
        }
        Ok(())
    }

    fn checkpoint_locked(&self, log: &mut LogState) -> Result<(), PersistError> {
        let mut entries = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().unwrap();
            entries.extend(shard.iter().map(|(digest, b)| ManifestEntry {
                digest: *digest,
                segment: b.segment,
                offset: b.offset,
                len: b.len,
                refs: b.refs,
            }));
        }
        // The new manifest names the *next* log generation: once the
        // swap lands, the old WAL is dead no matter when (or whether)
        // its cleanup below completes — recovery only ever replays the
        // generation the manifest points at.
        let m = Manifest {
            wal_epoch: log.epoch + 1,
            unique_bytes: entries.iter().map(|e| e.len).sum(),
            entries,
        };
        self.vfs
            .write_atomic(&manifest::file_name(&self.cfg.prefix), &m.encode())?;
        let stale = wal_name(&self.cfg.prefix, log.epoch);
        log.epoch += 1;
        log.ops_since_checkpoint = 0;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs.get() {
            o.checkpoints.inc();
        }
        self.vfs.remove(&stale)?;
        Ok(())
    }

    /// Force a checkpoint now (manifest swap + WAL rotation).
    pub fn checkpoint(&self) -> Result<(), PersistError> {
        let mut log = self.log.lock().unwrap();
        self.checkpoint_locked(&mut log)
    }

    /// Store bytes under their digest; returns `true` if the blob is
    /// new, `false` on a dedup hit (which only logs a ref increment).
    pub fn put_with_digest(&self, digest: Digest, bytes: &[u8]) -> Result<bool, PersistError> {
        let mut log = self.log.lock().unwrap();
        let exists = self.shards[shard_of(&digest)]
            .read()
            .unwrap()
            .contains_key(&digest);
        if exists {
            self.wal_append(&mut log, &WalOp::AddRef { digest })?;
            self.shards[shard_of(&digest)]
                .write()
                .unwrap()
                .get_mut(&digest)
                .expect("existence checked under the log lock")
                .refs += 1;
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            self.maybe_checkpoint(&mut log)?;
            return Ok(false);
        }
        // Roll the active segment by physical size, then append at the
        // physical end — offsets derive from the file (one stat per
        // put; two only on a roll), so a partially applied earlier
        // failure can never corrupt later records.
        let mut file = segment::file_name(&self.cfg.prefix, log.segment);
        let mut offset = self.vfs.file_len(&file)?;
        if offset >= self.cfg.segment_target_bytes {
            log.segment += 1;
            file = segment::file_name(&self.cfg.prefix, log.segment);
            offset = self.vfs.file_len(&file)?;
        }
        let segment_id = log.segment;
        self.vfs
            .append(&file, &segment::encode_record(&digest, bytes))?;
        self.vfs.sync(&file)?;
        if let Some(o) = self.obs.get() {
            o.segment_appends.inc();
            o.fsyncs.inc();
        }
        self.wal_append(
            &mut log,
            &WalOp::Put {
                digest,
                segment: segment_id,
                offset,
                len: bytes.len() as u64,
            },
        )?;
        self.shards[shard_of(&digest)].write().unwrap().insert(
            digest,
            DurableBlob {
                segment: segment_id,
                offset,
                len: bytes.len() as u64,
                refs: 1,
            },
        );
        self.unique_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.maybe_checkpoint(&mut log)?;
        Ok(true)
    }

    /// Hash + store.
    pub fn put(&self, bytes: &[u8]) -> Result<(Digest, bool), PersistError> {
        let digest = Sha256::digest(bytes);
        Ok((digest, self.put_with_digest(digest, bytes)?))
    }

    /// Log one more reference to an existing blob.
    pub fn add_ref(&self, digest: Digest) -> Result<(), PersistError> {
        let mut log = self.log.lock().unwrap();
        {
            let mut shard = self.shards[shard_of(&digest)].write().unwrap();
            let blob = shard
                .get_mut(&digest)
                .ok_or(PersistError::NotFound(digest))?;
            self.wal_append(&mut log, &WalOp::AddRef { digest })?;
            blob.refs += 1;
        }
        self.dedup_hits.fetch_add(1, Ordering::Relaxed);
        self.maybe_checkpoint(&mut log)
    }

    /// Drop one reference; returns freed payload bytes when the blob
    /// dies (its segment bytes become dead weight for compaction).
    pub fn release(&self, digest: &Digest) -> Result<u64, PersistError> {
        let mut log = self.log.lock().unwrap();
        let freed;
        {
            let mut shard = self.shards[shard_of(digest)].write().unwrap();
            let blob = shard
                .get_mut(digest)
                .ok_or(PersistError::NotFound(*digest))?;
            self.wal_append(&mut log, &WalOp::Release { digest: *digest })?;
            blob.refs -= 1;
            if blob.refs == 0 {
                freed = blob.len;
                shard.remove(digest);
                self.unique_bytes.fetch_sub(freed, Ordering::Relaxed);
            } else {
                freed = 0;
            }
        }
        self.maybe_checkpoint(&mut log)?;
        Ok(freed)
    }

    fn lookup(&self, digest: &Digest) -> Result<DurableBlob, PersistError> {
        let shard = self.shards[shard_of(digest)].read().unwrap();
        shard
            .get(digest)
            .copied()
            .ok_or(PersistError::NotFound(*digest))
    }

    /// The uncounted read shared by [`DurableContentStore::get`] and
    /// the `deep_verify` audit (which must not move read metrics).
    fn read_blob(&self, blob: &DurableBlob, digest: &Digest) -> Result<Vec<u8>, PersistError> {
        segment::read_record(
            self.vfs.as_ref(),
            &self.cfg.prefix,
            blob.segment,
            blob.offset,
            blob.len,
            digest,
        )
    }

    /// Read a blob back, validating magic, digest and CRC-32 — a
    /// damaged record is a typed [`PersistError::CorruptRecord`].
    pub fn get(&self, digest: &Digest) -> Result<Vec<u8>, PersistError> {
        let blob = self.lookup(digest)?;
        if let Some(o) = self.obs.get() {
            o.segment_reads.inc();
            o.segment_read_bytes.add(blob.len);
        }
        self.read_blob(&blob, digest)
    }

    /// Read bytes `[start, start+len)` of a blob's payload (clamped
    /// like a slice) without materializing the rest of the record. The
    /// record header is validated (magic, length, digest identity);
    /// the whole-payload CRC is *not* — partial reads are what this
    /// call exists for. Blocked payloads (`xpl_compress::is_blocked`)
    /// get per-block CRC checks at the codec layer on exactly the
    /// bytes read, and [`DurableContentStore::deep_verify`] sweeps
    /// every block of every blocked blob.
    pub fn get_range(
        &self,
        digest: &Digest,
        start: u64,
        len: u64,
    ) -> Result<Vec<u8>, PersistError> {
        let blob = self.lookup(digest)?;
        if let Some(o) = self.obs.get() {
            o.segment_reads.inc();
            o.segment_read_bytes
                .add(len.min(blob.len.saturating_sub(start.min(blob.len))));
        }
        self.read_blob_range(&blob, digest, start, len)
    }

    /// Uncounted ranged read (see [`DurableContentStore::read_blob`]).
    fn read_blob_range(
        &self,
        blob: &DurableBlob,
        digest: &Digest,
        start: u64,
        len: u64,
    ) -> Result<Vec<u8>, PersistError> {
        segment::read_record_range(
            self.vfs.as_ref(),
            &self.cfg.prefix,
            blob.segment,
            blob.offset,
            blob.len,
            digest,
            start,
            len,
        )
    }

    pub fn contains(&self, digest: &Digest) -> bool {
        self.shards[shard_of(digest)]
            .read()
            .unwrap()
            .contains_key(digest)
    }

    pub fn refs_of(&self, digest: &Digest) -> Option<u32> {
        self.shards[shard_of(digest)]
            .read()
            .unwrap()
            .get(digest)
            .map(|b| b.refs)
    }

    pub fn blob_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes.load(Ordering::Relaxed)
    }

    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(Ordering::Relaxed)
    }

    pub fn wal_appends(&self) -> u64 {
        self.wal_appends.load(Ordering::Relaxed)
    }

    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// `(digest, refs, len)` of every live blob.
    pub fn snapshot_refs(&self) -> Vec<(Digest, u32, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().unwrap();
            out.extend(shard.iter().map(|(d, b)| (*d, b.refs, b.len)));
        }
        out
    }

    /// Canonical fingerprint of the logical state (see
    /// [`cas_state_fingerprint`]); equal to the in-memory CAS's
    /// fingerprint exactly when the two hold the same blobs, refcounts
    /// and size ledger.
    pub fn state_fingerprint(&self) -> String {
        cas_state_fingerprint(self.snapshot_refs(), self.unique_bytes())
    }

    /// Re-read and validate every live blob from its segment (full
    /// content sweep: magic, digest, CRC-32). Payloads in the blocked
    /// compression container additionally get a per-block CRC sweep
    /// ([`xpl_compress::verify_blocks`]), which localizes damage to a
    /// block instead of just "the blob is bad" — the record-level CRC
    /// can only say the latter. Returns the number of blobs verified.
    pub fn deep_verify(&self) -> Result<usize, PersistError> {
        let mut verified = 0usize;
        for (digest, _refs, _len) in self.snapshot_refs() {
            let blob = {
                let shard = self.shards[shard_of(&digest)].read().unwrap();
                match shard.get(&digest) {
                    Some(b) => *b,
                    None => continue, // released since the snapshot
                }
            };
            let corrupt = |detail: String| PersistError::CorruptRecord {
                file: segment::file_name(&self.cfg.prefix, blob.segment),
                offset: blob.offset,
                detail,
            };
            let payload = match self.read_blob(&blob, &digest) {
                Ok(p) => p,
                Err(PersistError::CorruptRecord {
                    file,
                    offset,
                    detail,
                }) => {
                    // The record-level CRC only says "the blob is bad".
                    // If the payload is a blocked container, re-read it
                    // without the record CRC and let the per-block CRCs
                    // name the damaged block.
                    let mut detail = detail;
                    if let Ok(raw) = self.read_blob_range(&blob, &digest, 0, u64::MAX) {
                        if xpl_compress::is_blocked(&raw) {
                            if let Err(e) = xpl_compress::verify_blocks(&raw) {
                                detail = format!("{detail}; {e}");
                            }
                        }
                    }
                    return Err(PersistError::CorruptRecord {
                        file,
                        offset,
                        detail,
                    });
                }
                Err(e) => return Err(e),
            };
            if Sha256::digest(&payload) != digest {
                return Err(corrupt(format!(
                    "blob {} no longer hashes to its digest",
                    digest.short()
                )));
            }
            if xpl_compress::is_blocked(&payload) {
                xpl_compress::verify_blocks(&payload).map_err(|e| {
                    corrupt(format!("blob {}: blocked payload: {e}", digest.short()))
                })?;
            }
            verified += 1;
        }
        Ok(verified)
    }
}

/// Canonical fingerprint of a CAS state: SHA-256 over the
/// digest-sorted `(digest, refs, len)` tuples plus the size ledger.
/// Both the in-memory and the durable CAS hash their state through this
/// one function, so equal fingerprints mean equal blobs, refcounts and
/// `unique_bytes` — the convergence check of the crash-recovery oracle.
pub fn cas_state_fingerprint(mut entries: Vec<(Digest, u32, u64)>, unique_bytes: u64) -> String {
    entries.sort_by_key(|e| e.0 .0);
    let mut h = Sha256::new();
    for (digest, refs, len) in &entries {
        h.update(&digest.0);
        h.update(&refs.to_le_bytes());
        h.update(&len.to_le_bytes());
    }
    h.update(&unique_bytes.to_le_bytes());
    h.finalize().to_hex()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemFs;

    fn fresh(cfg: DurableConfig) -> (Arc<MemFs>, DurableContentStore) {
        let vfs = Arc::new(MemFs::new());
        let (store, report) = DurableContentStore::open(vfs.clone(), cfg).unwrap();
        assert_eq!(report, RecoveryReport::default());
        (vfs, store)
    }

    #[test]
    fn put_get_release_roundtrip() {
        let (_vfs, store) = fresh(DurableConfig::named("cas"));
        let (d, new) = store.put(b"hello durable world").unwrap();
        assert!(new);
        assert_eq!(store.get(&d).unwrap(), b"hello durable world");
        assert!(!store.put(b"hello durable world").unwrap().1);
        assert_eq!(store.refs_of(&d), Some(2));
        assert_eq!(store.dedup_hits(), 1);
        assert_eq!(store.release(&d).unwrap(), 0);
        assert_eq!(store.release(&d).unwrap(), 19);
        assert!(!store.contains(&d));
        assert_eq!(store.unique_bytes(), 0);
        assert_eq!(store.release(&d), Err(PersistError::NotFound(d)));
    }

    #[test]
    fn get_range_slices_without_reading_the_record() {
        let (_vfs, store) = fresh(DurableConfig::named("cas"));
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let (d, _) = store.put(&payload).unwrap();
        assert_eq!(
            store.get_range(&d, 1000, 256).unwrap(),
            &payload[1000..1256]
        );
        assert_eq!(
            store.get_range(&d, 49_990, 100).unwrap(),
            &payload[49_990..]
        );
        assert!(store.get_range(&d, 60_000, 5).unwrap().is_empty());
        assert!(store.get_range(&d, 17, 0).unwrap().is_empty());
        assert_eq!(
            store.get_range(&Sha256::digest(b"nope"), 0, 1),
            Err(PersistError::NotFound(Sha256::digest(b"nope")))
        );
    }

    #[test]
    fn deep_verify_localizes_damage_in_blocked_payloads() {
        let (vfs, store) = fresh(DurableConfig::named("cas"));
        // A multi-block container (small blocks so damage sits in a
        // well-defined block), stored as an ordinary blob.
        let raw: Vec<u8> = (0..20_000u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8)
            .collect();
        let blocked = xpl_compress::blocked_compress_with(&raw, 4096);
        let (d, _) = store.put(&blocked).unwrap();
        assert_eq!(store.deep_verify().unwrap(), 1);

        // Flip a byte inside the compressed data, behind the container
        // header, directly in the segment file.
        let file = segment::file_name("cas", 1);
        let mut bytes = vfs.read(&file).unwrap();
        let flip = segment::RECORD_HEADER as usize + 8 + 40;
        bytes[flip] ^= 0x40;
        vfs.set_file(&file, &bytes);

        let err = store.deep_verify().unwrap_err();
        match err {
            PersistError::CorruptRecord { detail, .. } => {
                assert!(detail.contains("CRC-32"), "{detail}");
                assert!(detail.contains("block"), "damage not localized: {detail}");
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
        // Ranged reads of the damaged span also refuse to lie: the
        // codec layer checks the block CRC on inflate.
        let span = store.get_range(&d, 0, blocked.len() as u64).unwrap();
        let mut reader = xpl_compress::BlockedReader::new(&span).unwrap();
        assert!(reader.read_at(0, 100).is_err());
    }

    #[test]
    fn blocked_lz4_payloads_survive_recovery_and_deep_verify() {
        // The fast-codec container (`XBL1`) is just another blob to the
        // durable layer, but deep_verify's blocked special-case must
        // sweep its per-block CRCs too — and recovery must hand the
        // container back byte-identical.
        let (vfs, store) = fresh(DurableConfig::named("cas"));
        let raw: Vec<u8> = (0..30_000u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 53) as u8)
            .collect();
        let lz4 = xpl_compress::blocked_compress_inner(&raw, 4096, xpl_compress::InnerCodec::Lz4);
        let (d, _) = store.put(&lz4).unwrap();
        assert_eq!(store.deep_verify().unwrap(), 1);

        let (recovered, _) =
            DurableContentStore::open(vfs.clone(), DurableConfig::named("cas")).expect("reopen");
        assert_eq!(recovered.deep_verify().unwrap(), 1);
        let back = recovered.get(&d).unwrap();
        assert_eq!(back, lz4);
        assert_eq!(xpl_compress::decompress_auto(&back).unwrap(), raw);

        // Damage inside the LZ4 block data is localized by deep_verify.
        let file = segment::file_name("cas", 1);
        let mut bytes = vfs.read(&file).unwrap();
        let flip = segment::RECORD_HEADER as usize + 8 + 40;
        bytes[flip] ^= 0x40;
        vfs.set_file(&file, &bytes);
        match store.deep_verify().unwrap_err() {
            PersistError::CorruptRecord { detail, .. } => {
                assert!(detail.contains("block"), "damage not localized: {detail}");
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
    }

    #[test]
    fn reopen_replays_the_wal() {
        let vfs = Arc::new(MemFs::new());
        let mut cfg = DurableConfig::named("cas");
        cfg.checkpoint_every_ops = 0; // everything stays in the WAL
        let (store, _) = DurableContentStore::open(vfs.clone(), cfg.clone()).unwrap();
        let (d1, _) = store.put(b"first").unwrap();
        let (d2, _) = store.put(b"second").unwrap();
        store.add_ref(d1).unwrap();
        store.release(&d2).unwrap();
        let fp = store.state_fingerprint();

        let (reopened, report) = DurableContentStore::open(vfs, cfg).unwrap();
        assert_eq!(report.wal_records_replayed, 4);
        assert!(!report.torn_wal_tail);
        assert_eq!(report.blobs, 1);
        assert_eq!(reopened.refs_of(&d1), Some(2));
        assert!(!reopened.contains(&d2));
        assert_eq!(reopened.get(&d1).unwrap(), b"first");
        assert_eq!(reopened.state_fingerprint(), fp);
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_reopen() {
        let vfs = Arc::new(MemFs::new());
        let cfg = DurableConfig::named("cas");
        let (store, _) = DurableContentStore::open(vfs.clone(), cfg.clone()).unwrap();
        for i in 0..20u32 {
            store.put(&i.to_le_bytes()).unwrap();
        }
        store.checkpoint().unwrap();
        // Checkpoint rotated to a fresh (not-yet-created) generation.
        assert_eq!(vfs.file_len("cas.wal-000001").unwrap(), 0);
        assert_eq!(store.wal_file(), "cas.wal-000001");
        let fp = store.state_fingerprint();
        // Post-checkpoint ops land in the fresh WAL.
        let (d, _) = store.put(b"after checkpoint").unwrap();
        let (reopened, report) = DurableContentStore::open(vfs, cfg).unwrap();
        assert_eq!(report.manifest_entries, 20);
        assert_eq!(report.wal_records_replayed, 1);
        assert_eq!(reopened.blob_count(), 21);
        assert!(reopened.contains(&d));
        assert_ne!(reopened.state_fingerprint(), fp, "state moved on");
    }

    #[test]
    fn segments_roll_at_target_size() {
        let vfs = Arc::new(MemFs::new());
        let mut cfg = DurableConfig::named("cas");
        cfg.segment_target_bytes = 256;
        let (store, _) = DurableContentStore::open(vfs.clone(), cfg).unwrap();
        for i in 0..10u32 {
            store.put(&[i as u8; 100]).unwrap();
        }
        let segments = vfs
            .list()
            .iter()
            .filter(|n| segment::parse_file_name("cas", n).is_some())
            .count();
        assert!(segments > 1, "only {segments} segment(s)");
        for i in 0..10u32 {
            let d = Sha256::digest(&[i as u8; 100]);
            assert_eq!(store.get(&d).unwrap(), vec![i as u8; 100]);
        }
        assert_eq!(store.deep_verify().unwrap(), 10);
    }

    #[test]
    fn power_cut_mid_put_drops_the_op_cleanly() {
        let vfs = Arc::new(MemFs::new());
        let mut cfg = DurableConfig::named("cas");
        cfg.checkpoint_every_ops = 0;
        let (store, _) = DurableContentStore::open(vfs.clone(), cfg.clone()).unwrap();
        let (d1, _) = store.put(b"survives").unwrap();
        let fp = store.state_fingerprint();
        // The next mutating vfs op is the segment append of the new put:
        // it tears, and the op must vanish on recovery.
        vfs.set_crash_at(1);
        assert!(store.put(b"lost to the crash").is_err());
        vfs.power_cut();
        let (recovered, report) = DurableContentStore::open(vfs, cfg).unwrap();
        assert_eq!(report.wal_records_replayed, 1);
        assert_eq!(recovered.blob_count(), 1);
        assert_eq!(recovered.state_fingerprint(), fp);
        assert_eq!(recovered.get(&d1).unwrap(), b"survives");
        // The recovered store accepts new writes (orphaned torn segment
        // bytes are skipped over by the physical-end cursor).
        let (d2, new) = recovered.put(b"post-recovery write").unwrap();
        assert!(new);
        assert_eq!(recovered.get(&d2).unwrap(), b"post-recovery write");
        assert_eq!(recovered.deep_verify().unwrap(), 2);
    }

    #[test]
    fn crash_between_segment_and_wal_leaves_dead_bytes_only() {
        let vfs = Arc::new(MemFs::new());
        let mut cfg = DurableConfig::named("cas");
        cfg.checkpoint_every_ops = 0;
        let (store, _) = DurableContentStore::open(vfs.clone(), cfg.clone()).unwrap();
        store.put(b"one").unwrap();
        // Ops per put: segment append, segment sync, wal append, wal
        // sync. Crash at the 3rd → payload durable, WAL record torn.
        vfs.set_crash_at(3);
        assert!(store.put(b"two").is_err());
        vfs.power_cut();
        let (recovered, report) = DurableContentStore::open(vfs.clone(), cfg).unwrap();
        assert!(report.torn_wal_tail, "half a WAL record must be dropped");
        assert_eq!(recovered.blob_count(), 1);
        // The orphaned payload bytes sit in the segment, dead.
        assert!(vfs.file_len("cas.seg-000001").unwrap() > segment::record_len(3));
        recovered.put(b"three").unwrap();
        assert_eq!(recovered.deep_verify().unwrap(), 2);
    }

    #[test]
    fn crash_between_manifest_swap_and_wal_cleanup_never_double_applies() {
        let vfs = Arc::new(MemFs::new());
        let mut cfg = DurableConfig::named("cas");
        cfg.checkpoint_every_ops = 0; // checkpoint only when forced
        let (store, _) = DurableContentStore::open(vfs.clone(), cfg.clone()).unwrap();
        let (d1, _) = store.put(b"kept").unwrap();
        store.put(b"kept").unwrap(); // refs = 2 via AddRef record
        let (d2, _) = store.put(b"dropped-later").unwrap();
        store.release(&d2).unwrap();
        let fp = store.state_fingerprint();
        // Checkpoint = write_atomic(manifest) then truncate(stale wal):
        // crash on the 2nd mutation, after the swap landed.
        vfs.set_crash_at(2);
        assert!(store.checkpoint().is_err());
        vfs.power_cut();
        // The new manifest + the STALE full WAL coexist on the medium.
        assert!(vfs.exists("cas.manifest"));
        assert!(vfs.file_len("cas.wal-000000").unwrap() > 0);
        // Recovery must not replay the stale generation over the
        // manifest (no duplicate-put error, no doubled refcounts).
        let (recovered, report) = DurableContentStore::open(vfs.clone(), cfg.clone()).unwrap();
        assert_eq!(report.wal_records_replayed, 0, "stale WAL ignored");
        assert_eq!(recovered.state_fingerprint(), fp);
        assert_eq!(recovered.refs_of(&d1), Some(2));
        assert!(!recovered.contains(&d2));
        // Housekeeping deleted the stale generation.
        assert_eq!(vfs.file_len("cas.wal-000000").unwrap(), 0);
        // And the recovered store keeps logging into the new epoch.
        recovered.put(b"next epoch").unwrap();
        assert_eq!(recovered.wal_file(), "cas.wal-000001");
        let (again, _) = DurableContentStore::open(vfs, cfg).unwrap();
        assert_eq!(again.state_fingerprint(), recovered.state_fingerprint());
    }

    #[test]
    fn reopen_in_place_matches_fresh_open() {
        let vfs = Arc::new(MemFs::new());
        let cfg = DurableConfig::named("cas");
        let (store, _) = DurableContentStore::open(vfs.clone(), cfg.clone()).unwrap();
        for i in 0..8u32 {
            store.put(&i.to_le_bytes()).unwrap();
        }
        let fp = store.state_fingerprint();
        vfs.power_cut();
        let report = store.reopen_in_place().unwrap();
        assert_eq!(report.blobs, 8);
        assert_eq!(store.state_fingerprint(), fp);
        // Still writable.
        store.put(b"more").unwrap();
        assert_eq!(store.blob_count(), 9);
    }

    #[test]
    fn corrupted_segment_record_is_a_typed_error() {
        let vfs = Arc::new(MemFs::new());
        let (store, _) =
            DurableContentStore::open(vfs.clone(), DurableConfig::named("cas")).unwrap();
        let (d, _) = store.put(b"to be damaged").unwrap();
        // Flip one payload byte on the medium.
        let file = segment::file_name("cas", 1);
        let mut bytes = vfs.read(&file).unwrap();
        let at = segment::RECORD_HEADER as usize + 2;
        bytes[at] ^= 0x10;
        vfs.set_file(&file, &bytes);
        assert!(matches!(
            store.get(&d),
            Err(PersistError::CorruptRecord { .. })
        ));
        assert!(matches!(
            store.deep_verify(),
            Err(PersistError::CorruptRecord { .. })
        ));
    }

    #[test]
    fn torn_tail_garbage_is_dropped_on_recovery() {
        let vfs = Arc::new(MemFs::new());
        let mut cfg = DurableConfig::named("cas");
        cfg.checkpoint_every_ops = 0;
        let (store, _) = DurableContentStore::open(vfs.clone(), cfg.clone()).unwrap();
        store.put(b"alpha").unwrap();
        store.put(b"beta").unwrap();
        let fp = store.state_fingerprint();
        vfs.inject_torn_tail("cas.wal-000000", &[0xA5; 13]);
        let (recovered, report) = DurableContentStore::open(vfs, cfg).unwrap();
        assert!(report.torn_wal_tail);
        assert_eq!(report.wal_records_replayed, 2);
        assert_eq!(recovered.state_fingerprint(), fp);
    }

    #[test]
    fn fingerprint_is_order_independent_and_state_sensitive() {
        let a = vec![
            (Sha256::digest(b"x"), 2u32, 5u64),
            (Sha256::digest(b"y"), 1, 9),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(
            cas_state_fingerprint(a.clone(), 14),
            cas_state_fingerprint(b, 14)
        );
        assert_ne!(
            cas_state_fingerprint(a.clone(), 14),
            cas_state_fingerprint(a.clone(), 15)
        );
        let mut c = a.clone();
        c[0].1 = 3;
        assert_ne!(cas_state_fingerprint(a, 14), cas_state_fingerprint(c, 14));
    }

    #[test]
    fn shared_access_reads_while_writing() {
        let (_vfs, store) = fresh(DurableConfig::named("cas"));
        let payloads: Vec<Vec<u8>> = (0..32u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for p in &payloads {
            store.put(p).unwrap();
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for p in &payloads {
                        let d = Sha256::digest(p);
                        assert_eq!(&store.get(&d).unwrap(), p);
                    }
                });
            }
            s.spawn(|| {
                for i in 100..132u32 {
                    store.put(&i.to_le_bytes()).unwrap();
                }
            });
        });
        assert_eq!(store.blob_count(), 64);
        assert_eq!(store.deep_verify().unwrap(), 64);
    }
}
