//! Append-only blob segments.
//!
//! A segment file is a concatenation of self-validating records,
//! BGZF-style: each record can be read and checked in isolation given
//! its offset, so recovery and audits never need a scan of the whole
//! file. Record layout:
//!
//! ```text
//! [magic: u32 LE = "XSEG"][payload_len: u64 LE][crc32(payload): u32 LE]
//! [digest: 32 bytes][payload]
//! ```
//!
//! The digest is the blob's content address; a reader verifies magic,
//! digest identity and payload CRC and surfaces a typed
//! [`PersistError::CorruptRecord`] on any mismatch — corruption is an
//! error value, never a panic.

use xpl_util::{Crc32, Digest};

use crate::codec::{put_u32, put_u64, read_u32, read_u64};
use crate::vfs::Vfs;
use crate::PersistError;

pub const MAGIC: u32 = 0x5853_4547; // "XSEG" (LE bytes: G E S X)

/// Fixed bytes before the payload.
pub const RECORD_HEADER: u64 = 4 + 8 + 4 + 32;

/// File name of segment `id` under `prefix` (flat, sortable).
pub fn file_name(prefix: &str, id: u32) -> String {
    format!("{prefix}.seg-{id:06}")
}

/// Parse a segment file name back to its id.
pub fn parse_file_name(prefix: &str, name: &str) -> Option<u32> {
    let rest = name.strip_prefix(prefix)?.strip_prefix(".seg-")?;
    rest.parse().ok()
}

/// Encode one record.
pub fn encode_record(digest: &Digest, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER as usize + payload.len());
    put_u32(&mut out, MAGIC);
    put_u64(&mut out, payload.len() as u64);
    put_u32(&mut out, Crc32::checksum(payload));
    out.extend_from_slice(&digest.0);
    out.extend_from_slice(payload);
    out
}

/// Total on-disk length of a record holding `payload_len` bytes.
pub fn record_len(payload_len: u64) -> u64 {
    RECORD_HEADER + payload_len
}

/// Read and validate the record for `digest` at `offset` of segment
/// `id`; `payload_len` is the length the index recorded. Returns the
/// payload bytes.
pub fn read_record(
    vfs: &dyn Vfs,
    prefix: &str,
    id: u32,
    offset: u64,
    payload_len: u64,
    digest: &Digest,
) -> Result<Vec<u8>, PersistError> {
    let file = file_name(prefix, id);
    let corrupt = |detail: String| PersistError::CorruptRecord {
        file: file.clone(),
        offset,
        detail,
    };
    let buf = vfs.read_at(&file, offset, record_len(payload_len))?;
    let magic = read_u32(&buf, 0).ok_or_else(|| corrupt("short header".into()))?;
    if magic != MAGIC {
        return Err(corrupt(format!("bad magic {magic:#010x}")));
    }
    let len = read_u64(&buf, 4).ok_or_else(|| corrupt("short header".into()))?;
    if len != payload_len {
        return Err(corrupt(format!(
            "length mismatch: record says {len}, index says {payload_len}"
        )));
    }
    let crc = read_u32(&buf, 12).ok_or_else(|| corrupt("short header".into()))?;
    let stored_digest = &buf[16..48];
    if stored_digest != digest.0 {
        return Err(corrupt(format!(
            "digest mismatch: record holds {}",
            Digest(stored_digest.try_into().unwrap()).short()
        )));
    }
    let payload = &buf[RECORD_HEADER as usize..];
    if Crc32::checksum(payload) != crc {
        return Err(corrupt("payload CRC-32 mismatch".into()));
    }
    Ok(payload.to_vec())
}

/// Read bytes `[start, start+len)` of the payload stored for `digest`
/// at `offset` (clamped to the payload like a slice), validating the
/// record header (magic, length, digest identity) but **not** the
/// whole-payload CRC — checking it would require reading the payload
/// this function exists to avoid. Blocked payloads carry per-block
/// CRCs that the codec layer verifies on exactly the bytes returned
/// here; for unblocked payloads use [`read_record`] when end-to-end
/// integrity matters more than the partial read.
#[allow(clippy::too_many_arguments)]
pub fn read_record_range(
    vfs: &dyn Vfs,
    prefix: &str,
    id: u32,
    offset: u64,
    payload_len: u64,
    digest: &Digest,
    start: u64,
    len: u64,
) -> Result<Vec<u8>, PersistError> {
    let file = file_name(prefix, id);
    let corrupt = |detail: String| PersistError::CorruptRecord {
        file: file.clone(),
        offset,
        detail,
    };
    let header = vfs.read_at(&file, offset, RECORD_HEADER)?;
    let magic = read_u32(&header, 0).ok_or_else(|| corrupt("short header".into()))?;
    if magic != MAGIC {
        return Err(corrupt(format!("bad magic {magic:#010x}")));
    }
    let rec_len = read_u64(&header, 4).ok_or_else(|| corrupt("short header".into()))?;
    if rec_len != payload_len {
        return Err(corrupt(format!(
            "length mismatch: record says {rec_len}, index says {payload_len}"
        )));
    }
    let stored_digest = &header[16..48];
    if stored_digest != digest.0 {
        return Err(corrupt(format!(
            "digest mismatch: record holds {}",
            Digest(stored_digest.try_into().unwrap()).short()
        )));
    }
    let end = start.saturating_add(len).min(payload_len);
    let start = start.min(end);
    if start == end {
        return Ok(Vec::new());
    }
    vfs.read_at(&file, offset + RECORD_HEADER + start, end - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemFs;
    use xpl_util::Sha256;

    #[test]
    fn file_names_roundtrip_and_sort() {
        assert_eq!(file_name("pkg", 7), "pkg.seg-000007");
        assert_eq!(parse_file_name("pkg", "pkg.seg-000007"), Some(7));
        assert_eq!(parse_file_name("pkg", "pkg.wal"), None);
        assert_eq!(parse_file_name("data", "pkg.seg-000007"), None);
        assert!(file_name("s", 2) < file_name("s", 10));
    }

    #[test]
    fn record_roundtrip() {
        let fs = MemFs::new();
        let payload = b"the blob payload";
        let digest = Sha256::digest(payload);
        let rec = encode_record(&digest, payload);
        fs.append(&file_name("cas", 1), &rec).unwrap();
        let got = read_record(&fs, "cas", 1, 0, payload.len() as u64, &digest).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn flipped_payload_byte_is_a_typed_error() {
        let fs = MemFs::new();
        let payload = b"precious bytes";
        let digest = Sha256::digest(payload);
        let mut rec = encode_record(&digest, payload);
        let flip = RECORD_HEADER as usize + 3;
        rec[flip] ^= 0x01; // single bit in the payload
        fs.append(&file_name("cas", 1), &rec).unwrap();
        let err = read_record(&fs, "cas", 1, 0, payload.len() as u64, &digest).unwrap_err();
        match err {
            PersistError::CorruptRecord {
                file,
                offset,
                detail,
            } => {
                assert_eq!(file, "cas.seg-000001");
                assert_eq!(offset, 0);
                assert!(detail.contains("CRC-32"), "{detail}");
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
    }

    #[test]
    fn range_reads_slice_the_payload() {
        let fs = MemFs::new();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i.wrapping_mul(7)) as u8).collect();
        let digest = Sha256::digest(&payload);
        // Record at a nonzero offset, behind another record.
        let first = encode_record(&Sha256::digest(b"x"), b"x");
        let off = first.len() as u64;
        fs.append(&file_name("cas", 1), &first).unwrap();
        fs.append(&file_name("cas", 1), &encode_record(&digest, &payload))
            .unwrap();
        let n = payload.len() as u64;
        let spans = [
            (0, 0),
            (0, 1),
            (100, 256),
            (n - 1, 50),
            (n, 10),
            (n + 5, 1),
            (0, n),
            (0, u64::MAX), // saturating end
        ];
        for (s, l) in spans {
            let got = read_record_range(&fs, "cas", 1, off, n, &digest, s, l).unwrap();
            let end = s.saturating_add(l).min(n);
            let s = s.min(end);
            assert_eq!(got, &payload[s as usize..end as usize], "span ({s}, {l})");
        }
        // Header validation still applies to partial reads.
        let other = Sha256::digest(b"other");
        assert!(matches!(
            read_record_range(&fs, "cas", 1, off, n, &other, 0, 4),
            Err(PersistError::CorruptRecord { .. })
        ));
        assert!(matches!(
            read_record_range(&fs, "cas", 1, off, n + 1, &digest, 0, 4),
            Err(PersistError::CorruptRecord { .. })
        ));
    }

    #[test]
    fn wrong_digest_is_detected() {
        let fs = MemFs::new();
        let payload = b"payload";
        let digest = Sha256::digest(payload);
        fs.append(&file_name("cas", 1), &encode_record(&digest, payload))
            .unwrap();
        let other = Sha256::digest(b"other");
        assert!(matches!(
            read_record(&fs, "cas", 1, 0, payload.len() as u64, &other),
            Err(PersistError::CorruptRecord { .. })
        ));
    }
}
