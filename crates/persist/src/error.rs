//! Typed persistence errors.

use xpl_util::Digest;

/// Errors surfaced by the durable layer. Corruption is a value, not a
/// panic: callers decide whether a damaged record is fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The backing medium rejected an operation (real I/O error on
    /// [`crate::StdFs`], injected crash on [`crate::MemFs`]).
    Io(String),
    /// The simulated medium is crashed; every operation fails until the
    /// harness reboots it ([`crate::MemFs::power_cut`]).
    Crashed,
    /// A file the recovery path needs does not exist.
    Missing(String),
    /// A segment record failed validation: bad magic, digest mismatch,
    /// or CRC-32 failure over the payload.
    CorruptRecord {
        file: String,
        offset: u64,
        detail: String,
    },
    /// The manifest failed structural validation (magic/version/CRC).
    CorruptManifest(String),
    /// The in-memory index disagrees with the operation (e.g. releasing
    /// a digest that was never stored).
    NotFound(Digest),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Crashed => write!(f, "medium is crashed (awaiting recovery)"),
            PersistError::Missing(name) => write!(f, "missing file {name}"),
            PersistError::CorruptRecord {
                file,
                offset,
                detail,
            } => write!(f, "corrupt record in {file} at offset {offset}: {detail}"),
            PersistError::CorruptManifest(e) => write!(f, "corrupt manifest: {e}"),
            PersistError::NotFound(d) => write!(f, "digest {d} not in the store"),
        }
    }
}

impl std::error::Error for PersistError {}
