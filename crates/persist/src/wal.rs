//! Write-ahead log framing and torn-tail-safe replay.
//!
//! Frame: `[payload_len: u32 LE][crc32(payload): u32 LE][payload]`.
//! Replay walks frames from the start and stops *cleanly* at the first
//! frame that cannot be validated — truncated header, payload length
//! past end-of-file, implausible length, or CRC mismatch. Everything
//! before the stop point is a fully intact record; everything after is
//! a torn tail (the in-flight write the crash interrupted) and is
//! dropped. A WAL record is therefore applied fully or not at all.
//!
//! Payloads are index operations:
//!
//! ```text
//! 0x01 Put     digest[32] segment:u32 offset:u64 len:u64
//! 0x02 AddRef  digest[32]
//! 0x03 Release digest[32]
//! ```

use xpl_util::{Crc32, Digest};

use crate::codec::{put_u32, put_u64, read_u32, read_u64};
use crate::PersistError;

/// Upper bound on a sane WAL payload; anything larger is torn-tail
/// garbage, not a record (real payloads are ≤ 61 bytes).
const MAX_PAYLOAD: u32 = 4096;

const FRAME_HEADER: usize = 8;

/// One logical index operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// A new blob was appended to `segment` at `offset` (record start)
    /// with `len` payload bytes; its refcount starts at 1.
    Put {
        digest: Digest,
        segment: u32,
        offset: u64,
        len: u64,
    },
    /// One more reference to an existing blob.
    AddRef { digest: Digest },
    /// One reference dropped; the blob dies at zero.
    Release { digest: Digest },
}

impl WalOp {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            WalOp::Put {
                digest,
                segment,
                offset,
                len,
            } => {
                out.push(0x01);
                out.extend_from_slice(&digest.0);
                put_u32(&mut out, *segment);
                put_u64(&mut out, *offset);
                put_u64(&mut out, *len);
            }
            WalOp::AddRef { digest } => {
                out.push(0x02);
                out.extend_from_slice(&digest.0);
            }
            WalOp::Release { digest } => {
                out.push(0x03);
                out.extend_from_slice(&digest.0);
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<WalOp, PersistError> {
        let bad = |what: &str| PersistError::Io(format!("undecodable WAL payload: {what}"));
        let digest_at = |at: usize| -> Result<Digest, PersistError> {
            payload
                .get(at..at + 32)
                .map(|s| Digest(s.try_into().unwrap()))
                .ok_or_else(|| bad("digest"))
        };
        match payload.first() {
            Some(0x01) => {
                if payload.len() != 1 + 32 + 4 + 8 + 8 {
                    return Err(bad("put arity"));
                }
                Ok(WalOp::Put {
                    digest: digest_at(1)?,
                    segment: read_u32(payload, 33).ok_or_else(|| bad("segment"))?,
                    offset: read_u64(payload, 37).ok_or_else(|| bad("offset"))?,
                    len: read_u64(payload, 45).ok_or_else(|| bad("len"))?,
                })
            }
            Some(0x02) if payload.len() == 33 => Ok(WalOp::AddRef {
                digest: digest_at(1)?,
            }),
            Some(0x03) if payload.len() == 33 => Ok(WalOp::Release {
                digest: digest_at(1)?,
            }),
            _ => Err(bad("tag")),
        }
    }

    /// Frame the op for appending to the log.
    pub fn frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_u32(&mut out, payload.len() as u32);
        put_u32(&mut out, Crc32::checksum(&payload));
        out.extend_from_slice(&payload);
        out
    }
}

/// Outcome of a replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalReplay {
    pub ops: Vec<WalOp>,
    /// Byte offset of the first unparseable frame (== file length when
    /// the log ends cleanly).
    pub valid_bytes: u64,
    /// Whether bytes past `valid_bytes` were dropped as a torn tail.
    pub torn_tail: bool,
}

/// Replay a WAL image. Never fails on tail damage — a frame is either
/// intact (length plausible, payload complete, CRC matches, payload
/// decodes) or it and everything after it is dropped.
pub fn replay(buf: &[u8]) -> WalReplay {
    let mut ops = Vec::new();
    let mut at = 0usize;
    while let Some(len) = read_u32(buf, at) {
        let Some(crc) = read_u32(buf, at + 4) else {
            break;
        };
        if len > MAX_PAYLOAD {
            break;
        }
        let start = at + FRAME_HEADER;
        let Some(payload) = buf.get(start..start + len as usize) else {
            break;
        };
        if Crc32::checksum(payload) != crc {
            break;
        }
        let Ok(op) = WalOp::decode(payload) else {
            break;
        };
        ops.push(op);
        at = start + len as usize;
    }
    WalReplay {
        ops,
        valid_bytes: at as u64,
        torn_tail: at != buf.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_util::Sha256;

    fn sample_ops() -> Vec<WalOp> {
        let d1 = Sha256::digest(b"one");
        let d2 = Sha256::digest(b"two");
        vec![
            WalOp::Put {
                digest: d1,
                segment: 1,
                offset: 0,
                len: 3,
            },
            WalOp::AddRef { digest: d1 },
            WalOp::Put {
                digest: d2,
                segment: 1,
                offset: 51,
                len: 3,
            },
            WalOp::Release { digest: d1 },
        ]
    }

    fn log_bytes(ops: &[WalOp]) -> Vec<u8> {
        ops.iter().flat_map(|op| op.frame()).collect()
    }

    #[test]
    fn roundtrip_clean_log() {
        let ops = sample_ops();
        let replayed = replay(&log_bytes(&ops));
        assert_eq!(replayed.ops, ops);
        assert!(!replayed.torn_tail);
        assert_eq!(replayed.valid_bytes, log_bytes(&ops).len() as u64);
    }

    #[test]
    fn every_truncation_replays_a_record_prefix() {
        let ops = sample_ops();
        let buf = log_bytes(&ops);
        // Record boundaries (cumulative frame ends).
        let mut boundaries = vec![0usize];
        for op in &ops {
            boundaries.push(boundaries.last().unwrap() + op.frame().len());
        }
        for cut in 0..=buf.len() {
            let replayed = replay(&buf[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replayed.ops.len(), whole, "cut at {cut}");
            assert_eq!(replayed.ops[..], ops[..whole]);
            assert_eq!(replayed.torn_tail, cut != boundaries[whole]);
        }
    }

    #[test]
    fn flipped_byte_stops_replay_cleanly() {
        let ops = sample_ops();
        let mut buf = log_bytes(&ops);
        // Corrupt one payload byte of the second record.
        let second_start = ops[0].frame().len() + FRAME_HEADER;
        buf[second_start + 3] ^= 0xFF;
        let replayed = replay(&buf);
        assert_eq!(replayed.ops.len(), 1, "only the first record survives");
        assert!(replayed.torn_tail);
    }

    #[test]
    fn garbage_tail_is_dropped() {
        let ops = sample_ops();
        let mut buf = log_bytes(&ops);
        let clean = buf.len() as u64;
        buf.extend_from_slice(&[0xA5; 11]); // looks like a huge length
        let replayed = replay(&buf);
        assert_eq!(replayed.ops, ops);
        assert!(replayed.torn_tail);
        assert_eq!(replayed.valid_bytes, clean);
    }
}
