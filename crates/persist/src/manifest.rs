//! The checkpoint manifest: a full snapshot of the index, swapped
//! atomically.
//!
//! Layout (all integers LE):
//!
//! ```text
//! [magic: u32 = "XMAN"][version: u32 = 1]
//! [wal_epoch: u64][unique_bytes: u64][entry_count: u64]
//! entry*: [digest: 32][segment: u32][offset: u64][len: u64][refs: u32]
//! [crc32 of everything above: u32]
//! ```
//!
//! `wal_epoch` names the write-ahead-log generation this manifest
//! covers: recovery replays only `prefix.wal-{wal_epoch}`. A crash
//! between the manifest swap and the old log's cleanup therefore can
//! never double-apply a stale WAL — the new manifest simply points at
//! a log generation that does not exist yet (empty).
//!
//! Entries are sorted by digest so the same logical state always
//! produces the same manifest bytes (byte-determinism is what lets the
//! churn oracle compare recovered state across runs). The manifest is
//! written with [`crate::Vfs::write_atomic`] — temp file + rename — so
//! a crash during checkpoint leaves the previous manifest intact.

use xpl_util::{Crc32, Digest};

use crate::codec::{put_u32, put_u64, read_u32, read_u64};
use crate::PersistError;

const MAGIC: u32 = 0x584D_414E; // "XMAN"
const VERSION: u32 = 1;
const ENTRY_LEN: usize = 32 + 4 + 8 + 8 + 4;

/// File name of the manifest under `prefix`.
pub fn file_name(prefix: &str) -> String {
    format!("{prefix}.manifest")
}

/// One indexed blob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    pub digest: Digest,
    pub segment: u32,
    pub offset: u64,
    pub len: u64,
    pub refs: u32,
}

/// A decoded manifest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// WAL generation this manifest covers (recovery replays only
    /// `prefix.wal-{wal_epoch}`).
    pub wal_epoch: u64,
    pub unique_bytes: u64,
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Canonical byte encoding (entries sorted by digest).
    pub fn encode(&self) -> Vec<u8> {
        let mut entries = self.entries.clone();
        entries.sort_by_key(|e| e.digest.0);
        let mut out = Vec::with_capacity(32 + entries.len() * ENTRY_LEN + 4);
        put_u32(&mut out, MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, self.wal_epoch);
        put_u64(&mut out, self.unique_bytes);
        put_u64(&mut out, entries.len() as u64);
        for e in &entries {
            out.extend_from_slice(&e.digest.0);
            put_u32(&mut out, e.segment);
            put_u64(&mut out, e.offset);
            put_u64(&mut out, e.len);
            put_u32(&mut out, e.refs);
        }
        let crc = Crc32::checksum(&out);
        put_u32(&mut out, crc);
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Manifest, PersistError> {
        let bad = |what: String| PersistError::CorruptManifest(what);
        if buf.len() < 32 + 4 {
            return Err(bad(format!("too short: {} bytes", buf.len())));
        }
        let (body, tail) = buf.split_at(buf.len() - 4);
        let want_crc = read_u32(tail, 0).unwrap();
        if Crc32::checksum(body) != want_crc {
            return Err(bad("body CRC-32 mismatch".into()));
        }
        if read_u32(body, 0) != Some(MAGIC) {
            return Err(bad("bad magic".into()));
        }
        if read_u32(body, 4) != Some(VERSION) {
            return Err(bad(format!("unsupported version {:?}", read_u32(body, 4))));
        }
        let wal_epoch = read_u64(body, 8).ok_or_else(|| bad("short header".into()))?;
        let unique_bytes = read_u64(body, 16).ok_or_else(|| bad("short header".into()))?;
        let count = read_u64(body, 24).ok_or_else(|| bad("short header".into()))? as usize;
        if body.len() != 32 + count * ENTRY_LEN {
            return Err(bad(format!(
                "entry count {count} disagrees with body length {}",
                body.len()
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let at = 32 + i * ENTRY_LEN;
            entries.push(ManifestEntry {
                digest: Digest(body[at..at + 32].try_into().unwrap()),
                segment: read_u32(body, at + 32).unwrap(),
                offset: read_u64(body, at + 36).unwrap(),
                len: read_u64(body, at + 44).unwrap(),
                refs: read_u32(body, at + 52).unwrap(),
            });
        }
        Ok(Manifest {
            wal_epoch,
            unique_bytes,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_util::Sha256;

    fn sample() -> Manifest {
        Manifest {
            wal_epoch: 3,
            unique_bytes: 1234,
            entries: vec![
                ManifestEntry {
                    digest: Sha256::digest(b"b"),
                    segment: 2,
                    offset: 48,
                    len: 100,
                    refs: 3,
                },
                ManifestEntry {
                    digest: Sha256::digest(b"a"),
                    segment: 1,
                    offset: 0,
                    len: 34,
                    refs: 1,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_and_canonical_order() {
        let m = sample();
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded.wal_epoch, 3);
        assert_eq!(decoded.unique_bytes, 1234);
        assert_eq!(decoded.entries.len(), 2);
        // Sorted by digest regardless of input order.
        assert!(decoded.entries[0].digest.0 < decoded.entries[1].digest.0);
        // Same logical state → same bytes.
        let mut swapped = m.clone();
        swapped.entries.reverse();
        assert_eq!(m.encode(), swapped.encode());
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = sample().encode();
        buf[30] ^= 0x40;
        assert!(matches!(
            Manifest::decode(&buf),
            Err(PersistError::CorruptManifest(_))
        ));
        assert!(Manifest::decode(&buf[..10]).is_err());
        assert!(Manifest::decode(b"").is_err());
    }

    #[test]
    fn empty_manifest_roundtrips() {
        let m = Manifest::default();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }
}
