//! Crash-recovery acceptance suite for the durable CAS.
//!
//! The centerpiece truncates a recorded run's WAL at **every byte
//! boundary** and asserts the all-or-nothing recovery invariant: the
//! recovered state always equals the state after some whole prefix of
//! the logged operations — an op is replayed fully or dropped cleanly,
//! never half-applied. The op sequences come from the proptest
//! harness, so the sweep covers many shapes of put/add_ref/release
//! interleavings (including dedup hits and death-and-rebirth of the
//! same digest).

use std::sync::Arc;

use proptest::prelude::*;
use xpl_persist::{
    cas_state_fingerprint, DurableConfig, DurableContentStore, MemFs, PersistError, Vfs,
};
use xpl_util::Sha256;

/// A config that never checkpoints, so the whole history stays in the
/// WAL for the truncation sweep.
fn wal_only(prefix: &str) -> DurableConfig {
    let mut cfg = DurableConfig::named(prefix);
    cfg.checkpoint_every_ops = 0;
    cfg
}

/// One scripted CAS mutation.
#[derive(Clone, Debug)]
enum Op {
    /// Put payload #n (repeats dedup into add_refs).
    Put(u8),
    /// Release payload #n if it is currently live.
    Release(u8),
}

fn payload(n: u8) -> Vec<u8> {
    // Distinct, small, deterministic payloads.
    let mut p = vec![n; 9 + (n as usize % 7)];
    p[0] = n.wrapping_add(1);
    p
}

/// Drive `ops` against a fresh WAL-only store, recording the state
/// fingerprint after every *logged* operation (skips that log nothing
/// don't advance the history). Returns the medium and the fingerprint
/// trajectory, index 0 being the empty store.
fn record_run(ops: &[Op]) -> (Arc<MemFs>, Vec<String>) {
    let vfs = Arc::new(MemFs::new());
    let (store, _) = DurableContentStore::open(Arc::clone(&vfs) as _, wal_only("t")).unwrap();
    let mut fps = vec![cas_state_fingerprint(Vec::new(), 0)];
    for op in ops {
        let logged = match op {
            Op::Put(n) => {
                store.put(&payload(*n)).unwrap();
                true
            }
            Op::Release(n) => {
                let digest = Sha256::digest(&payload(*n));
                if store.refs_of(&digest).is_some() {
                    store.release(&digest).unwrap();
                    true
                } else {
                    false
                }
            }
        };
        if logged {
            fps.push(store.state_fingerprint());
        }
    }
    (vfs, fps)
}

/// The invariant itself: for every byte-length prefix of the WAL,
/// recovery lands exactly on `fps[records_replayed]`.
fn assert_all_or_nothing(vfs: &MemFs, fps: &[String]) {
    // A script of skipped ops logs nothing and never creates the WAL.
    let wal = vfs.read("t.wal-000000").unwrap_or_default();
    for cut in 0..=wal.len() {
        let fork = vfs.fork();
        fork.set_file("t.wal-000000", &wal[..cut]);
        let (recovered, report) = DurableContentStore::open(Arc::new(fork) as _, wal_only("t"))
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let idx = report.wal_records_replayed as usize;
        assert!(
            idx < fps.len(),
            "cut {cut}: replayed {idx} records, history has {}",
            fps.len() - 1
        );
        assert_eq!(
            recovered.state_fingerprint(),
            fps[idx],
            "cut {cut}: recovered state is not the state after op {idx} — half-applied op?"
        );
        // The torn-tail flag must agree with the valid-byte count: a
        // cut on a record boundary recovers silently, anything else is
        // reported (and physically truncated) as a torn tail.
        assert_eq!(report.torn_wal_tail, report.wal_bytes_valid != cut as u64);
        // Whatever was recovered must also pass the content sweep.
        recovered
            .deep_verify()
            .unwrap_or_else(|e| panic!("cut {cut}: recovered blobs fail verification: {e}"));
    }
}

#[test]
fn wal_truncated_at_every_byte_boundary_recovers_a_whole_prefix() {
    // A fixed dense script: puts, dedup hits, releases, death and
    // rebirth of one digest.
    let ops = [
        Op::Put(1),
        Op::Put(2),
        Op::Put(1), // dedup → AddRef
        Op::Put(3),
        Op::Release(2), // dies
        Op::Release(1), // refs 2 → 1
        Op::Put(2),     // rebirth of a dead digest
        Op::Release(1), // dies
        Op::Put(4),
    ];
    let (vfs, fps) = record_run(&ops);
    assert_eq!(fps.len(), 10, "all 9 ops log");
    assert_all_or_nothing(&vfs, &fps);
}

// The same sweep over generated op scripts.
proptest! {
    #[test]
    fn truncation_sweep_over_generated_histories(
        ops in proptest::collection::vec(
            (0u8..2, 0u8..6).prop_map(|(kind, n)| match kind {
                0 => Op::Put(n),
                _ => Op::Release(n),
            }),
            1..40,
        )
    ) {
        let (vfs, fps) = record_run(&ops);
        assert_all_or_nothing(&vfs, &fps);
    }
}

#[test]
fn recovery_is_byte_deterministic() {
    let ops = [Op::Put(7), Op::Put(8), Op::Release(7), Op::Put(9)];
    let (vfs, _) = record_run(&ops);
    let open_fp = || {
        let (store, _) =
            DurableContentStore::open(Arc::new(vfs.fork()) as _, wal_only("t")).unwrap();
        store.state_fingerprint()
    };
    assert_eq!(open_fp(), open_fp());
}

#[test]
fn stdfs_backed_store_survives_a_real_reopen() {
    use xpl_persist::StdFs;
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/persist-test")
        .join(format!("stdfs-reopen-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = DurableConfig::named("disk");
    let fp = {
        let vfs = Arc::new(StdFs::new(&dir).unwrap());
        let (store, _) = DurableContentStore::open(vfs, cfg.clone()).unwrap();
        store.put(b"really on disk").unwrap();
        store.put(b"also on disk").unwrap();
        let d = store.put(b"short-lived").unwrap().0;
        store.release(&d).unwrap();
        store.checkpoint().unwrap();
        store.put(b"after the checkpoint").unwrap();
        store.state_fingerprint()
    };
    let vfs = Arc::new(StdFs::new(&dir).unwrap());
    let (reopened, report) = DurableContentStore::open(vfs, cfg).unwrap();
    assert_eq!(report.manifest_entries, 2);
    assert_eq!(report.wal_records_replayed, 1);
    assert_eq!(reopened.state_fingerprint(), fp);
    assert_eq!(reopened.deep_verify().unwrap(), 3);
    assert_eq!(
        reopened.get(&Sha256::digest(b"really on disk")).unwrap(),
        b"really on disk"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_manifest_is_rejected_not_panicked() {
    let vfs = Arc::new(MemFs::new());
    let (store, _) =
        DurableContentStore::open(Arc::clone(&vfs) as _, DurableConfig::named("m")).unwrap();
    store.put(b"content").unwrap();
    store.checkpoint().unwrap();
    let mut manifest = vfs.read("m.manifest").unwrap();
    let mid = manifest.len() / 2;
    manifest[mid] ^= 0x08;
    vfs.set_file("m.manifest", &manifest);
    match DurableContentStore::open(Arc::clone(&vfs) as _, DurableConfig::named("m")) {
        Err(PersistError::CorruptManifest(_)) => {}
        other => panic!("expected CorruptManifest, got {:?}", other.map(|_| ())),
    }
}
