//! `xpl-vdisk` — a qcow2-style virtual disk format.
//!
//! The paper's images are qcow2 files; their *allocated* size (clusters
//! actually written) is what the Qcow2 baseline accumulates in Figure 3,
//! and their serialized byte stream is what the Gzip baseline compresses.
//! This crate reproduces the format's essential mechanics:
//!
//! * cluster-granular allocation with a two-level (L1 → L2) mapping table,
//! * copy-on-write against a backing image (snapshot chains),
//! * refcount tracking of physical clusters,
//! * deterministic serialization / deserialization of the whole image.
//!
//! Sizes are materialized bytes (×1024 = nominal). The default cluster is
//! 256 materialized bytes = 256 KiB nominal.

pub mod qcow;
pub mod raw;

pub use qcow::{read_serialized_range, QcowError, QcowImage, DEFAULT_CLUSTER_BITS, STREAM_HEADER};
pub use raw::RawImage;
