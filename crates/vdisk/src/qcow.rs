//! The qcow2-style copy-on-write image.
//!
//! Structure mirrors qcow2's essentials: a guest (virtual) address space
//! mapped through an L1 table of L2 tables to physical clusters, with
//! per-cluster refcounts and an optional backing image for COW chains.
//! Unallocated guest ranges read as zeros (or fall through to the backing
//! image).

use std::sync::Arc;

/// Default cluster size exponent: 2^8 = 256 materialized bytes
/// (256 KiB nominal — qcow2's typical 64 KiB–1 MiB range).
pub const DEFAULT_CLUSTER_BITS: u32 = 8;

/// Entries per L2 table. qcow2 uses cluster_size/8; we keep that density
/// scaled to our cluster size.
const L2_ENTRIES_BITS: u32 = 9; // 512 entries per L2 table

const MAGIC: &[u8; 4] = b"XQC\x02";

/// Errors from image operations.
#[derive(Debug, PartialEq, Eq)]
pub enum QcowError {
    /// Access beyond the virtual disk size.
    OutOfBounds {
        offset: u64,
        len: usize,
        virtual_size: u64,
    },
    /// Serialization payload malformed.
    Corrupt(&'static str),
}

impl std::fmt::Display for QcowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QcowError::OutOfBounds {
                offset,
                len,
                virtual_size,
            } => write!(
                f,
                "access [{offset}, +{len}) beyond virtual size {virtual_size}"
            ),
            QcowError::Corrupt(what) => write!(f, "corrupt image: {what}"),
        }
    }
}

impl std::error::Error for QcowError {}

/// An L2 table: guest-cluster → physical-cluster index (`u64::MAX` =
/// unallocated).
#[derive(Clone)]
struct L2Table {
    entries: Box<[u64]>,
}

impl L2Table {
    fn new() -> Self {
        L2Table {
            entries: vec![u64::MAX; 1 << L2_ENTRIES_BITS].into_boxed_slice(),
        }
    }
}

/// The copy-on-write disk image.
#[derive(Clone)]
pub struct QcowImage {
    name: String,
    virtual_size: u64,
    cluster_bits: u32,
    /// L1: guest L2-index → L2 table (lazy).
    l1: Vec<Option<L2Table>>,
    /// Physical cluster storage.
    clusters: Vec<Box<[u8]>>,
    /// Refcount per physical cluster (snapshots share clusters).
    refcounts: Vec<u32>,
    /// Optional backing image (read-through on unallocated clusters).
    backing: Option<Arc<QcowImage>>,
}

impl QcowImage {
    /// Create an empty image of `virtual_size` materialized bytes.
    pub fn create(name: &str, virtual_size: u64) -> Self {
        Self::create_with_cluster_bits(name, virtual_size, DEFAULT_CLUSTER_BITS)
    }

    pub fn create_with_cluster_bits(name: &str, virtual_size: u64, cluster_bits: u32) -> Self {
        assert!(
            (4..=20).contains(&cluster_bits),
            "cluster_bits out of range"
        );
        let cluster = 1u64 << cluster_bits;
        let clusters_total = virtual_size.div_ceil(cluster);
        let l2_span = 1u64 << L2_ENTRIES_BITS;
        let l1_len = clusters_total.div_ceil(l2_span) as usize;
        QcowImage {
            name: name.to_string(),
            virtual_size,
            cluster_bits,
            l1: (0..l1_len).map(|_| None).collect(),
            clusters: Vec::new(),
            refcounts: Vec::new(),
            backing: None,
        }
    }

    /// Create a COW overlay on top of `base` (same geometry).
    pub fn overlay(name: &str, base: Arc<QcowImage>) -> Self {
        let mut img = Self::create_with_cluster_bits(name, base.virtual_size, base.cluster_bits);
        img.backing = Some(base);
        img
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn virtual_size(&self) -> u64 {
        self.virtual_size
    }

    pub fn cluster_size(&self) -> u64 {
        1 << self.cluster_bits
    }

    pub fn backing(&self) -> Option<&Arc<QcowImage>> {
        self.backing.as_ref()
    }

    #[inline]
    fn split(&self, guest_cluster: u64) -> (usize, usize) {
        let l1 = (guest_cluster >> L2_ENTRIES_BITS) as usize;
        let l2 = (guest_cluster & ((1 << L2_ENTRIES_BITS) - 1)) as usize;
        (l1, l2)
    }

    fn lookup(&self, guest_cluster: u64) -> Option<u64> {
        let (i1, i2) = self.split(guest_cluster);
        match self.l1.get(i1)?.as_ref() {
            Some(t) => {
                let e = t.entries[i2];
                (e != u64::MAX).then_some(e)
            }
            None => None,
        }
    }

    /// Read `len` bytes at guest offset, COW-transparent.
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, QcowError> {
        if offset + len as u64 > self.virtual_size {
            return Err(QcowError::OutOfBounds {
                offset,
                len,
                virtual_size: self.virtual_size,
            });
        }
        let cs = self.cluster_size();
        let mut out = vec![0u8; len];
        let mut done = 0usize;
        while done < len {
            let pos = offset + done as u64;
            let gc = pos / cs;
            let within = (pos % cs) as usize;
            let take = ((cs as usize) - within).min(len - done);
            match self.lookup(gc) {
                Some(pc) => {
                    out[done..done + take]
                        .copy_from_slice(&self.clusters[pc as usize][within..within + take]);
                }
                None => {
                    if let Some(b) = &self.backing {
                        let chunk = b.read_at(gc * cs + within as u64, take)?;
                        out[done..done + take].copy_from_slice(&chunk);
                    }
                    // else: stays zero
                }
            }
            done += take;
        }
        Ok(out)
    }

    fn allocate_cluster(&mut self) -> u64 {
        let idx = self.clusters.len() as u64;
        self.clusters
            .push(vec![0u8; self.cluster_size() as usize].into_boxed_slice());
        self.refcounts.push(1);
        idx
    }

    /// Ensure a guest cluster is locally allocated, copying from backing
    /// (or zero-filling) as needed; returns the physical index.
    fn ensure_cluster(&mut self, gc: u64) -> Result<u64, QcowError> {
        if let Some(pc) = self.lookup(gc) {
            return Ok(pc);
        }
        let cs = self.cluster_size();
        let pc = self.allocate_cluster();
        if let Some(b) = self.backing.clone() {
            let base_off = gc * cs;
            if base_off < b.virtual_size {
                let take = cs.min(b.virtual_size - base_off) as usize;
                let data = b.read_at(base_off, take)?;
                self.clusters[pc as usize][..take].copy_from_slice(&data);
            }
        }
        let (i1, i2) = self.split(gc);
        if self.l1[i1].is_none() {
            self.l1[i1] = Some(L2Table::new());
        }
        self.l1[i1].as_mut().unwrap().entries[i2] = pc;
        Ok(pc)
    }

    /// Write bytes at a guest offset (allocating / COW-copying clusters).
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), QcowError> {
        if offset + data.len() as u64 > self.virtual_size {
            return Err(QcowError::OutOfBounds {
                offset,
                len: data.len(),
                virtual_size: self.virtual_size,
            });
        }
        let cs = self.cluster_size();
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let gc = pos / cs;
            let within = (pos % cs) as usize;
            let take = ((cs as usize) - within).min(data.len() - done);
            let pc = self.ensure_cluster(gc)?;
            self.clusters[pc as usize][within..within + take]
                .copy_from_slice(&data[done..done + take]);
            done += take;
        }
        Ok(())
    }

    /// Discard a guest range: deallocates whole clusters it covers
    /// (modelling `virt-sysprep`-style cleanup and file deletion trims).
    pub fn discard(&mut self, offset: u64, len: u64) -> Result<(), QcowError> {
        if offset + len > self.virtual_size {
            return Err(QcowError::OutOfBounds {
                offset,
                len: len as usize,
                virtual_size: self.virtual_size,
            });
        }
        let cs = self.cluster_size();
        let first = offset.div_ceil(cs);
        let last = (offset + len) / cs;
        for gc in first..last {
            let (i1, i2) = self.split(gc);
            if let Some(t) = self.l1[i1].as_mut() {
                let e = t.entries[i2];
                if e != u64::MAX {
                    t.entries[i2] = u64::MAX;
                    let rc = &mut self.refcounts[e as usize];
                    *rc = rc.saturating_sub(1);
                }
            }
        }
        Ok(())
    }

    /// Number of locally allocated (live) clusters.
    pub fn allocated_clusters(&self) -> usize {
        self.refcounts.iter().filter(|&&rc| rc > 0).count()
    }

    /// Allocated payload bytes + metadata overhead (header, L1, live L2
    /// tables, refcount table) — the image's on-disk footprint, which is
    /// what the Qcow2 baseline accounts.
    pub fn allocated_bytes(&self) -> u64 {
        let payload = self.allocated_clusters() as u64 * self.cluster_size();
        let l2_tables = self.l1.iter().filter(|t| t.is_some()).count() as u64;
        let meta = 64 // header
            + self.l1.len() as u64 * 8
            + l2_tables * ((1 << L2_ENTRIES_BITS) * 8)
            + self.refcounts.len() as u64 * 2;
        payload + meta
    }

    /// Serialize the full image (header + mapping + live clusters). The
    /// encoding is deterministic and content-only: images with equal
    /// content serialize identically regardless of their names (real
    /// qcow2 files carry no name either — dedup and compression baselines
    /// depend on this).
    pub fn serialize(&self) -> Vec<u8> {
        let cs = self.cluster_size() as usize;
        let mut out = Vec::with_capacity(self.allocated_bytes() as usize + 1024);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.virtual_size.to_le_bytes());
        out.extend_from_slice(&self.cluster_bits.to_le_bytes());
        // Mapping: (guest_cluster, cluster bytes) pairs in guest order.
        let mut mapped: Vec<(u64, u64)> = Vec::new();
        for (i1, t) in self.l1.iter().enumerate() {
            if let Some(t) = t {
                for (i2, &e) in t.entries.iter().enumerate() {
                    if e != u64::MAX {
                        let gc = ((i1 as u64) << L2_ENTRIES_BITS) | i2 as u64;
                        mapped.push((gc, e));
                    }
                }
            }
        }
        out.extend_from_slice(&(mapped.len() as u64).to_le_bytes());
        for (gc, pc) in mapped {
            out.extend_from_slice(&gc.to_le_bytes());
            out.extend_from_slice(&self.clusters[pc as usize][..cs]);
        }
        out
    }

    /// Reconstruct an image from [`QcowImage::serialize`] output.
    /// (Backing links are not serialized — images are flattened on
    /// publish, like `qemu-img convert`.) The name is supplied by the
    /// caller (it lives in repository metadata, not the stream).
    pub fn deserialize(data: &[u8]) -> Result<QcowImage, QcowError> {
        Self::deserialize_named("restored", data)
    }

    /// [`QcowImage::deserialize`] with an explicit name.
    pub fn deserialize_named(name: &str, data: &[u8]) -> Result<QcowImage, QcowError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], QcowError> {
            if *pos + n > data.len() {
                return Err(QcowError::Corrupt("truncated"));
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(QcowError::Corrupt("bad magic"));
        }
        let virtual_size = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let cluster_bits = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        if !(4..=20).contains(&cluster_bits) {
            return Err(QcowError::Corrupt("bad cluster bits"));
        }
        let mut img = QcowImage::create_with_cluster_bits(name, virtual_size, cluster_bits);
        let n = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let cs = img.cluster_size() as usize;
        for _ in 0..n {
            let gc = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let bytes = take(&mut pos, cs)?.to_vec();
            if gc * cs as u64 >= virtual_size.div_ceil(cs as u64) * cs as u64 {
                return Err(QcowError::Corrupt("cluster out of range"));
            }
            let pc = img.allocate_cluster();
            img.clusters[pc as usize].copy_from_slice(&bytes);
            let (i1, i2) = img.split(gc);
            if i1 >= img.l1.len() {
                return Err(QcowError::Corrupt("cluster out of range"));
            }
            if img.l1[i1].is_none() {
                img.l1[i1] = Some(L2Table::new());
            }
            img.l1[i1].as_mut().unwrap().entries[i2] = pc;
        }
        if pos != data.len() {
            return Err(QcowError::Corrupt("trailing bytes"));
        }
        Ok(img)
    }

    /// Flatten a COW chain into a standalone image (like
    /// `qemu-img convert`): every cluster readable from the chain becomes
    /// local.
    pub fn flatten(&self, name: &str) -> Result<QcowImage, QcowError> {
        let cs = self.cluster_size();
        let mut out =
            QcowImage::create_with_cluster_bits(name, self.virtual_size, self.cluster_bits);
        let total = self.virtual_size.div_ceil(cs);
        for gc in 0..total {
            let off = gc * cs;
            let take = cs.min(self.virtual_size - off) as usize;
            let chunk = self.read_at(off, take)?;
            // Skip all-zero clusters to keep the flattened image sparse.
            if chunk.iter().any(|&b| b != 0) {
                out.write_at(off, &chunk)?;
            }
        }
        Ok(out)
    }
}

/// Byte length of the serialized-stream header (magic + virtual_size +
/// cluster_bits + mapped count).
pub const STREAM_HEADER: u64 = 24;

/// Read `[start, start+len)` of the *virtual disk* directly from a
/// [`QcowImage::serialize`] stream without materializing the image.
///
/// `fetch(off, len)` returns `len` bytes at stream offset `off`; the
/// caller typically backs it with a blocked-container reader so only the
/// compressed blocks the answer needs are ever inflated. The function
/// touches: the fixed header, O(log mapped) 8-byte guest-cluster keys
/// per cluster of the span (binary search over the guest-ordered
/// mapping, with a monotonic hint so sequential clusters don't restart
/// the search), and the overlapping cluster payload slices. Unmapped
/// clusters read as zeros; the range clamps to the virtual size like a
/// slice.
pub fn read_serialized_range<F>(mut fetch: F, start: u64, len: u64) -> Result<Vec<u8>, QcowError>
where
    F: FnMut(u64, u64) -> Result<Vec<u8>, QcowError>,
{
    let header = fetch(0, STREAM_HEADER)?;
    if header.len() < STREAM_HEADER as usize {
        return Err(QcowError::Corrupt("truncated"));
    }
    if &header[0..4] != MAGIC {
        return Err(QcowError::Corrupt("bad magic"));
    }
    let virtual_size = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let cluster_bits = u32::from_le_bytes(header[12..16].try_into().unwrap());
    if !(4..=20).contains(&cluster_bits) {
        return Err(QcowError::Corrupt("bad cluster bits"));
    }
    let mapped = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let cs = 1u64 << cluster_bits;
    let entry_len = 8 + cs;
    let end = start.saturating_add(len).min(virtual_size);
    if start >= end {
        return Ok(Vec::new());
    }
    let mut out = vec![0u8; (end - start) as usize];
    let mut done = 0u64;
    // Mapping keys are strictly increasing in guest order, so once a
    // cluster is located every later cluster lives at a higher index.
    let mut lo_hint = 0u64;
    while start + done < end {
        let pos = start + done;
        let gc = pos / cs;
        let within = pos % cs;
        let take = (cs - within).min(end - pos);
        let (mut lo, mut hi) = (lo_hint, mapped);
        let mut found = None;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let key = fetch(STREAM_HEADER + mid * entry_len, 8)?;
            if key.len() < 8 {
                return Err(QcowError::Corrupt("truncated"));
            }
            let k = u64::from_le_bytes(key[0..8].try_into().unwrap());
            match k.cmp(&gc) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    found = Some(mid);
                    break;
                }
            }
        }
        if let Some(i) = found {
            let bytes = fetch(STREAM_HEADER + i * entry_len + 8 + within, take)?;
            if bytes.len() as u64 != take {
                return Err(QcowError::Corrupt("truncated"));
            }
            out[done as usize..(done + take) as usize].copy_from_slice(&bytes);
            lo_hint = i + 1;
        } else {
            lo_hint = lo; // unmapped: zeros stay
        }
        done += take;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_image_reads_zero() {
        let img = QcowImage::create("t", 10_000);
        let data = img.read_at(0, 100).unwrap();
        assert!(data.iter().all(|&b| b == 0));
        assert_eq!(img.allocated_clusters(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut img = QcowImage::create("t", 100_000);
        let payload: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        img.write_at(12_345, &payload).unwrap();
        assert_eq!(img.read_at(12_345, payload.len()).unwrap(), payload);
        // Surrounding bytes untouched.
        assert!(img.read_at(0, 100).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut img = QcowImage::create("t", 1000);
        assert!(matches!(
            img.write_at(990, &[0u8; 20]),
            Err(QcowError::OutOfBounds { .. })
        ));
        assert!(img.read_at(1001, 1).is_err());
    }

    #[test]
    fn allocation_is_cluster_granular() {
        let mut img = QcowImage::create("t", 100_000);
        img.write_at(0, &[1]).unwrap();
        assert_eq!(img.allocated_clusters(), 1);
        img.write_at(5, &[2]).unwrap(); // same cluster
        assert_eq!(img.allocated_clusters(), 1);
        img.write_at(img.cluster_size(), &[3]).unwrap(); // next cluster
        assert_eq!(img.allocated_clusters(), 2);
    }

    #[test]
    fn overlay_reads_through_and_cow_isolates() {
        let mut base = QcowImage::create("base", 10_000);
        base.write_at(100, b"base-data").unwrap();
        let base = Arc::new(base);
        let mut over = QcowImage::overlay("over", Arc::clone(&base));
        assert_eq!(over.read_at(100, 9).unwrap(), b"base-data");
        over.write_at(100, b"OVER").unwrap();
        assert_eq!(over.read_at(100, 9).unwrap(), b"OVER-data");
        // COW copied the rest of the cluster from the base.
        assert_eq!(base.read_at(100, 9).unwrap(), b"base-data");
    }

    #[test]
    fn discard_releases_clusters() {
        let mut img = QcowImage::create("t", 100_000);
        let cs = img.cluster_size();
        img.write_at(0, &vec![7u8; (cs * 4) as usize]).unwrap();
        assert_eq!(img.allocated_clusters(), 4);
        img.discard(0, cs * 2).unwrap();
        assert_eq!(img.allocated_clusters(), 2);
        // Discarded range reads zero again.
        assert!(img.read_at(0, cs as usize).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn serialize_roundtrip() {
        let mut img = QcowImage::create("serial-test", 50_000);
        img.write_at(1000, b"hello qcow").unwrap();
        img.write_at(30_000, &[0xAB; 600]).unwrap();
        let bytes = img.serialize();
        let back = QcowImage::deserialize_named("serial-test", &bytes).unwrap();
        assert_eq!(back.name(), "serial-test");
        assert_eq!(back.virtual_size(), 50_000);
        assert_eq!(back.read_at(1000, 10).unwrap(), b"hello qcow");
        assert_eq!(back.read_at(30_000, 600).unwrap(), vec![0xAB; 600]);
        assert_eq!(back.allocated_clusters(), img.allocated_clusters());
    }

    #[test]
    fn serialize_is_deterministic() {
        let build = || {
            let mut img = QcowImage::create("d", 20_000);
            img.write_at(0, b"aaa").unwrap();
            img.write_at(9_000, b"bbb").unwrap();
            img.serialize()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn deserialize_rejects_corruption() {
        let mut img = QcowImage::create("c", 10_000);
        img.write_at(0, b"x").unwrap();
        let mut bytes = img.serialize();
        bytes[0] ^= 0xFF;
        assert!(QcowImage::deserialize(&bytes).is_err());
        let ser = img.serialize();
        assert!(QcowImage::deserialize(&ser[..ser.len() - 1]).is_err());
    }

    #[test]
    fn flatten_materializes_chain() {
        let mut base = QcowImage::create("base", 20_000);
        base.write_at(0, b"from-base").unwrap();
        let base = Arc::new(base);
        let mut over = QcowImage::overlay("over", Arc::clone(&base));
        over.write_at(10_000, b"from-over").unwrap();
        let flat = over.flatten("flat").unwrap();
        assert!(flat.backing().is_none());
        assert_eq!(flat.read_at(0, 9).unwrap(), b"from-base");
        assert_eq!(flat.read_at(10_000, 9).unwrap(), b"from-over");
    }

    #[test]
    fn flatten_skips_zero_clusters() {
        let mut img = QcowImage::create("z", 100_000);
        let cs = img.cluster_size() as usize;
        img.write_at(0, &vec![0u8; cs]).unwrap(); // explicit zeros
        img.write_at(cs as u64 * 3, &[1, 2, 3]).unwrap();
        let flat = img.flatten("f").unwrap();
        assert_eq!(flat.allocated_clusters(), 1, "zero cluster dropped");
    }

    #[test]
    fn allocated_bytes_includes_metadata() {
        let mut img = QcowImage::create("m", 1_000_000);
        assert!(img.allocated_bytes() > 0, "metadata even when empty");
        let before = img.allocated_bytes();
        img.write_at(0, &[1u8; 300]).unwrap();
        assert!(img.allocated_bytes() > before);
    }

    #[test]
    fn serialized_range_matches_read_at() {
        let mut img = QcowImage::create("r", 200_000);
        let big: Vec<u8> = (0..80_000u32).map(|i| (i % 253) as u8).collect();
        img.write_at(1000, &big).unwrap();
        img.write_at(99_990, b"straddles a cluster").unwrap();
        img.write_at(180_000, &[9; 100]).unwrap();
        let stream = img.serialize();
        let mut fetched = 0u64;
        let mut fetch = |off: u64, len: u64| {
            let end = (off + len).min(stream.len() as u64);
            let off = off.min(end);
            fetched += end - off;
            Ok(stream[off as usize..end as usize].to_vec())
        };
        for (start, len) in [
            (0u64, 100u64),
            (999, 5002),    // mapped span with edges
            (90_000, 1000), // unmapped (zeros)
            (99_980, 50),   // straddles cluster + zero boundary
            (199_990, 500), // clamps at virtual size
            (300_000, 10),  // fully past the end
            (0, 0),
        ] {
            let got = read_serialized_range(&mut fetch, start, len).unwrap();
            let end = (start + len).min(200_000);
            let expect = if start >= end {
                Vec::new()
            } else {
                img.read_at(start, (end - start) as usize).unwrap()
            };
            assert_eq!(got, expect, "range [{start}, +{len})");
        }
        // The point of the exercise: far less than the whole stream moved.
        assert!(
            fetched < stream.len() as u64 / 2,
            "{fetched} of {} stream bytes fetched",
            stream.len()
        );
    }

    #[test]
    fn serialized_range_rejects_garbage() {
        let err = read_serialized_range(|_o, _l| Ok(vec![0u8; 24]), 0, 10);
        assert_eq!(err, Err(QcowError::Corrupt("bad magic")));
        let err = read_serialized_range(|_o, _l| Ok(Vec::new()), 0, 10);
        assert_eq!(err, Err(QcowError::Corrupt("truncated")));
    }

    #[test]
    fn cross_cluster_write() {
        let mut img = QcowImage::create("x", 10_000);
        let cs = img.cluster_size();
        let data: Vec<u8> = (0..cs as usize * 2 + 37).map(|i| (i % 255) as u8).collect();
        img.write_at(cs - 10, &data).unwrap();
        assert_eq!(img.read_at(cs - 10, data.len()).unwrap(), data);
    }
}
