//! Raw (fully allocated) image format — the trivial counterpart used in
//! tests and as the `qemu-img convert -O raw` analogue.

use crate::qcow::{QcowError, QcowImage};

/// A raw image: a flat, fully materialized byte buffer.
#[derive(Clone)]
pub struct RawImage {
    name: String,
    data: Vec<u8>,
}

impl RawImage {
    pub fn create(name: &str, size: u64) -> Self {
        RawImage {
            name: name.to_string(),
            data: vec![0u8; size as usize],
        }
    }

    /// Materialize a qcow image (or chain) into raw form.
    pub fn from_qcow(img: &QcowImage) -> Result<Self, QcowError> {
        let data = img.read_at(0, img.virtual_size() as usize)?;
        Ok(RawImage {
            name: img.name().to_string(),
            data,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn size(&self) -> u64 {
        self.data.len() as u64
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    pub fn read_at(&self, offset: u64, len: usize) -> Result<&[u8], QcowError> {
        let end = offset as usize + len;
        if end > self.data.len() {
            return Err(QcowError::OutOfBounds {
                offset,
                len,
                virtual_size: self.data.len() as u64,
            });
        }
        Ok(&self.data[offset as usize..end])
    }

    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), QcowError> {
        let end = offset as usize + data.len();
        if end > self.data.len() {
            return Err(QcowError::OutOfBounds {
                offset,
                len: data.len(),
                virtual_size: self.data.len() as u64,
            });
        }
        self.data[offset as usize..end].copy_from_slice(data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let mut r = RawImage::create("r", 1000);
        r.write_at(10, b"raw").unwrap();
        assert_eq!(r.read_at(10, 3).unwrap(), b"raw");
        assert_eq!(r.size(), 1000);
    }

    #[test]
    fn raw_bounds() {
        let mut r = RawImage::create("r", 10);
        assert!(r.write_at(8, b"xyz").is_err());
        assert!(r.read_at(9, 2).is_err());
    }

    #[test]
    fn from_qcow_materializes() {
        let mut q = QcowImage::create("q", 5000);
        q.write_at(100, b"content").unwrap();
        let r = RawImage::from_qcow(&q).unwrap();
        assert_eq!(r.size(), 5000);
        assert_eq!(r.read_at(100, 7).unwrap(), b"content");
        assert_eq!(r.read_at(0, 10).unwrap(), &[0u8; 10]);
    }
}
