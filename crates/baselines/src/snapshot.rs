//! Internal: semantic snapshots of published images.
//!
//! Monolithic stores keep the whole image; our scale model stores the
//! actual (serialized/compressed/chunked) bytes for size accounting and a
//! lightweight semantic snapshot (file tree + package DB) so retrieval can
//! hand back a functional [`Vmi`] that tests compare against the original.

use xpl_guestfs::{FsTree, Vmi};
use xpl_pkg::{BaseImageAttrs, DpkgDb, PackageId};

/// Summary statistics are exposed for store diagnostics even where a
/// particular store doesn't read them.
#[derive(Clone)]
#[allow(dead_code)]
pub struct VmiSnapshot {
    pub name: String,
    pub base: BaseImageAttrs,
    pub fs: FsTree,
    pub pkgdb: DpkgDb,
    pub primary: Vec<PackageId>,
    pub mounted_bytes: u64,
    pub file_count: usize,
    pub disk_bytes: u64,
}

impl VmiSnapshot {
    pub fn of(vmi: &Vmi) -> VmiSnapshot {
        VmiSnapshot {
            name: vmi.name.clone(),
            base: vmi.base.clone(),
            fs: vmi.fs.clone(),
            pkgdb: vmi.pkgdb.clone(),
            primary: vmi.primary.clone(),
            mounted_bytes: vmi.mounted_bytes(),
            file_count: vmi.file_count(),
            disk_bytes: vmi.disk_bytes(),
        }
    }

    /// Rebuild a full Vmi (rematerializes the disk).
    pub fn restore(&self) -> Vmi {
        Vmi::assemble(
            &self.name,
            self.base.clone(),
            self.fs.clone(),
            self.pkgdb.clone(),
            self.primary.clone(),
        )
    }
}
