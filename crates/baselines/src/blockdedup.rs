//! Block-level deduplication stores (related-work baselines).
//!
//! Jin & Miller (SYSTOR '09) showed fixed-size block dedup detects up to
//! 70 % identical content between VM images; Liquid and Crab build systems
//! on the same principle. These stores chunk the *serialized image stream*
//! (fixed-size or Rabin CDC) and dedup chunks globally — the ablation
//! benches compare them against file- and semantic-level management.

use std::sync::RwLock;

use crate::snapshot::VmiSnapshot;
use xpl_chunking::{fixed::chunk_fixed, rabin, ChunkSpan};
use xpl_guestfs::Vmi;
use xpl_pkg::Catalog;
use xpl_simio::SimEnv;
use xpl_store::{
    ContentStore, DeleteReport, ImageStore, NameLocks, PublishReport, RetrieveReport,
    RetrieveRequest, StoreError,
};
use xpl_util::{Digest, FxHashMap};

enum Chunker {
    Fixed { block: usize },
    Cdc { params: rabin::CdcParams },
}

impl Chunker {
    fn spans(&self, data: &[u8]) -> Vec<ChunkSpan> {
        match self {
            Chunker::Fixed { block } => chunk_fixed(data, *block),
            Chunker::Cdc { params } => rabin::chunk_cdc(data, *params),
        }
    }
}

struct Recipe {
    chunks: Vec<Digest>,
    total_len: u64,
    snapshot: VmiSnapshot,
}

/// Generic chunk-dedup store.
///
/// Concurrency: chunks live in the digest-sharded content store; the
/// recipe index is a `RwLock` and same-name operations serialize on a
/// per-image stripe, so distinct images chunk and publish in parallel.
pub struct BlockDedupStore {
    env: SimEnv,
    label: &'static str,
    chunker: Chunker,
    cas: ContentStore,
    recipes: RwLock<FxHashMap<String, Recipe>>,
    names: NameLocks,
}

/// Fixed-size block dedup (Jin & Miller's preferred configuration).
pub struct FixedBlockDedupStore(BlockDedupStore);
/// Content-defined (Rabin) chunk dedup.
pub struct CdcDedupStore(BlockDedupStore);

impl FixedBlockDedupStore {
    /// `block_real` is the materialized block size (e.g. 4096 = 4 MB
    /// nominal).
    pub fn new(env: SimEnv, block_real: usize) -> Self {
        let cas = ContentStore::new(std::sync::Arc::clone(&env.repo));
        FixedBlockDedupStore(BlockDedupStore {
            env,
            label: "BlockDedup(fixed)",
            chunker: Chunker::Fixed { block: block_real },
            cas,
            recipes: RwLock::new(FxHashMap::default()),
            names: NameLocks::new(),
        })
    }

    pub fn dedup_factor(&self) -> f64 {
        self.0.dedup_factor()
    }
}

impl CdcDedupStore {
    pub fn new(env: SimEnv, avg_real: usize) -> Self {
        let cas = ContentStore::new(std::sync::Arc::clone(&env.repo));
        CdcDedupStore(BlockDedupStore {
            env,
            label: "BlockDedup(cdc)",
            chunker: Chunker::Cdc {
                params: rabin::CdcParams::with_avg(avg_real),
            },
            cas,
            recipes: RwLock::new(FxHashMap::default()),
            names: NameLocks::new(),
        })
    }

    pub fn dedup_factor(&self) -> f64 {
        self.0.dedup_factor()
    }
}

impl BlockDedupStore {
    fn recipe_overhead(entries: u64) -> u64 {
        (entries * 40).div_ceil(xpl_util::SCALE_FACTOR)
    }

    fn total_entries(&self) -> u64 {
        self.recipes
            .read()
            .unwrap()
            .values()
            .map(|r| r.chunks.len() as u64)
            .sum()
    }

    /// Drop one recipe's chunk references; returns (freed bytes, blobs).
    fn release_recipe(&self, recipe: &Recipe) -> Result<(u64, usize), StoreError> {
        let mut freed = 0u64;
        let mut blobs = 0usize;
        for digest in &recipe.chunks {
            let f = self
                .cas
                .release(digest)
                .map_err(|_| StoreError::Corrupt(format!("release chunk {digest}")))?;
            if f > 0 {
                freed += f;
                blobs += 1;
            }
        }
        Ok((freed, blobs))
    }

    fn delete(&self, name: &str) -> Result<DeleteReport, StoreError> {
        let _name_guard = self.names.lock(name);
        let t0 = self.env.clock.now();
        let entries_before = self.total_entries();
        let recipe = self
            .recipes
            .write()
            .unwrap()
            .remove(name)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
        let (freed_content, blobs) = self.release_recipe(&recipe)?;
        self.env.repo.charge_db_write(1);
        let overhead_freed = Self::recipe_overhead(entries_before)
            .saturating_sub(Self::recipe_overhead(self.total_entries()));
        Ok(DeleteReport {
            image: name.to_string(),
            duration: self.env.clock.since(t0),
            bytes_freed: freed_content + overhead_freed,
            units_removed: blobs,
        })
    }

    fn check_integrity(&self) -> Result<(), String> {
        let mut expected: FxHashMap<Digest, u32> = FxHashMap::default();
        for r in self.recipes.read().unwrap().values() {
            for digest in &r.chunks {
                *expected.entry(*digest).or_insert(0) += 1;
            }
        }
        self.cas
            .audit_refs(&expected)
            .map_err(|e| format!("{}: {e}", self.label))
    }

    fn dedup_factor(&self) -> f64 {
        let logical: u64 = self
            .recipes
            .read()
            .unwrap()
            .values()
            .map(|r| r.total_len)
            .sum();
        if self.cas.unique_bytes() == 0 {
            1.0
        } else {
            logical as f64 / self.cas.unique_bytes() as f64
        }
    }

    fn publish(&self, vmi: &Vmi) -> Result<PublishReport, StoreError> {
        let _name_guard = self.names.lock(&vmi.name);
        let t0 = self.env.clock.now();
        let mut report = PublishReport {
            image: vmi.name.clone(),
            ..Default::default()
        };
        // Block dedup reads the *device address space* (unallocated ranges
        // read as zeros and dedup to a single zero block), not a
        // serialized file format — allocation-stable offsets are what make
        // fixed-size chunking effective on VM images.
        let raw = xpl_vdisk::RawImage::from_qcow(&vmi.disk)
            .map_err(|e| StoreError::Corrupt(format!("raw read: {e}")))?;
        let data = raw.as_bytes();
        self.env.local.charge_read(data.len() as u64);
        let spans = self.chunker.spans(data);
        let mut chunks = Vec::with_capacity(spans.len());
        let mut new_chunks = 0usize;
        let mut added_content = 0u64;
        for s in &spans {
            let chunk = &data[s.offset..s.offset + s.len];
            let (digest, new) = self.cas.put(chunk);
            if new {
                new_chunks += 1;
                added_content += chunk.len() as u64;
            }
            chunks.push(digest);
        }
        report.units_stored = new_chunks;
        let entries_before = self.total_entries();
        let old = self.recipes.write().unwrap().insert(
            vmi.name.clone(),
            Recipe {
                chunks,
                total_len: data.len() as u64,
                snapshot: VmiSnapshot::of(vmi),
            },
        );
        // Re-publish: release the replaced recipe after the new one holds
        // its chunk references.
        let freed_content = match &old {
            Some(old) => self.release_recipe(old)?.0,
            None => 0,
        };
        let (oa, ob) = (
            Self::recipe_overhead(self.total_entries()),
            Self::recipe_overhead(entries_before),
        );
        report.bytes_added = added_content + oa.saturating_sub(ob);
        report.bytes_freed = freed_content + ob.saturating_sub(oa);
        report.duration = self.env.clock.since(t0);
        Ok(report)
    }

    fn retrieve(&self, request: &RetrieveRequest) -> Result<(Vmi, RetrieveReport), StoreError> {
        let t0 = self.env.clock.now();
        let recipes = self.recipes.read().unwrap();
        let recipe = recipes
            .get(&request.name)
            .ok_or_else(|| StoreError::NotFound(request.name.clone()))?;
        let mut report = RetrieveReport {
            image: request.name.clone(),
            ..Default::default()
        };
        let reads_before = self.env.repo.stats().bytes_read;
        let mut reassembled = Vec::with_capacity(recipe.total_len as usize);
        for digest in &recipe.chunks {
            let chunk = self
                .cas
                .get(digest)
                .map_err(|_| StoreError::Corrupt(format!("chunk {digest}")))?;
            reassembled.extend_from_slice(&chunk);
        }
        if reassembled.len() as u64 != recipe.total_len {
            return Err(StoreError::Corrupt("reassembled length mismatch".into()));
        }
        self.env.local.charge_write(reassembled.len() as u64);
        let vmi = recipe.snapshot.restore();
        report.bytes_read = self.env.repo.stats().bytes_read - reads_before;
        report.duration = self.env.clock.since(t0);
        Ok((vmi, report))
    }

    fn repo_bytes(&self) -> u64 {
        // Recipe overhead: ≈40 nominal bytes per chunk reference.
        self.cas.unique_bytes() + Self::recipe_overhead(self.total_entries())
    }
}

macro_rules! delegate_store {
    ($ty:ty) => {
        impl ImageStore for $ty {
            fn name(&self) -> &'static str {
                self.0.label
            }
            fn attach_obs(&self, reg: &std::sync::Arc<xpl_obs::Registry>) {
                self.0.cas.attach_obs(reg);
            }
            fn publish(&self, _catalog: &Catalog, vmi: &Vmi) -> Result<PublishReport, StoreError> {
                self.0.publish(vmi)
            }
            fn retrieve(
                &self,
                _catalog: &Catalog,
                request: &RetrieveRequest,
            ) -> Result<(Vmi, RetrieveReport), StoreError> {
                self.0.retrieve(request)
            }
            fn delete(&self, name: &str) -> Result<DeleteReport, StoreError> {
                self.0.delete(name)
            }
            fn repo_bytes(&self) -> u64 {
                self.0.repo_bytes()
            }
            fn check_integrity(&self) -> Result<(), String> {
                self.0.check_integrity()
            }
            fn check_integrity_deep(&self) -> Result<(), String> {
                self.0.check_integrity()?;
                self.0
                    .cas
                    .check_integrity(true)
                    .map_err(|e| format!("{} content: {e}", self.0.label))
            }
        }
    };
}

delegate_store!(FixedBlockDedupStore);
delegate_store!(CdcDedupStore);

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_workloads::World;

    #[test]
    fn identical_images_dedup_nearly_fully() {
        let w = World::small();
        let store = FixedBlockDedupStore::new(w.env(), 256);
        let redis = w.build_image("redis");
        store.publish(&w.catalog, &redis).unwrap();
        let after_one = store.repo_bytes();
        // Same content under a different name.
        let mut again = redis.clone();
        again.name = "redis-copy".into();
        again.rebuild_disk();
        store.publish(&w.catalog, &again).unwrap();
        let growth = store.repo_bytes() - after_one;
        assert!(growth < after_one / 5, "grew {growth} of {after_one}");
        assert!(store.dedup_factor() > 1.5);
    }

    #[test]
    fn similar_images_share_blocks() {
        let w = World::small();
        let store = FixedBlockDedupStore::new(w.env(), 256);
        store.publish(&w.catalog, &w.build_image("mini")).unwrap();
        let after_mini = store.repo_bytes();
        store.publish(&w.catalog, &w.build_image("redis")).unwrap();
        let growth = store.repo_bytes() - after_mini;
        assert!(
            growth < after_mini,
            "shared base should dedup at block level: grew {growth} of {after_mini}"
        );
    }

    #[test]
    fn cdc_roundtrip() {
        let w = World::small();
        let store = CdcDedupStore::new(w.env(), 512);
        let lamp = w.build_image("lamp");
        store.publish(&w.catalog, &lamp).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&lamp, &w.catalog);
        let (got, _) = store.retrieve(&w.catalog, &req).unwrap();
        assert_eq!(
            got.installed_package_set(&w.catalog),
            lamp.installed_package_set(&w.catalog)
        );
    }

    #[test]
    fn fixed_roundtrip() {
        let w = World::small();
        let store = FixedBlockDedupStore::new(w.env(), 128);
        let nginx = w.build_image("nginx");
        store.publish(&w.catalog, &nginx).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&nginx, &w.catalog);
        let (got, report) = store.retrieve(&w.catalog, &req).unwrap();
        assert_eq!(got.mounted_bytes(), nginx.mounted_bytes());
        assert!(report.bytes_read > 0);
    }
}
