//! Per-system cost constants (fitted to Figures 4–5; see DESIGN.md §6).

use xpl_simio::SimDuration;

/// Mounting an image read-only for scanning (guestmount-class).
pub fn mount_fixed() -> SimDuration {
    SimDuration::from_secs_f64(2.0)
}

/// Effective scan throughput while hashing a mounted guest filesystem
/// through FUSE, nominal bytes/second. The paper's Mirage/Hemera publish
/// times scale with mounted size; ~20 MiB/s reproduces the 95–135 s scan
/// component across the 1.9–2.7 GB images.
pub const SCAN_BPS: u64 = 20 * 1024 * 1024;

/// Index-match work per scanned file (hash lookup + metadata compare).
/// 1.8 ms/file puts Elastic Stack's 103 k files at ≈187 s, making it the
/// slowest Mirage/Hemera publish, as in Figure 4b.
pub fn file_match() -> SimDuration {
    SimDuration::from_micros(1800)
}

/// Hemera's per-row fetch surcharge at retrieval (SQLite page walk +
/// decode) on top of the device's base row cost. Total ≈1 ms/row puts
/// Elastic Stack retrieval at ≈115 s vs. the paper's 129.8 s, and keeps
/// Hemera well under Mirage's 4.2 ms/file penalty path.
pub fn hemera_row_fetch_extra() -> SimDuration {
    SimDuration::from_micros(780)
}

/// Files at or below this *nominal* size go into Hemera's database
/// (256 KB — "small sized files in the database").
pub const HEMERA_DB_THRESHOLD_NOMINAL: u64 = 256 * 1024;

/// DEFLATE compression compute, per nominal byte (multi-core effective).
pub fn gzip_compress_per_byte() -> SimDuration {
    SimDuration::from_nanos(11)
}

/// DEFLATE decompression compute, per nominal byte.
pub fn gzip_decompress_per_byte() -> SimDuration {
    SimDuration::from_nanos(4)
}

/// Charge `per_byte` cost scaled to nominal for `real_bytes`.
pub fn scaled(per_byte: SimDuration, real_bytes: u64) -> SimDuration {
    SimDuration(
        per_byte
            .0
            .saturating_mul(real_bytes.saturating_mul(xpl_util::SCALE_FACTOR)),
    )
}

/// Transfer duration for `real_bytes` at a nominal-bytes/second rate.
pub fn xfer(real_bytes: u64, nominal_bps: u64) -> SimDuration {
    let nominal = real_bytes as u128 * xpl_util::SCALE_FACTOR as u128;
    SimDuration(((nominal * 1_000_000_000) / nominal_bps as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_time_for_typical_image() {
        // A 2 GB nominal image scans in ≈102 s at 20 MiB/s.
        let t = xfer(2 * 1024 * 1024, SCAN_BPS);
        assert!((95.0..110.0).contains(&t.as_secs_f64()), "{t}");
    }

    #[test]
    fn match_cost_for_elastic_files() {
        let t = SimDuration(file_match().0 * 103_719);
        assert!((170.0..200.0).contains(&t.as_secs_f64()), "{t}");
    }

    #[test]
    fn scaled_costs_scale() {
        let one_kib_real = scaled(SimDuration::from_nanos(1), 1024); // 1 MiB nominal
        assert_eq!(one_kib_real.as_nanos(), 1024 * 1024);
    }
}
