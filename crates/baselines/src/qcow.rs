//! The Qcow2 baseline: one qcow2 file per image, no dedup, no compression.

use std::sync::{Mutex, RwLock};

use crate::snapshot::VmiSnapshot;
use xpl_guestfs::Vmi;
use xpl_pkg::Catalog;
use xpl_simio::SimEnv;
use xpl_store::{
    DeleteReport, ImageStore, NameLocks, PublishReport, RetrieveReport, RetrieveRequest, StoreError,
};
use xpl_util::FxHashMap;

struct Entry {
    bytes: Vec<u8>,
    snapshot: VmiSnapshot,
}

/// Plain qcow2 image repository.
///
/// Concurrency: per-image stripes serialize same-name operations; the
/// image index is a short-critical-section `RwLock` (serialization and
/// charging happen outside it), so distinct images publish, retrieve and
/// delete in parallel.
pub struct QcowStore {
    env: SimEnv,
    images: RwLock<FxHashMap<String, Entry>>,
    order: Mutex<Vec<String>>,
    names: NameLocks,
}

impl QcowStore {
    pub fn new(env: SimEnv) -> Self {
        QcowStore {
            env,
            images: RwLock::new(FxHashMap::default()),
            order: Mutex::new(Vec::new()),
            names: NameLocks::new(),
        }
    }

    pub fn image_count(&self) -> usize {
        self.images.read().unwrap().len()
    }
}

impl ImageStore for QcowStore {
    fn name(&self) -> &'static str {
        "Qcow2"
    }

    fn publish(&self, _catalog: &Catalog, vmi: &Vmi) -> Result<PublishReport, StoreError> {
        let _name_guard = self.names.lock(&vmi.name);
        let t0 = self.env.clock.now();
        let mut report = PublishReport {
            image: vmi.name.clone(),
            ..Default::default()
        };
        let bytes = report.breakdown.measure(&self.env.clock, "serialize", || {
            let b = vmi.disk.serialize();
            self.env.local.charge_read(b.len() as u64);
            b
        });
        report.breakdown.measure(&self.env.clock, "upload", || {
            self.env
                .local
                .charge_copy_to(&self.env.repo, bytes.len() as u64);
        });
        report.bytes_added = bytes.len() as u64;
        report.units_stored = 1;
        match self.images.write().unwrap().insert(
            vmi.name.clone(),
            Entry {
                bytes,
                snapshot: VmiSnapshot::of(vmi),
            },
        ) {
            // Re-publish replaces the previous file of the same name.
            Some(old) => report.bytes_freed = old.bytes.len() as u64,
            None => self.order.lock().unwrap().push(vmi.name.clone()),
        }
        report.duration = self.env.clock.since(t0);
        Ok(report)
    }

    fn retrieve(
        &self,
        _catalog: &Catalog,
        request: &RetrieveRequest,
    ) -> Result<(Vmi, RetrieveReport), StoreError> {
        let t0 = self.env.clock.now();
        let images = self.images.read().unwrap();
        let entry = images
            .get(&request.name)
            .ok_or_else(|| StoreError::NotFound(request.name.clone()))?;
        let mut report = RetrieveReport {
            image: request.name.clone(),
            ..Default::default()
        };
        let vmi = report.breakdown.measure(&self.env.clock, "download", || {
            self.env.repo.charge_open(entry.bytes.len() as u64);
            self.env
                .repo
                .charge_copy_to(&self.env.local, entry.bytes.len() as u64);
            // Integrity: the stored stream must still parse.
            xpl_vdisk::QcowImage::deserialize(&entry.bytes)
                .map(|_| entry.snapshot.restore())
                .map_err(|e| StoreError::Corrupt(format!("qcow2 stream: {e}")))
        })?;
        report.bytes_read = entry.bytes.len() as u64;
        report.duration = self.env.clock.since(t0);
        Ok((vmi, report))
    }

    fn delete(&self, name: &str) -> Result<DeleteReport, StoreError> {
        let _name_guard = self.names.lock(name);
        let t0 = self.env.clock.now();
        let entry = self
            .images
            .write()
            .unwrap()
            .remove(name)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
        self.order.lock().unwrap().retain(|n| n != name);
        self.env.repo.charge_db_write(1); // unlink is metadata work
        Ok(DeleteReport {
            image: name.to_string(),
            duration: self.env.clock.since(t0),
            bytes_freed: entry.bytes.len() as u64,
            units_removed: 1,
        })
    }

    fn repo_bytes(&self) -> u64 {
        self.images
            .read()
            .unwrap()
            .values()
            .map(|e| e.bytes.len() as u64)
            .sum()
    }

    fn check_integrity(&self) -> Result<(), String> {
        let images = self.images.read().unwrap();
        let order = self.order.lock().unwrap();
        if order.len() != images.len() {
            return Err(format!(
                "order list has {} names but {} images stored",
                order.len(),
                images.len()
            ));
        }
        for name in order.iter() {
            if !images.contains_key(name) {
                return Err(format!("ordered name {name} has no stored image"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_workloads::World;

    #[test]
    fn publish_accumulates_full_size() {
        let w = World::small();
        let store = QcowStore::new(w.env());
        let mini = w.build_image("mini");
        let redis = w.build_image("redis");
        store.publish(&w.catalog, &mini).unwrap();
        let after_one = store.repo_bytes();
        store.publish(&w.catalog, &redis).unwrap();
        // No dedup: second image adds its full serialized size.
        assert!(store.repo_bytes() > after_one + after_one / 2);
        assert_eq!(store.image_count(), 2);
    }

    #[test]
    fn retrieve_roundtrip() {
        let w = World::small();
        let store = QcowStore::new(w.env());
        let redis = w.build_image("redis");
        store.publish(&w.catalog, &redis).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&redis, &w.catalog);
        let (got, report) = store.retrieve(&w.catalog, &req).unwrap();
        assert_eq!(
            got.installed_package_set(&w.catalog),
            redis.installed_package_set(&w.catalog)
        );
        assert_eq!(got.mounted_bytes(), redis.mounted_bytes());
        assert!(report.duration.as_nanos() > 0);
    }

    #[test]
    fn missing_image_not_found() {
        let w = World::small();
        let store = QcowStore::new(w.env());
        let req = xpl_store::RetrieveRequest {
            name: "ghost".into(),
            base: w.template.attrs.clone(),
            primary: vec![],
            user_data: vec![],
        };
        assert!(matches!(
            store.retrieve(&w.catalog, &req),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn distinct_images_publish_from_threads() {
        let w = World::small();
        let store = QcowStore::new(w.env());
        let images: Vec<Vmi> = ["mini", "redis", "nginx", "lamp"]
            .iter()
            .map(|n| w.build_image(n))
            .collect();
        let (store_ref, catalog) = (&store, &w.catalog);
        std::thread::scope(|s| {
            for vmi in &images {
                s.spawn(move || store_ref.publish(catalog, vmi).unwrap());
            }
        });
        assert_eq!(store.image_count(), 4);
        store.check_integrity().unwrap();
    }
}
