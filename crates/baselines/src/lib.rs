//! `xpl-baselines` — the comparison systems from the paper's evaluation.
//!
//! * [`qcow`] — **Qcow2**: stores each image as its (sparse) qcow2 file.
//! * [`gzip`] — **Qcow2 + Gzip**: each qcow2 compressed whole with our
//!   DEFLATE; captures intra-image redundancy only.
//! * [`mirage`] — **Mirage (MIF)**: file-level dedup into a content-
//!   addressed store with a per-image manifest; pays per-file costs on
//!   publish and the small-file read penalty on retrieval.
//! * [`hemera`] — **Hemera**: hybrid — small files live in the metadata
//!   database (cheap row reads), large files in the file store; publishes
//!   like Mirage, retrieves much faster.
//! * [`blockdedup`] — fixed-size and Rabin-CDC block-level dedup stores
//!   (the related-work baselines of Jin et al., used by the ablations).
//!
//! Shared per-system cost constants live in [`costs`].

pub mod blockdedup;
pub mod costs;
pub mod gzip;
pub mod hemera;
pub mod mirage;
pub mod qcow;
mod snapshot;

pub use blockdedup::{CdcDedupStore, FixedBlockDedupStore};
pub use gzip::GzipStore;
pub use hemera::HemeraStore;
pub use mirage::MirageStore;
pub use qcow::QcowStore;
