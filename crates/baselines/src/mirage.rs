//! The Mirage (MIF) baseline: VMI as structured data with file-level
//! deduplication.
//!
//! Publish: mount, hash every file (rayon-parallel), match against the
//! global index, store new content once, write a manifest. Retrieve: read
//! every manifest file back from the store — paying the per-file open +
//! small-file penalty the paper identifies ("it is inefficient in reading
//! small files (below 1MB) from file system-based repository").

use std::sync::RwLock;

use crate::costs;
use crate::snapshot::VmiSnapshot;
use rayon::prelude::*;
use xpl_guestfs::{FileRecord, Vmi};
use xpl_pkg::Catalog;
use xpl_simio::{SimDuration, SimEnv};
use xpl_store::{
    ContentStore, DeleteReport, ImageStore, MaintainReport, NameLocks, PublishReport,
    RetrieveReport, RetrieveRequest, StoreError, TierPolicy,
};
use xpl_util::{Digest, FxHashMap};

struct Manifest {
    files: Vec<(FileRecord, Digest)>,
    snapshot: VmiSnapshot,
}

/// File-level deduplicating image repository.
///
/// Concurrency: the content store is digest-sharded (see
/// `xpl_store::cas`); the manifest index is a `RwLock` held only around
/// map access, and same-name operations serialize on a per-image stripe.
/// Scan+hash — the expensive publish leg — runs outside every lock.
pub struct MirageStore {
    env: SimEnv,
    cas: ContentStore,
    manifests: RwLock<FxHashMap<String, Manifest>>,
    names: NameLocks,
}

impl MirageStore {
    pub fn new(env: SimEnv) -> Self {
        let cas = ContentStore::new(std::sync::Arc::clone(&env.repo));
        MirageStore {
            env,
            cas,
            manifests: RwLock::new(FxHashMap::default()),
            names: NameLocks::new(),
        }
    }

    /// Durable variant: the file CAS writes through to an
    /// `xpl-persist` log-structured store, making Mirage the baseline
    /// that runs fully durable alongside Expelliarmus in the churn
    /// replay's `--durable` mode.
    pub fn new_durable(
        env: SimEnv,
        durable: std::sync::Arc<xpl_persist::DurableContentStore>,
    ) -> Self {
        let cas = ContentStore::new_durable(std::sync::Arc::clone(&env.repo), durable);
        MirageStore {
            env,
            cas,
            manifests: RwLock::new(FxHashMap::default()),
            names: NameLocks::new(),
        }
    }

    /// Builder: select the file CAS codec tier. `repo_bytes` stays
    /// logical (codec-invariant); only the physical representation and
    /// real CPU change.
    pub fn with_tier(mut self, tier: TierPolicy) -> Self {
        self.cas = self.cas.with_tier(tier);
        self
    }

    pub fn unique_files(&self) -> usize {
        self.cas.blob_count()
    }

    pub fn dedup_hits(&self) -> u64 {
        self.cas.dedup_hits()
    }

    /// Manifest metadata overhead for `entries` total manifest entries.
    fn manifest_overhead(entries: u64) -> u64 {
        (entries * 48).div_ceil(xpl_util::SCALE_FACTOR)
    }

    fn total_entries(&self) -> u64 {
        self.manifests
            .read()
            .unwrap()
            .values()
            .map(|m| m.files.len() as u64)
            .sum()
    }

    /// Drop one manifest's references; returns (freed bytes, freed blobs).
    fn release_manifest(&self, manifest: &Manifest) -> Result<(u64, usize), StoreError> {
        let mut freed = 0u64;
        let mut blobs = 0usize;
        for (record, digest) in &manifest.files {
            let f = self
                .cas
                .release(digest)
                .map_err(|_| StoreError::Corrupt(format!("release {}", record.path)))?;
            if f > 0 {
                freed += f;
                blobs += 1;
            }
        }
        Ok((freed, blobs))
    }
}

impl ImageStore for MirageStore {
    fn name(&self) -> &'static str {
        "Mirage"
    }

    fn attach_obs(&self, reg: &std::sync::Arc<xpl_obs::Registry>) {
        self.cas.attach_obs(reg);
    }

    fn publish(&self, _catalog: &Catalog, vmi: &Vmi) -> Result<PublishReport, StoreError> {
        let _name_guard = self.names.lock(&vmi.name);
        let t0 = self.env.clock.now();
        let mut report = PublishReport {
            image: vmi.name.clone(),
            ..Default::default()
        };

        // Mount + full content scan (hashing every file through the
        // mounted guest filesystem).
        let hashed: Vec<(FileRecord, Digest, Vec<u8>)> =
            report.breakdown.measure(&self.env.clock, "scan+hash", || {
                self.env.local.charge_fixed(costs::mount_fixed());
                self.env
                    .local
                    .charge_fixed(costs::xfer(vmi.mounted_bytes(), costs::SCAN_BPS));
                let records: Vec<FileRecord> = vmi.fs.iter().collect();
                records
                    .into_par_iter()
                    .map(|r| {
                        let content = r.content();
                        let digest = xpl_util::Sha256::digest(&content);
                        (r, digest, content)
                    })
                    .collect()
            });

        // Index matching + storing new content. `bytes_added` is tracked
        // op-locally (this publish's new puts), so concurrent publishes
        // of distinct images each report their own contribution.
        let mut added_content = 0u64;
        let mut new_files = 0usize;
        let mut files = Vec::with_capacity(hashed.len());
        report
            .breakdown
            .measure(&self.env.clock, "match+store", || {
                self.env
                    .local
                    .charge_fixed(SimDuration(costs::file_match().0 * hashed.len() as u64));
                for (record, digest, content) in hashed {
                    if self.cas.put_with_digest(digest, &content) {
                        new_files += 1;
                        added_content += content.len() as u64;
                    }
                    files.push((record, digest));
                }
            });
        report.units_stored = new_files;
        let entries_before = self.total_entries();
        let old = self.manifests.write().unwrap().insert(
            vmi.name.clone(),
            Manifest {
                files,
                snapshot: VmiSnapshot::of(vmi),
            },
        );
        // Re-publish: the new manifest is referenced first, then the old
        // one is released, so content shared across generations survives.
        let freed_content = match &old {
            Some(old) => self.release_manifest(old)?.0,
            None => 0,
        };
        // Exact ledger: repo_bytes_after == before + bytes_added - bytes_freed,
        // including the manifest-overhead delta.
        let (oa, ob) = (
            Self::manifest_overhead(self.total_entries()),
            Self::manifest_overhead(entries_before),
        );
        report.bytes_added = added_content + oa.saturating_sub(ob);
        report.bytes_freed = freed_content + ob.saturating_sub(oa);
        report.duration = self.env.clock.since(t0);
        Ok(report)
    }

    fn retrieve(
        &self,
        _catalog: &Catalog,
        request: &RetrieveRequest,
    ) -> Result<(Vmi, RetrieveReport), StoreError> {
        let t0 = self.env.clock.now();
        let manifests = self.manifests.read().unwrap();
        let manifest = manifests
            .get(&request.name)
            .ok_or_else(|| StoreError::NotFound(request.name.clone()))?;
        let mut report = RetrieveReport {
            image: request.name.clone(),
            ..Default::default()
        };
        let reads_before = self.env.repo.stats().bytes_read;

        // Read every file from the store — the per-file penalty path.
        report.breakdown.measure(
            &self.env.clock,
            "read files",
            || -> Result<(), StoreError> {
                for (record, digest) in &manifest.files {
                    self.cas
                        .get(digest)
                        .map_err(|_| StoreError::Corrupt(format!("file {}", record.path)))?;
                }
                Ok(())
            },
        )?;

        // Reassemble the image locally.
        let vmi = report.breakdown.measure(&self.env.clock, "assemble", || {
            let vmi = manifest.snapshot.restore();
            self.env.local.charge_write(vmi.disk_bytes());
            vmi
        });

        report.bytes_read = self.env.repo.stats().bytes_read - reads_before;
        report.duration = self.env.clock.since(t0);
        Ok((vmi, report))
    }

    fn retrieve_range(
        &self,
        _catalog: &Catalog,
        request: &RetrieveRequest,
        start: u64,
        len: u64,
    ) -> Result<(Vec<u8>, RetrieveReport), StoreError> {
        let t0 = self.env.clock.now();
        let manifests = self.manifests.read().unwrap();
        let manifest = manifests
            .get(&request.name)
            .ok_or_else(|| StoreError::NotFound(request.name.clone()))?;
        let mut report = RetrieveReport {
            image: request.name.clone(),
            ..Default::default()
        };
        let reads_before = self.env.repo.stats().bytes_read;
        // Semantics-aware range assembly: the manifest's tree metadata
        // maps the disk range to file extents, and only the overlapping
        // slice of each touched blob leaves the store (per-file open
        // cost stays — Mirage's small-file penalty applies to ranges
        // too, just over far fewer files).
        let by_path: FxHashMap<&str, Digest> = manifest
            .files
            .iter()
            .map(|(r, d)| (r.path.as_str(), *d))
            .collect();
        let bytes = report
            .breakdown
            .measure(&self.env.clock, "range assemble", || {
                xpl_guestfs::materialize_range(&manifest.snapshot.fs, start, len, |rec, off, l| {
                    let digest = by_path
                        .get(rec.path.as_str())
                        .ok_or_else(|| format!("no blob for {}", rec.path))?;
                    self.cas
                        .get_range(digest, off, l)
                        .map_err(|e| format!("blob {}: {e:?}", rec.path))
                })
            })
            .map_err(StoreError::Corrupt)?;
        self.env.local.charge_write(bytes.len() as u64);
        report.bytes_read = self.env.repo.stats().bytes_read - reads_before;
        report.duration = self.env.clock.since(t0);
        Ok((bytes, report))
    }

    fn delete(&self, name: &str) -> Result<DeleteReport, StoreError> {
        let _name_guard = self.names.lock(name);
        let t0 = self.env.clock.now();
        let entries_before = self.total_entries();
        let manifest = self
            .manifests
            .write()
            .unwrap()
            .remove(name)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
        let (freed_content, blobs) = self.release_manifest(&manifest)?;
        self.env.repo.charge_db_write(1);
        let overhead_freed = Self::manifest_overhead(entries_before)
            .saturating_sub(Self::manifest_overhead(self.total_entries()));
        Ok(DeleteReport {
            image: name.to_string(),
            duration: self.env.clock.since(t0),
            bytes_freed: freed_content + overhead_freed,
            units_removed: blobs,
        })
    }

    fn repo_bytes(&self) -> u64 {
        // Unique content + manifest overhead: ≈48 *nominal* bytes per
        // entry (digest + path ref), i.e. 48/1024 materialized bytes.
        self.cas.unique_bytes() + Self::manifest_overhead(self.total_entries())
    }

    fn check_integrity(&self) -> Result<(), String> {
        // Every blob's refcount must equal the number of manifest entries
        // referencing it (counting multiplicity), with no orphans.
        let mut expected: FxHashMap<Digest, u32> = FxHashMap::default();
        for m in self.manifests.read().unwrap().values() {
            for (_, digest) in &m.files {
                *expected.entry(*digest).or_insert(0) += 1;
            }
        }
        self.cas
            .audit_refs(&expected)
            .map_err(|e| format!("Mirage CAS: {e}"))
    }

    fn check_integrity_deep(&self) -> Result<(), String> {
        self.check_integrity()?;
        self.cas
            .check_integrity(true)
            .map_err(|e| format!("Mirage CAS content: {e}"))
    }

    fn maintain(&self) -> MaintainReport {
        let t0 = self.env.clock.now();
        let sweep = self.cas.maintain();
        MaintainReport {
            duration: self.env.clock.since(t0),
            scanned: sweep.scanned,
            promoted: sweep.promoted,
            demoted: sweep.demoted,
            // The CAS ledger is logical: repo_bytes never moves.
            bytes_delta: 0,
        }
    }

    fn cas_fingerprints(&self) -> Vec<(String, String)> {
        vec![("files".to_string(), self.cas.state_fingerprint())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_workloads::World;

    #[test]
    fn cross_image_file_dedup() {
        let w = World::small();
        let store = MirageStore::new(w.env());
        store.publish(&w.catalog, &w.build_image("mini")).unwrap();
        let after_mini = store.repo_bytes();
        let redis = w.build_image("redis");
        let r = store.publish(&w.catalog, &redis).unwrap();
        // Redis shares the whole base: growth is bounded by redis-specific
        // content (its packages, user data, status file) plus manifest
        // overhead — far below re-storing the image.
        let growth = store.repo_bytes() - after_mini;
        assert!(
            growth < redis.mounted_bytes() / 2,
            "file dedup should absorb the shared base; grew {growth} of mounted {}",
            redis.mounted_bytes()
        );
        assert!(r.units_stored > 0, "redis's own files are new");
        assert!(store.dedup_hits() > 10);
    }

    #[test]
    fn publish_time_scales_with_files_not_dedup() {
        let w = World::small();
        let store = MirageStore::new(w.env());
        let mini = w.build_image("mini");
        store.publish(&w.catalog, &mini).unwrap();
        // Publishing the identical image again still pays scan + match.
        let r2 = store.publish(&w.catalog, &mini).unwrap();
        assert_eq!(r2.units_stored, 0);
        assert!(r2.duration.as_secs_f64() > 1.0, "{}", r2.duration);
    }

    #[test]
    fn retrieve_roundtrip_and_penalty() {
        let w = World::small();
        let store = MirageStore::new(w.env());
        let redis = w.build_image("redis");
        store.publish(&w.catalog, &redis).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&redis, &w.catalog);
        let (got, report) = store.retrieve(&w.catalog, &req).unwrap();
        assert_eq!(
            got.installed_package_set(&w.catalog),
            redis.installed_package_set(&w.catalog)
        );
        // Per-file costs dominate: reading N small files must cost more
        // than the raw bytes would at sequential speed.
        let seq = costs::xfer(report.bytes_read, 250 * 1024 * 1024);
        assert!(report.breakdown.get("read files") > seq);
    }

    #[test]
    fn range_read_matches_disk_and_touches_fewer_bytes() {
        let w = World::small();
        let store = MirageStore::new(w.env());
        let redis = w.build_image("redis");
        store.publish(&w.catalog, &redis).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&redis, &w.catalog);
        let (full, full_report) = store.retrieve(&w.catalog, &req).unwrap();
        let size = full.disk.virtual_size();
        for (start, len) in [(0u64, 700u64), (size / 3, 2048), (size - 50, 200), (0, 0)] {
            let (bytes, report) = store.retrieve_range(&w.catalog, &req, start, len).unwrap();
            let end = start.saturating_add(len).min(size);
            let expect = if start >= end {
                Vec::new()
            } else {
                full.disk.read_at(start, (end - start) as usize).unwrap()
            };
            assert_eq!(bytes, expect, "range [{start}, +{len})");
            assert!(
                report.bytes_read <= full_report.bytes_read,
                "range moved {} vs full {}",
                report.bytes_read,
                full_report.bytes_read
            );
            if len > 0 && len < size / 2 {
                assert!(report.bytes_read < full_report.bytes_read);
            }
        }
    }

    #[test]
    fn corrupted_blob_detected() {
        let w = World::small();
        let store = MirageStore::new(w.env());
        let redis = w.build_image("redis");
        store.publish(&w.catalog, &redis).unwrap();
        // Corrupt one stored blob (truncation — what the hot-path length
        // check catches on read).
        let digest = store.manifests.read().unwrap()["redis"].files[0].1;
        assert!(store.cas.corrupt_for_test(&digest));
        let req = xpl_store::RetrieveRequest::for_image(&redis, &w.catalog);
        assert!(matches!(
            store.retrieve(&w.catalog, &req),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn bitflip_caught_by_deep_audit_only() {
        let w = World::small();
        let store = MirageStore::new(w.env());
        let redis = w.build_image("redis");
        store.publish(&w.catalog, &redis).unwrap();
        let digest = store.manifests.read().unwrap()["redis"].files[0].1;
        assert!(store.cas.corrupt_bitflip_for_test(&digest));
        // Refcounts still coherent: the cheap audit passes…
        store.check_integrity().unwrap();
        // …the deep content audit does not.
        assert!(store.check_integrity_deep().is_err());
    }
}
