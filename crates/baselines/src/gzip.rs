//! The Qcow2 + Gzip baseline: each serialized image compressed whole.
//!
//! Compression is *real* (our DEFLATE over the actual image stream), so
//! Figure 3's Gzip ratios come out of the compressor, not a constant.
//!
//! New publishes store the *blocked* container (`xpl_compress::blocked`):
//! independently-deflated 64 KiB blocks plus a CRC-checked index, which
//! makes decompression parallel and lets [`ImageStore::retrieve_range`]
//! serve a disk byte range by inflating only the blocks the range's
//! clusters live in. Entries written by older versions as single-stream
//! gzip stay readable — the retrieve path dispatches on the container
//! magic ([`xpl_compress::decompress_auto`]), and legacy entries fall
//! back to full-inflate slicing for range reads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::costs;
use crate::snapshot::VmiSnapshot;
use xpl_compress::InnerCodec;
use xpl_guestfs::Vmi;
use xpl_pkg::Catalog;
use xpl_simio::SimEnv;
use xpl_store::{
    BlobCodec, DeleteReport, ImageStore, MaintainReport, NameLocks, PublishReport, RetrieveReport,
    RetrieveRequest, StoreError, TierPolicy,
};
use xpl_util::FxHashMap;

struct Entry {
    compressed: Vec<u8>,
    raw_len: u64,
    /// Inner codec of the blocked member (stale for entries rewritten by
    /// the legacy test hook; harmless — maintenance just re-encodes).
    codec: InnerCodec,
    /// Retrievals since the last maintenance sweep.
    reads: AtomicU64,
    snapshot: VmiSnapshot,
}

/// Map a store-level tier codec onto the container's inner codec; the
/// Gzip baseline always compresses, so `Raw` means the dense default.
fn inner_of(codec: BlobCodec) -> InnerCodec {
    match codec {
        BlobCodec::Lz4 => InnerCodec::Lz4,
        BlobCodec::Raw | BlobCodec::Deflate => InnerCodec::Deflate,
    }
}

/// Gzip-compressed image repository.
///
/// Concurrency: compression (the expensive leg) runs outside any lock;
/// the member index is guarded by a `RwLock` and same-name operations
/// serialize on a per-image stripe.
pub struct GzipStore {
    env: SimEnv,
    images: RwLock<FxHashMap<String, Entry>>,
    names: NameLocks,
    tier: TierPolicy,
    codec_obs: xpl_obs::ObsSlot<xpl_compress::CodecObs>,
}

impl GzipStore {
    pub fn new(env: SimEnv) -> Self {
        GzipStore {
            env,
            images: RwLock::new(FxHashMap::default()),
            names: NameLocks::new(),
            tier: TierPolicy::mixed(),
            codec_obs: xpl_obs::ObsSlot::new(),
        }
    }

    /// Builder: select the codec tier for new members and maintenance.
    /// Unlike the CAS stores this repository's `repo_bytes` is the
    /// *physical* compressed footprint, so [`ImageStore::maintain`]
    /// reports the size shift via `bytes_delta`.
    pub fn with_tier(mut self, tier: TierPolicy) -> Self {
        self.tier = tier;
        self
    }

    /// Mean compression ratio across stored images (compressed/original).
    pub fn mean_ratio(&self) -> f64 {
        let images = self.images.read().unwrap();
        if images.is_empty() {
            return 1.0;
        }
        let (c, r) = images.values().fold((0u64, 0u64), |(c, r), e| {
            (c + e.compressed.len() as u64, r + e.raw_len)
        });
        c as f64 / r as f64
    }

    #[cfg(test)]
    fn corrupt_for_test(&self, name: &str) {
        let mut images = self.images.write().unwrap();
        let entry = images.get_mut(name).unwrap();
        let mid = entry.compressed.len() / 2;
        entry.compressed[mid] ^= 0x40;
    }

    /// Test hook: rewrite an entry as the legacy single-stream gzip
    /// format older repositories hold, to pin backward compatibility.
    #[cfg(test)]
    fn downgrade_to_legacy_for_test(&self, name: &str) {
        let mut images = self.images.write().unwrap();
        let entry = images.get_mut(name).unwrap();
        let raw = xpl_compress::decompress_auto(&entry.compressed).unwrap();
        entry.compressed = xpl_compress::gzip_compress_parallel(&raw);
    }
}

impl ImageStore for GzipStore {
    fn name(&self) -> &'static str {
        "Qcow2+Gzip"
    }

    fn attach_obs(&self, reg: &std::sync::Arc<xpl_obs::Registry>) {
        let _ = self
            .codec_obs
            .set(std::sync::Arc::new(xpl_compress::CodecObs::new(reg)));
    }

    fn publish(&self, _catalog: &Catalog, vmi: &Vmi) -> Result<PublishReport, StoreError> {
        let _name_guard = self.names.lock(&vmi.name);
        let t0 = self.env.clock.now();
        let mut report = PublishReport {
            image: vmi.name.clone(),
            ..Default::default()
        };
        let raw = vmi.disk.serialize();
        let codec = inner_of(self.tier.base);
        let compressed = report.breakdown.measure(&self.env.clock, "compress", || {
            self.env.local.charge_read(raw.len() as u64);
            self.env.local.charge_fixed(costs::scaled(
                costs::gzip_compress_per_byte(),
                raw.len() as u64,
            ));
            xpl_compress::blocked_compress_inner(&raw, xpl_compress::DEFAULT_BLOCK_SIZE, codec)
        });
        report.breakdown.measure(&self.env.clock, "upload", || {
            self.env
                .local
                .charge_copy_to(&self.env.repo, compressed.len() as u64);
        });
        report.bytes_added = compressed.len() as u64;
        report.units_stored = 1;
        if let Some(old) = self.images.write().unwrap().insert(
            vmi.name.clone(),
            Entry {
                compressed,
                raw_len: raw.len() as u64,
                codec,
                reads: AtomicU64::new(0),
                snapshot: VmiSnapshot::of(vmi),
            },
        ) {
            // Re-publish replaces the previous member of the same name.
            report.bytes_freed = old.compressed.len() as u64;
        }
        report.duration = self.env.clock.since(t0);
        Ok(report)
    }

    fn retrieve(
        &self,
        _catalog: &Catalog,
        request: &RetrieveRequest,
    ) -> Result<(Vmi, RetrieveReport), StoreError> {
        let t0 = self.env.clock.now();
        let images = self.images.read().unwrap();
        let entry = images
            .get(&request.name)
            .ok_or_else(|| StoreError::NotFound(request.name.clone()))?;
        entry.reads.fetch_add(1, Ordering::Relaxed);
        let mut report = RetrieveReport {
            image: request.name.clone(),
            ..Default::default()
        };
        let raw = report
            .breakdown
            .measure(&self.env.clock, "download+gunzip", || {
                self.env.repo.charge_open(entry.compressed.len() as u64);
                self.env
                    .repo
                    .charge_copy_to(&self.env.local, entry.compressed.len() as u64);
                self.env.local.charge_fixed(costs::scaled(
                    costs::gzip_decompress_per_byte(),
                    entry.raw_len,
                ));
                xpl_compress::decompress_auto(&entry.compressed)
                    .map_err(|e| StoreError::Corrupt(format!("codec: {e}")))
            })?;
        // Verify the decompressed stream is the image we stored.
        if raw.len() as u64 != entry.raw_len {
            return Err(StoreError::Corrupt("length mismatch after gunzip".into()));
        }
        report.bytes_read = entry.compressed.len() as u64;
        let vmi = entry.snapshot.restore();
        self.env.local.charge_write(raw.len() as u64);
        report.duration = self.env.clock.since(t0);
        Ok((vmi, report))
    }

    fn retrieve_range(
        &self,
        catalog: &Catalog,
        request: &RetrieveRequest,
        start: u64,
        len: u64,
    ) -> Result<(Vec<u8>, RetrieveReport), StoreError> {
        let t0 = self.env.clock.now();
        let images = self.images.read().unwrap();
        let entry = images
            .get(&request.name)
            .ok_or_else(|| StoreError::NotFound(request.name.clone()))?;
        if !xpl_compress::is_blocked(&entry.compressed) {
            // Legacy single-stream member: no seekability. Pay the full
            // retrieval (decompress everything) and slice the disk.
            drop(images);
            let (vmi, report) = self.retrieve(catalog, request)?;
            let size = vmi.disk.virtual_size();
            let end = start.saturating_add(len).min(size);
            let start = start.min(end);
            let bytes = vmi
                .disk
                .read_at(start, (end - start) as usize)
                .map_err(|e| StoreError::Corrupt(format!("range read: {e}")))?;
            return Ok((bytes, report));
        }
        entry.reads.fetch_add(1, Ordering::Relaxed);
        let mut report = RetrieveReport {
            image: request.name.clone(),
            ..Default::default()
        };
        // The seekable path: walk the serialized qcow stream's cluster
        // mapping through a caching blocked reader, so only the
        // compressed blocks the range's clusters live in are inflated.
        let mut reader = xpl_compress::BlockedReader::new(&entry.compressed)
            .map_err(|e| StoreError::Corrupt(format!("blocked: {e}")))?;
        if let Some(o) = self.codec_obs.get() {
            reader.attach_obs(std::sync::Arc::clone(o));
        }
        let bytes = report
            .breakdown
            .measure(&self.env.clock, "range inflate", || {
                xpl_vdisk::read_serialized_range(
                    |off, l| {
                        reader
                            .read_at(off, l)
                            .map_err(|_| xpl_vdisk::QcowError::Corrupt("blocked block unreadable"))
                    },
                    start,
                    len,
                )
                .map_err(|e| StoreError::Corrupt(format!("range: {e}")))
            })?;
        // Charge only what moved: the touched blocks' compressed bytes
        // (plus the index) off the repo, decompress time for the bytes
        // those blocks inflated to.
        let touched = reader.compressed_bytes_touched();
        self.env.repo.charge_open(touched);
        self.env.repo.charge_copy_to(&self.env.local, touched);
        self.env.local.charge_fixed(costs::scaled(
            costs::gzip_decompress_per_byte(),
            reader.uncompressed_bytes_inflated(),
        ));
        report.bytes_read = touched;
        report.duration = self.env.clock.since(t0);
        Ok((bytes, report))
    }

    fn delete(&self, name: &str) -> Result<DeleteReport, StoreError> {
        let _name_guard = self.names.lock(name);
        let t0 = self.env.clock.now();
        let entry = self
            .images
            .write()
            .unwrap()
            .remove(name)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
        self.env.repo.charge_db_write(1);
        Ok(DeleteReport {
            image: name.to_string(),
            duration: self.env.clock.since(t0),
            bytes_freed: entry.compressed.len() as u64,
            units_removed: 1,
        })
    }

    fn repo_bytes(&self) -> u64 {
        self.images
            .read()
            .unwrap()
            .values()
            .map(|e| e.compressed.len() as u64)
            .sum()
    }

    fn maintain(&self) -> MaintainReport {
        let t0 = self.env.clock.now();
        let mut report = MaintainReport::default();
        let mut images = self.images.write().unwrap();
        for entry in images.values_mut() {
            report.scanned += 1;
            let reads = entry.reads.load(Ordering::Relaxed);
            let target = match self.tier.hot {
                Some(hot) if reads >= self.tier.hot_reads => inner_of(hot),
                _ => inner_of(self.tier.base),
            };
            if target != entry.codec {
                // Re-encode the member; the uncompressed stream is pinned
                // byte-identical (length-checked here, content via the
                // deep audit's inflate sweep).
                if let Ok(raw) = xpl_compress::decompress_auto(&entry.compressed) {
                    if raw.len() as u64 == entry.raw_len {
                        self.env.local.charge_fixed(costs::scaled(
                            costs::gzip_decompress_per_byte(),
                            entry.raw_len,
                        ));
                        self.env.local.charge_fixed(costs::scaled(
                            costs::gzip_compress_per_byte(),
                            entry.raw_len,
                        ));
                        self.env.repo.charge_db_write(1);
                        let recoded = xpl_compress::blocked_compress_inner(
                            &raw,
                            xpl_compress::DEFAULT_BLOCK_SIZE,
                            target,
                        );
                        report.bytes_delta += recoded.len() as i64 - entry.compressed.len() as i64;
                        if target == inner_of(self.tier.base) {
                            report.demoted += 1;
                        } else {
                            report.promoted += 1;
                        }
                        entry.compressed = recoded;
                        entry.codec = target;
                    }
                }
            }
            entry.reads.store(reads / 2, Ordering::Relaxed);
        }
        report.duration = self.env.clock.since(t0);
        report
    }

    fn check_integrity(&self) -> Result<(), String> {
        for (name, e) in self.images.read().unwrap().iter() {
            if e.raw_len > 0 && e.compressed.is_empty() {
                return Err(format!("{name}: empty member for {} raw bytes", e.raw_len));
            }
        }
        Ok(())
    }

    fn check_integrity_deep(&self) -> Result<(), String> {
        self.check_integrity()?;
        // Full sweep: every member must inflate (per-block CRCs for
        // blocked containers, trailer CRC for legacy gzip) to exactly
        // the byte count recorded at publish time.
        for (name, e) in self.images.read().unwrap().iter() {
            let raw = xpl_compress::decompress_auto(&e.compressed)
                .map_err(|err| format!("{name}: {err}"))?;
            if raw.len() as u64 != e.raw_len {
                return Err(format!(
                    "{name}: inflated to {} bytes, recorded {}",
                    raw.len(),
                    e.raw_len
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_workloads::World;

    #[test]
    fn compression_shrinks_repo_vs_qcow() {
        let w = World::small();
        let gz = GzipStore::new(w.env());
        let qc = crate::QcowStore::new(w.env());
        for name in ["mini", "redis", "lamp"] {
            let vmi = w.build_image(name);
            gz.publish(&w.catalog, &vmi).unwrap();
            qc.publish(&w.catalog, &vmi).unwrap();
        }
        assert!(gz.repo_bytes() < qc.repo_bytes(), "gzip must beat raw");
        let ratio = gz.mean_ratio();
        assert!((0.1..0.9).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn roundtrip_verifies_payload() {
        let w = World::small();
        let gz = GzipStore::new(w.env());
        let redis = w.build_image("redis");
        gz.publish(&w.catalog, &redis).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&redis, &w.catalog);
        let (got, _) = gz.retrieve(&w.catalog, &req).unwrap();
        assert_eq!(
            got.installed_package_set(&w.catalog),
            redis.installed_package_set(&w.catalog)
        );
    }

    #[test]
    fn range_read_matches_full_disk_slice_and_reads_less() {
        let w = World::small();
        let gz = GzipStore::new(w.env());
        // Grow the image well past one 64 KiB compression block so a
        // range can genuinely touch a subset of blocks.
        let mut redis = w.build_image("redis");
        for i in 0..200u64 {
            redis.fs.add_file(xpl_guestfs::FileRecord {
                path: xpl_util::IStr::new(&format!("/home/u/blob-{i:03}")),
                size: 3000,
                seed: 0xD00D + i,
                owner: xpl_guestfs::FileOwner::UserData,
            });
        }
        redis.rebuild_disk();
        gz.publish(&w.catalog, &redis).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&redis, &w.catalog);
        let (full, full_report) = gz.retrieve(&w.catalog, &req).unwrap();
        let size = full.disk.virtual_size();
        for (start, len) in [
            (0u64, 600u64),
            (size / 2, 4096),
            (size - 100, 500), // clamps
            (size + 5, 10),    // past the end
        ] {
            let (bytes, report) = gz.retrieve_range(&w.catalog, &req, start, len).unwrap();
            let end = start.saturating_add(len).min(size);
            let expect = if start >= end {
                Vec::new()
            } else {
                full.disk
                    .read_at(start.min(end), (end - start.min(end)) as usize)
                    .unwrap()
            };
            assert_eq!(bytes, expect, "range [{start}, +{len})");
            if !bytes.is_empty() {
                assert!(
                    report.bytes_read < full_report.bytes_read,
                    "range read {} vs full {}",
                    report.bytes_read,
                    full_report.bytes_read
                );
            }
        }
    }

    #[test]
    fn legacy_gzip_entries_stay_readable() {
        let w = World::small();
        let gz = GzipStore::new(w.env());
        let redis = w.build_image("redis");
        gz.publish(&w.catalog, &redis).unwrap();
        gz.downgrade_to_legacy_for_test("redis");
        gz.check_integrity_deep().unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&redis, &w.catalog);
        let (got, _) = gz.retrieve(&w.catalog, &req).unwrap();
        assert_eq!(
            got.installed_package_set(&w.catalog),
            redis.installed_package_set(&w.catalog)
        );
        // Range reads on legacy entries fall back to full-inflate slicing.
        let (bytes, _) = gz.retrieve_range(&w.catalog, &req, 0, 600).unwrap();
        assert_eq!(bytes, got.disk.read_at(0, 600).unwrap());
    }

    #[test]
    fn maintain_promotes_hot_members_and_reports_the_size_shift() {
        let w = World::small();
        let gz = GzipStore::new(w.env()); // default mixed tier
        let hot = w.build_image("redis");
        let cold = w.build_image("mini");
        gz.publish(&w.catalog, &hot).unwrap();
        gz.publish(&w.catalog, &cold).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&hot, &w.catalog);
        gz.retrieve(&w.catalog, &req).unwrap();
        gz.retrieve(&w.catalog, &req).unwrap();

        let before = gz.repo_bytes();
        let report = gz.maintain();
        assert_eq!((report.scanned, report.promoted, report.demoted), (2, 1, 0));
        assert_eq!(
            gz.repo_bytes() as i128,
            before as i128 + report.bytes_delta as i128,
            "repo_bytes must shift by exactly bytes_delta"
        );
        // The hot member is now on the fast codec; content is pinned.
        gz.check_integrity_deep().unwrap();
        let (got, _) = gz.retrieve(&w.catalog, &req).unwrap();
        assert_eq!(
            got.installed_package_set(&w.catalog),
            hot.installed_package_set(&w.catalog)
        );
        let (bytes, _) = gz.retrieve_range(&w.catalog, &req, 100, 600).unwrap();
        assert_eq!(bytes, got.disk.read_at(100, 600).unwrap());
        // A quiet interval demotes it back (2 reads decayed to 1, then
        // the post-sweep read above brings it to 2 again… so drain it).
        gz.maintain();
        let sweep = gz.maintain();
        assert_eq!(sweep.promoted, 0);
        assert_eq!(sweep.demoted, 1);
        // Deterministic re-encode: back to the exact dense footprint.
        assert_eq!(gz.repo_bytes(), before);
    }

    #[test]
    fn deep_check_flags_corrupt_member() {
        let w = World::small();
        let gz = GzipStore::new(w.env());
        gz.publish(&w.catalog, &w.build_image("mini")).unwrap();
        gz.check_integrity_deep().unwrap();
        gz.corrupt_for_test("mini");
        assert!(gz.check_integrity_deep().is_err());
    }

    #[test]
    fn corruption_detected() {
        let w = World::small();
        let gz = GzipStore::new(w.env());
        let redis = w.build_image("redis");
        gz.publish(&w.catalog, &redis).unwrap();
        // Corrupt the stored member.
        gz.corrupt_for_test("redis");
        let req = xpl_store::RetrieveRequest::for_image(&redis, &w.catalog);
        assert!(matches!(
            gz.retrieve(&w.catalog, &req),
            Err(StoreError::Corrupt(_))
        ));
    }
}
