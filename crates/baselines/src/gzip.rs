//! The Qcow2 + Gzip baseline: each serialized image compressed whole.
//!
//! Compression is *real* (our DEFLATE over the actual image stream), so
//! Figure 3's Gzip ratios come out of the compressor, not a constant.

use std::sync::RwLock;

use crate::costs;
use crate::snapshot::VmiSnapshot;
use xpl_guestfs::Vmi;
use xpl_pkg::Catalog;
use xpl_simio::SimEnv;
use xpl_store::{
    DeleteReport, ImageStore, NameLocks, PublishReport, RetrieveReport, RetrieveRequest, StoreError,
};
use xpl_util::FxHashMap;

struct Entry {
    compressed: Vec<u8>,
    raw_len: u64,
    snapshot: VmiSnapshot,
}

/// Gzip-compressed image repository.
///
/// Concurrency: compression (the expensive leg) runs outside any lock;
/// the member index is guarded by a `RwLock` and same-name operations
/// serialize on a per-image stripe.
pub struct GzipStore {
    env: SimEnv,
    images: RwLock<FxHashMap<String, Entry>>,
    names: NameLocks,
}

impl GzipStore {
    pub fn new(env: SimEnv) -> Self {
        GzipStore {
            env,
            images: RwLock::new(FxHashMap::default()),
            names: NameLocks::new(),
        }
    }

    /// Mean compression ratio across stored images (compressed/original).
    pub fn mean_ratio(&self) -> f64 {
        let images = self.images.read().unwrap();
        if images.is_empty() {
            return 1.0;
        }
        let (c, r) = images.values().fold((0u64, 0u64), |(c, r), e| {
            (c + e.compressed.len() as u64, r + e.raw_len)
        });
        c as f64 / r as f64
    }

    #[cfg(test)]
    fn corrupt_for_test(&self, name: &str) {
        let mut images = self.images.write().unwrap();
        let entry = images.get_mut(name).unwrap();
        let mid = entry.compressed.len() / 2;
        entry.compressed[mid] ^= 0x40;
    }
}

impl ImageStore for GzipStore {
    fn name(&self) -> &'static str {
        "Qcow2+Gzip"
    }

    fn publish(&self, _catalog: &Catalog, vmi: &Vmi) -> Result<PublishReport, StoreError> {
        let _name_guard = self.names.lock(&vmi.name);
        let t0 = self.env.clock.now();
        let mut report = PublishReport {
            image: vmi.name.clone(),
            ..Default::default()
        };
        let raw = vmi.disk.serialize();
        let compressed = report.breakdown.measure(&self.env.clock, "compress", || {
            self.env.local.charge_read(raw.len() as u64);
            self.env.local.charge_fixed(costs::scaled(
                costs::gzip_compress_per_byte(),
                raw.len() as u64,
            ));
            xpl_compress::gzip_compress_parallel(&raw)
        });
        report.breakdown.measure(&self.env.clock, "upload", || {
            self.env
                .local
                .charge_copy_to(&self.env.repo, compressed.len() as u64);
        });
        report.bytes_added = compressed.len() as u64;
        report.units_stored = 1;
        if let Some(old) = self.images.write().unwrap().insert(
            vmi.name.clone(),
            Entry {
                compressed,
                raw_len: raw.len() as u64,
                snapshot: VmiSnapshot::of(vmi),
            },
        ) {
            // Re-publish replaces the previous member of the same name.
            report.bytes_freed = old.compressed.len() as u64;
        }
        report.duration = self.env.clock.since(t0);
        Ok(report)
    }

    fn retrieve(
        &self,
        _catalog: &Catalog,
        request: &RetrieveRequest,
    ) -> Result<(Vmi, RetrieveReport), StoreError> {
        let t0 = self.env.clock.now();
        let images = self.images.read().unwrap();
        let entry = images
            .get(&request.name)
            .ok_or_else(|| StoreError::NotFound(request.name.clone()))?;
        let mut report = RetrieveReport {
            image: request.name.clone(),
            ..Default::default()
        };
        let raw = report
            .breakdown
            .measure(&self.env.clock, "download+gunzip", || {
                self.env.repo.charge_open(entry.compressed.len() as u64);
                self.env
                    .repo
                    .charge_copy_to(&self.env.local, entry.compressed.len() as u64);
                self.env.local.charge_fixed(costs::scaled(
                    costs::gzip_decompress_per_byte(),
                    entry.raw_len,
                ));
                xpl_compress::gzip_decompress(&entry.compressed)
                    .map_err(|e| StoreError::Corrupt(format!("gzip: {e:?}")))
            })?;
        // Verify the decompressed stream is the image we stored.
        if raw.len() as u64 != entry.raw_len {
            return Err(StoreError::Corrupt("length mismatch after gunzip".into()));
        }
        report.bytes_read = entry.compressed.len() as u64;
        let vmi = entry.snapshot.restore();
        self.env.local.charge_write(raw.len() as u64);
        report.duration = self.env.clock.since(t0);
        Ok((vmi, report))
    }

    fn delete(&self, name: &str) -> Result<DeleteReport, StoreError> {
        let _name_guard = self.names.lock(name);
        let t0 = self.env.clock.now();
        let entry = self
            .images
            .write()
            .unwrap()
            .remove(name)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
        self.env.repo.charge_db_write(1);
        Ok(DeleteReport {
            image: name.to_string(),
            duration: self.env.clock.since(t0),
            bytes_freed: entry.compressed.len() as u64,
            units_removed: 1,
        })
    }

    fn repo_bytes(&self) -> u64 {
        self.images
            .read()
            .unwrap()
            .values()
            .map(|e| e.compressed.len() as u64)
            .sum()
    }

    fn check_integrity(&self) -> Result<(), String> {
        for (name, e) in self.images.read().unwrap().iter() {
            if e.raw_len > 0 && e.compressed.is_empty() {
                return Err(format!("{name}: empty member for {} raw bytes", e.raw_len));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_workloads::World;

    #[test]
    fn compression_shrinks_repo_vs_qcow() {
        let w = World::small();
        let gz = GzipStore::new(w.env());
        let qc = crate::QcowStore::new(w.env());
        for name in ["mini", "redis", "lamp"] {
            let vmi = w.build_image(name);
            gz.publish(&w.catalog, &vmi).unwrap();
            qc.publish(&w.catalog, &vmi).unwrap();
        }
        assert!(gz.repo_bytes() < qc.repo_bytes(), "gzip must beat raw");
        let ratio = gz.mean_ratio();
        assert!((0.1..0.9).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn roundtrip_verifies_payload() {
        let w = World::small();
        let gz = GzipStore::new(w.env());
        let redis = w.build_image("redis");
        gz.publish(&w.catalog, &redis).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&redis, &w.catalog);
        let (got, _) = gz.retrieve(&w.catalog, &req).unwrap();
        assert_eq!(
            got.installed_package_set(&w.catalog),
            redis.installed_package_set(&w.catalog)
        );
    }

    #[test]
    fn corruption_detected() {
        let w = World::small();
        let gz = GzipStore::new(w.env());
        let redis = w.build_image("redis");
        gz.publish(&w.catalog, &redis).unwrap();
        // Corrupt the stored member.
        gz.corrupt_for_test("redis");
        let req = xpl_store::RetrieveRequest::for_image(&redis, &w.catalog);
        assert!(matches!(
            gz.retrieve(&w.catalog, &req),
            Err(StoreError::Corrupt(_))
        ));
    }
}
