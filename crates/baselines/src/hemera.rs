//! The Hemera baseline: declarative, data-centric VMI management.
//!
//! Hemera stores the image as structured data like Mirage, but keeps
//! *small* files as database rows and only large files in the file store
//! ("stores large files in the repository and small sized files in the
//! database, which optimizes VMI retrieval as the database handles small
//! files much faster than the file system").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use crate::costs;
use crate::snapshot::VmiSnapshot;
use rayon::prelude::*;
use xpl_guestfs::{FileRecord, Vmi};
use xpl_metadb::{ColumnDef, Database, RowId, Schema, Value};
use xpl_pkg::Catalog;
use xpl_simio::{SimDuration, SimEnv};
use xpl_store::{
    ContentStore, DeleteReport, ImageStore, NameLocks, PublishReport, RetrieveReport,
    RetrieveRequest, StoreError,
};
use xpl_util::{Digest, FxHashMap};

/// Where one file's content lives.
enum Placement {
    /// Small file: a row in `small_files`, resolved through `db_index`.
    Db(Digest),
    Fs(Digest),
}

struct Manifest {
    files: Vec<(FileRecord, Placement)>,
    snapshot: VmiSnapshot,
}

/// One deduplicated small-file row, refcounted like a CAS blob.
struct DbEntry {
    row: RowId,
    refs: u32,
    len: u64,
}

/// Hybrid DB/file-store image repository.
///
/// Concurrency: large files go through the digest-sharded content store;
/// the small-file row index and the manifest map are `RwLock`s, the
/// metadata database is a `Mutex` (its rows are touched only on the
/// small-file slow path). Lock order: manifests → db_index → db; the
/// per-image stripe is always outermost.
pub struct HemeraStore {
    env: SimEnv,
    cas: ContentStore,
    db: Mutex<Database>,
    /// digest → refcounted row for already-stored small content (dedup).
    db_index: RwLock<FxHashMap<Digest, DbEntry>>,
    /// Unique small-file content bytes stored in the DB (accounted
    /// separately from `db.payload_bytes()` so row-key overhead can be
    /// charged at nominal, not real, scale).
    db_content_bytes: AtomicU64,
    manifests: RwLock<FxHashMap<String, Manifest>>,
    names: NameLocks,
}

impl HemeraStore {
    pub fn new(env: SimEnv) -> Self {
        let cas = ContentStore::new(std::sync::Arc::clone(&env.repo));
        let mut db = Database::on_device(std::sync::Arc::clone(&env.repo));
        db.create_table(Schema::new(
            "small_files",
            vec![ColumnDef::indexed("digest"), ColumnDef::plain("content")],
        ))
        .expect("fresh db");
        HemeraStore {
            env,
            cas,
            db: Mutex::new(db),
            db_index: RwLock::new(FxHashMap::default()),
            db_content_bytes: AtomicU64::new(0),
            manifests: RwLock::new(FxHashMap::default()),
            names: NameLocks::new(),
        }
    }

    /// Builder: select the codec tier of the large-file CAS (small
    /// files live as DB rows and are not tiered). `repo_bytes` stays
    /// logical and codec-invariant.
    pub fn with_tier(mut self, tier: xpl_store::TierPolicy) -> Self {
        self.cas = self.cas.with_tier(tier);
        self
    }

    fn threshold_real() -> u64 {
        costs::HEMERA_DB_THRESHOLD_NOMINAL / xpl_util::SCALE_FACTOR
    }

    pub fn db_file_count(&self) -> usize {
        self.db_index.read().unwrap().len()
    }

    pub fn fs_file_count(&self) -> usize {
        self.cas.blob_count()
    }

    fn db_content_bytes(&self) -> u64 {
        self.db_content_bytes.load(Ordering::Relaxed)
    }

    /// Manifest + row-key metadata overhead.
    fn metadata_overhead(&self) -> u64 {
        let entries: u64 = self
            .manifests
            .read()
            .unwrap()
            .values()
            .map(|m| m.files.len() as u64)
            .sum();
        let rows = self.db_index.read().unwrap().len() as u64;
        ((entries + rows) * 48).div_ceil(xpl_util::SCALE_FACTOR)
    }

    /// Drop one manifest's references (CAS blobs and DB rows); returns
    /// (freed content bytes, freed units).
    fn release_manifest(&self, manifest: &Manifest) -> Result<(u64, usize), StoreError> {
        let mut freed = 0u64;
        let mut units = 0usize;
        for (record, placement) in &manifest.files {
            match placement {
                Placement::Fs(digest) => {
                    let f = self
                        .cas
                        .release(digest)
                        .map_err(|_| StoreError::Corrupt(format!("release {}", record.path)))?;
                    if f > 0 {
                        freed += f;
                        units += 1;
                    }
                }
                Placement::Db(digest) => {
                    let mut db_index = self.db_index.write().unwrap();
                    let entry = db_index.get_mut(digest).ok_or_else(|| {
                        StoreError::Corrupt(format!("db index missing for {}", record.path))
                    })?;
                    entry.refs -= 1;
                    if entry.refs == 0 {
                        let (row, len) = (entry.row, entry.len);
                        db_index.remove(digest);
                        self.db
                            .lock()
                            .unwrap()
                            .delete("small_files", row)
                            .map_err(|e| StoreError::Corrupt(e.to_string()))?;
                        self.db_content_bytes.fetch_sub(len, Ordering::Relaxed);
                        freed += len;
                        units += 1;
                    }
                }
            }
        }
        Ok((freed, units))
    }
}

impl ImageStore for HemeraStore {
    fn name(&self) -> &'static str {
        "Hemera"
    }

    fn attach_obs(&self, reg: &std::sync::Arc<xpl_obs::Registry>) {
        self.cas.attach_obs(reg);
    }

    fn publish(&self, _catalog: &Catalog, vmi: &Vmi) -> Result<PublishReport, StoreError> {
        let _name_guard = self.names.lock(&vmi.name);
        let t0 = self.env.clock.now();
        let overhead_before = self.metadata_overhead();
        let mut report = PublishReport {
            image: vmi.name.clone(),
            ..Default::default()
        };

        let hashed: Vec<(FileRecord, Digest, Vec<u8>)> =
            report.breakdown.measure(&self.env.clock, "scan+hash", || {
                self.env.local.charge_fixed(costs::mount_fixed());
                self.env
                    .local
                    .charge_fixed(costs::xfer(vmi.mounted_bytes(), costs::SCAN_BPS));
                let records: Vec<FileRecord> = vmi.fs.iter().collect();
                records
                    .into_par_iter()
                    .map(|r| {
                        let content = r.content();
                        let digest = xpl_util::Sha256::digest(&content);
                        (r, digest, content)
                    })
                    .collect()
            });

        let threshold = Self::threshold_real();
        // Gross content added by this publish, tracked op-locally (this
        // publish's new blobs and rows) so the ledger check downstream is
        // independent of global counters.
        let mut added_content = 0u64;
        let mut new_units = 0usize;
        let mut files = Vec::with_capacity(hashed.len());
        report.breakdown.measure(
            &self.env.clock,
            "match+store",
            || -> Result<(), StoreError> {
                self.env
                    .local
                    .charge_fixed(SimDuration(costs::file_match().0 * hashed.len() as u64));
                for (record, digest, content) in hashed {
                    let placement = if (record.size as u64) <= threshold {
                        let mut db_index = self.db_index.write().unwrap();
                        match db_index.get_mut(&digest) {
                            Some(entry) => {
                                entry.refs += 1;
                                Placement::Db(digest)
                            }
                            None => {
                                let len = content.len() as u64;
                                let row = self
                                    .db
                                    .lock()
                                    .unwrap()
                                    .insert(
                                        "small_files",
                                        vec![
                                            Value::Int(digest.prefix64() as i64),
                                            Value::from(content),
                                        ],
                                    )
                                    .map_err(|e| StoreError::Corrupt(e.to_string()))?;
                                db_index.insert(digest, DbEntry { row, refs: 1, len });
                                self.db_content_bytes.fetch_add(len, Ordering::Relaxed);
                                added_content += len;
                                new_units += 1;
                                Placement::Db(digest)
                            }
                        }
                    } else {
                        if self.cas.put_with_digest(digest, &content) {
                            added_content += content.len() as u64;
                            new_units += 1;
                        }
                        Placement::Fs(digest)
                    };
                    files.push((record, placement));
                }
                Ok(())
            },
        )?;

        report.units_stored = new_units;
        let old = self.manifests.write().unwrap().insert(
            vmi.name.clone(),
            Manifest {
                files,
                snapshot: VmiSnapshot::of(vmi),
            },
        );
        // Re-publish: release the replaced generation after the new one
        // holds its references, so shared content survives.
        let freed_content = match &old {
            Some(old) => self.release_manifest(old)?.0,
            None => 0,
        };
        let overhead_after = self.metadata_overhead();
        report.bytes_added = added_content + overhead_after.saturating_sub(overhead_before);
        report.bytes_freed = freed_content + overhead_before.saturating_sub(overhead_after);
        report.duration = self.env.clock.since(t0);
        Ok(report)
    }

    fn retrieve(
        &self,
        _catalog: &Catalog,
        request: &RetrieveRequest,
    ) -> Result<(Vmi, RetrieveReport), StoreError> {
        let t0 = self.env.clock.now();
        let manifests = self.manifests.read().unwrap();
        let manifest = manifests
            .get(&request.name)
            .ok_or_else(|| StoreError::NotFound(request.name.clone()))?;
        let mut report = RetrieveReport {
            image: request.name.clone(),
            ..Default::default()
        };
        let reads_before = self.env.repo.stats().bytes_read;

        report.breakdown.measure(
            &self.env.clock,
            "read files",
            || -> Result<(), StoreError> {
                for (record, placement) in &manifest.files {
                    match placement {
                        Placement::Db(digest) => {
                            // Row fetch: base row cost (charged by db.get) +
                            // Hemera's page-walk surcharge.
                            self.env.repo.charge_fixed(costs::hemera_row_fetch_extra());
                            let row = {
                                let db_index = self.db_index.read().unwrap();
                                db_index
                                    .get(digest)
                                    .ok_or_else(|| {
                                        StoreError::Corrupt(format!("db index for {}", record.path))
                                    })?
                                    .row
                            };
                            let got = self
                                .db
                                .lock()
                                .unwrap()
                                .get("small_files", row)
                                .map_err(|e| StoreError::Corrupt(e.to_string()))?;
                            if got.is_none() {
                                return Err(StoreError::Corrupt(format!(
                                    "row for {}",
                                    record.path
                                )));
                            }
                        }
                        Placement::Fs(digest) => {
                            self.cas.get(digest).map_err(|_| {
                                StoreError::Corrupt(format!("file {}", record.path))
                            })?;
                        }
                    }
                }
                Ok(())
            },
        )?;

        let vmi = report.breakdown.measure(&self.env.clock, "assemble", || {
            let vmi = manifest.snapshot.restore();
            self.env.local.charge_write(vmi.disk_bytes());
            vmi
        });
        report.bytes_read = self.env.repo.stats().bytes_read - reads_before;
        report.duration = self.env.clock.since(t0);
        Ok((vmi, report))
    }

    fn delete(&self, name: &str) -> Result<DeleteReport, StoreError> {
        let _name_guard = self.names.lock(name);
        let t0 = self.env.clock.now();
        let before = self.repo_bytes();
        let manifest = self
            .manifests
            .write()
            .unwrap()
            .remove(name)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
        let (_, units) = self.release_manifest(&manifest)?;
        self.env.repo.charge_db_write(1);
        Ok(DeleteReport {
            image: name.to_string(),
            duration: self.env.clock.since(t0),
            bytes_freed: before.saturating_sub(self.repo_bytes()),
            units_removed: units,
        })
    }

    fn repo_bytes(&self) -> u64 {
        // Manifest + row-key overhead: ≈48 nominal bytes per entry
        // (scaled); DB content counted at face value.
        self.cas.unique_bytes() + self.db_content_bytes() + self.metadata_overhead()
    }

    fn check_integrity(&self) -> Result<(), String> {
        // Expected references per digest, split by placement.
        let mut fs_expected: FxHashMap<Digest, u32> = FxHashMap::default();
        let mut db_expected: FxHashMap<Digest, u32> = FxHashMap::default();
        for m in self.manifests.read().unwrap().values() {
            for (_, placement) in &m.files {
                match placement {
                    Placement::Fs(d) => *fs_expected.entry(*d).or_insert(0) += 1,
                    Placement::Db(d) => *db_expected.entry(*d).or_insert(0) += 1,
                }
            }
        }
        self.cas
            .audit_refs(&fs_expected)
            .map_err(|e| format!("Hemera CAS: {e}"))?;
        let db_index = self.db_index.read().unwrap();
        if db_index.len() != db_expected.len() {
            return Err(format!(
                "Hemera DB index: {} rows, {} referenced digests",
                db_index.len(),
                db_expected.len()
            ));
        }
        let mut content = 0u64;
        let db = self.db.lock().unwrap();
        for (digest, entry) in db_index.iter() {
            let want = *db_expected
                .get(digest)
                .ok_or_else(|| format!("Hemera DB: orphan row for {digest}"))?;
            if entry.refs != want {
                return Err(format!(
                    "Hemera DB row {digest}: {} refs, expected {want}",
                    entry.refs
                ));
            }
            let live = db
                .table("small_files")
                .map_err(|e| e.to_string())?
                .get(entry.row)
                .is_some();
            if !live {
                return Err(format!("Hemera DB row {digest}: row {} gone", entry.row.0));
            }
            content += entry.len;
        }
        if content != self.db_content_bytes() {
            return Err(format!(
                "Hemera DB content: {content} summed vs {} accounted",
                self.db_content_bytes()
            ));
        }
        Ok(())
    }

    fn check_integrity_deep(&self) -> Result<(), String> {
        self.check_integrity()?;
        self.cas
            .check_integrity(true)
            .map_err(|e| format!("Hemera CAS content: {e}"))
    }

    fn maintain(&self) -> xpl_store::MaintainReport {
        let t0 = self.env.clock.now();
        let sweep = self.cas.maintain();
        xpl_store::MaintainReport {
            duration: self.env.clock.since(t0),
            scanned: sweep.scanned,
            promoted: sweep.promoted,
            demoted: sweep.demoted,
            bytes_delta: 0,
        }
    }

    fn cas_fingerprints(&self) -> Vec<(String, String)> {
        vec![("files".to_string(), self.cas.state_fingerprint())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_workloads::World;

    #[test]
    fn splits_files_between_db_and_fs() {
        let w = World::small();
        let store = HemeraStore::new(w.env());
        store.publish(&w.catalog, &w.build_image("lamp")).unwrap();
        assert!(store.db_file_count() > 0, "small files in DB");
        assert!(store.fs_file_count() > 0, "large files in FS");
    }

    #[test]
    fn retrieval_faster_than_mirage() {
        let w = World::small();
        let hemera = HemeraStore::new(w.env());
        let mirage = crate::MirageStore::new(w.env());
        let redis = w.build_image("redis");
        hemera.publish(&w.catalog, &redis).unwrap();
        mirage.publish(&w.catalog, &redis).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&redis, &w.catalog);
        let (_, rh) = hemera.retrieve(&w.catalog, &req).unwrap();
        let (_, rm) = mirage.retrieve(&w.catalog, &req).unwrap();
        assert!(
            rh.duration < rm.duration,
            "Hemera {} should beat Mirage {}",
            rh.duration,
            rm.duration
        );
    }

    #[test]
    fn storage_equals_mirage_class() {
        // Paper: Mirage and Hemera repository sizes are nearly identical.
        let w = World::small();
        let hemera = HemeraStore::new(w.env());
        let mirage = crate::MirageStore::new(w.env());
        for name in ["mini", "redis", "lamp"] {
            let vmi = w.build_image(name);
            hemera.publish(&w.catalog, &vmi).unwrap();
            mirage.publish(&w.catalog, &vmi).unwrap();
        }
        let h = hemera.repo_bytes() as f64;
        let m = mirage.repo_bytes() as f64;
        assert!((h / m - 1.0).abs() < 0.15, "hemera {h} vs mirage {m}");
    }

    #[test]
    fn roundtrip() {
        let w = World::small();
        let store = HemeraStore::new(w.env());
        let lamp = w.build_image("lamp");
        store.publish(&w.catalog, &lamp).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&lamp, &w.catalog);
        let (got, _) = store.retrieve(&w.catalog, &req).unwrap();
        assert_eq!(
            got.installed_package_set(&w.catalog),
            lamp.installed_package_set(&w.catalog)
        );
    }
}
