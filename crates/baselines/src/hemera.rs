//! The Hemera baseline: declarative, data-centric VMI management.
//!
//! Hemera stores the image as structured data like Mirage, but keeps
//! *small* files as database rows and only large files in the file store
//! ("stores large files in the repository and small sized files in the
//! database, which optimizes VMI retrieval as the database handles small
//! files much faster than the file system").

use crate::costs;
use crate::snapshot::VmiSnapshot;
use rayon::prelude::*;
use xpl_guestfs::{FileRecord, Vmi};
use xpl_metadb::{ColumnDef, Database, RowId, Schema, Value};
use xpl_pkg::Catalog;
use xpl_simio::{SimDuration, SimEnv};
use xpl_store::{
    ContentStore, ImageStore, PublishReport, RetrieveReport, RetrieveRequest, StoreError,
};
use xpl_util::{Digest, FxHashMap};

/// Where one file's content lives.
enum Placement {
    Db(RowId),
    Fs(Digest),
}

struct Manifest {
    files: Vec<(FileRecord, Placement)>,
    snapshot: VmiSnapshot,
}

/// Hybrid DB/file-store image repository.
pub struct HemeraStore {
    env: SimEnv,
    cas: ContentStore,
    db: Database,
    /// digest → row id for already-stored small content (dedup).
    db_index: FxHashMap<Digest, RowId>,
    /// Unique small-file content bytes stored in the DB (accounted
    /// separately from `db.payload_bytes()` so row-key overhead can be
    /// charged at nominal, not real, scale).
    db_content_bytes: u64,
    manifests: FxHashMap<String, Manifest>,
}

impl HemeraStore {
    pub fn new(env: SimEnv) -> Self {
        let cas = ContentStore::new(std::sync::Arc::clone(&env.repo));
        let mut db = Database::on_device(std::sync::Arc::clone(&env.repo));
        db.create_table(Schema::new(
            "small_files",
            vec![ColumnDef::indexed("digest"), ColumnDef::plain("content")],
        ))
        .expect("fresh db");
        HemeraStore {
            env,
            cas,
            db,
            db_index: FxHashMap::default(),
            db_content_bytes: 0,
            manifests: FxHashMap::default(),
        }
    }

    fn threshold_real() -> u64 {
        costs::HEMERA_DB_THRESHOLD_NOMINAL / xpl_util::SCALE_FACTOR
    }

    pub fn db_file_count(&self) -> usize {
        self.db_index.len()
    }

    pub fn fs_file_count(&self) -> usize {
        self.cas.blob_count()
    }
}

impl ImageStore for HemeraStore {
    fn name(&self) -> &'static str {
        "Hemera"
    }

    fn publish(&mut self, _catalog: &Catalog, vmi: &Vmi) -> Result<PublishReport, StoreError> {
        let t0 = self.env.clock.now();
        let bytes_before = self.repo_bytes();
        let mut report = PublishReport {
            image: vmi.name.clone(),
            ..Default::default()
        };

        let hashed: Vec<(FileRecord, Digest, Vec<u8>)> =
            report.breakdown.measure(&self.env.clock, "scan+hash", || {
                self.env.local.charge_fixed(costs::mount_fixed());
                self.env
                    .local
                    .charge_fixed(costs::xfer(vmi.mounted_bytes(), costs::SCAN_BPS));
                let records: Vec<FileRecord> = vmi.fs.iter().collect();
                records
                    .into_par_iter()
                    .map(|r| {
                        let content = r.content();
                        let digest = xpl_util::Sha256::digest(&content);
                        (r, digest, content)
                    })
                    .collect()
            });

        let threshold = Self::threshold_real();
        let mut new_units = 0usize;
        let mut files = Vec::with_capacity(hashed.len());
        report.breakdown.measure(
            &self.env.clock,
            "match+store",
            || -> Result<(), StoreError> {
                self.env
                    .local
                    .charge_fixed(SimDuration(costs::file_match().0 * hashed.len() as u64));
                for (record, digest, content) in hashed {
                    let placement = if (record.size as u64) <= threshold {
                        match self.db_index.get(&digest) {
                            Some(&row) => Placement::Db(row),
                            None => {
                                let len = content.len() as u64;
                                let row = self
                                    .db
                                    .insert(
                                        "small_files",
                                        vec![
                                            Value::Int(digest.prefix64() as i64),
                                            Value::from(content),
                                        ],
                                    )
                                    .map_err(|e| StoreError::Corrupt(e.to_string()))?;
                                self.db_index.insert(digest, row);
                                self.db_content_bytes += len;
                                new_units += 1;
                                Placement::Db(row)
                            }
                        }
                    } else {
                        if self.cas.put_with_digest(digest, &content) {
                            new_units += 1;
                        }
                        Placement::Fs(digest)
                    };
                    files.push((record, placement));
                }
                Ok(())
            },
        )?;

        report.units_stored = new_units;
        self.manifests.insert(
            vmi.name.clone(),
            Manifest {
                files,
                snapshot: VmiSnapshot::of(vmi),
            },
        );
        report.bytes_added = self.repo_bytes().saturating_sub(bytes_before);
        report.duration = self.env.clock.since(t0);
        Ok(report)
    }

    fn retrieve(
        &mut self,
        _catalog: &Catalog,
        request: &RetrieveRequest,
    ) -> Result<(Vmi, RetrieveReport), StoreError> {
        let t0 = self.env.clock.now();
        let manifest = self
            .manifests
            .get(&request.name)
            .ok_or_else(|| StoreError::NotFound(request.name.clone()))?;
        let mut report = RetrieveReport {
            image: request.name.clone(),
            ..Default::default()
        };
        let reads_before = self.env.repo.stats().bytes_read;

        report.breakdown.measure(
            &self.env.clock,
            "read files",
            || -> Result<(), StoreError> {
                for (record, placement) in &manifest.files {
                    match placement {
                        Placement::Db(row) => {
                            // Row fetch: base row cost (charged by db.get) +
                            // Hemera's page-walk surcharge.
                            self.env.repo.charge_fixed(costs::hemera_row_fetch_extra());
                            let got = self
                                .db
                                .get("small_files", *row)
                                .map_err(|e| StoreError::Corrupt(e.to_string()))?;
                            if got.is_none() {
                                return Err(StoreError::Corrupt(format!(
                                    "row for {}",
                                    record.path
                                )));
                            }
                        }
                        Placement::Fs(digest) => {
                            self.cas.get(digest).map_err(|_| {
                                StoreError::Corrupt(format!("file {}", record.path))
                            })?;
                        }
                    }
                }
                Ok(())
            },
        )?;

        let vmi = report.breakdown.measure(&self.env.clock, "assemble", || {
            let vmi = manifest.snapshot.restore();
            self.env.local.charge_write(vmi.disk_bytes());
            vmi
        });
        report.bytes_read = self.env.repo.stats().bytes_read - reads_before;
        report.duration = self.env.clock.since(t0);
        Ok((vmi, report))
    }

    fn repo_bytes(&self) -> u64 {
        // Manifest + row-key overhead: ≈48 nominal bytes per entry
        // (scaled); DB content counted at face value.
        let entries: u64 = self.manifests.values().map(|m| m.files.len() as u64).sum();
        let rows = self.db_index.len() as u64;
        self.cas.unique_bytes()
            + self.db_content_bytes
            + ((entries + rows) * 48).div_ceil(xpl_util::SCALE_FACTOR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_workloads::World;

    #[test]
    fn splits_files_between_db_and_fs() {
        let w = World::small();
        let mut store = HemeraStore::new(w.env());
        store.publish(&w.catalog, &w.build_image("lamp")).unwrap();
        assert!(store.db_file_count() > 0, "small files in DB");
        assert!(store.fs_file_count() > 0, "large files in FS");
    }

    #[test]
    fn retrieval_faster_than_mirage() {
        let w = World::small();
        let mut hemera = HemeraStore::new(w.env());
        let mut mirage = crate::MirageStore::new(w.env());
        let redis = w.build_image("redis");
        hemera.publish(&w.catalog, &redis).unwrap();
        mirage.publish(&w.catalog, &redis).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&redis, &w.catalog);
        let (_, rh) = hemera.retrieve(&w.catalog, &req).unwrap();
        let (_, rm) = mirage.retrieve(&w.catalog, &req).unwrap();
        assert!(
            rh.duration < rm.duration,
            "Hemera {} should beat Mirage {}",
            rh.duration,
            rm.duration
        );
    }

    #[test]
    fn storage_equals_mirage_class() {
        // Paper: Mirage and Hemera repository sizes are nearly identical.
        let w = World::small();
        let mut hemera = HemeraStore::new(w.env());
        let mut mirage = crate::MirageStore::new(w.env());
        for name in ["mini", "redis", "lamp"] {
            let vmi = w.build_image(name);
            hemera.publish(&w.catalog, &vmi).unwrap();
            mirage.publish(&w.catalog, &vmi).unwrap();
        }
        let h = hemera.repo_bytes() as f64;
        let m = mirage.repo_bytes() as f64;
        assert!((h / m - 1.0).abs() < 0.15, "hemera {h} vs mirage {m}");
    }

    #[test]
    fn roundtrip() {
        let w = World::small();
        let mut store = HemeraStore::new(w.env());
        let lamp = w.build_image("lamp");
        store.publish(&w.catalog, &lamp).unwrap();
        let req = xpl_store::RetrieveRequest::for_image(&lamp, &w.catalog);
        let (got, _) = store.retrieve(&w.catalog, &req).unwrap();
        assert_eq!(
            got.installed_package_set(&w.catalog),
            lamp.installed_package_set(&w.catalog)
        );
    }
}
