//! `xpl-pkg` — the guest package-management substrate.
//!
//! Expelliarmus's whole premise is that a VMI decomposes into a base image
//! plus *packages* whose identity, version, architecture, size and
//! dependency closure are visible to the guest package manager. This crate
//! models that world:
//!
//! * [`version`] — Debian-policy version strings with correct ordering
//!   (epoch, `~` pre-releases, alternating digit/non-digit comparison).
//! * [`arch`] — package architectures, including the portable `all`.
//! * [`meta`] — package metadata, dependencies and file manifests.
//! * [`catalog`] — the package universe with an install-closure resolver
//!   (cycle-tolerant, version-constraint aware).
//! * [`content`] — deterministic, compressible synthetic file content.
//! * [`deb`] — `.deb`-like binary package construction (packed size is
//!   smaller than installed size, a distinction the paper leans on).
//! * [`dpkgdb`] — per-image installed-package database with
//!   autoremove-style unused-dependency detection.

pub mod arch;
pub mod baseimg;
pub mod catalog;
pub mod content;
pub mod deb;
pub mod dpkgdb;
pub mod meta;
pub mod version;

pub use arch::Arch;
pub use baseimg::{BaseImageAttrs, OsType};
pub use catalog::{Catalog, ResolveError};
pub use deb::DebPackage;
pub use dpkgdb::DpkgDb;
pub use meta::{Dependency, FileManifest, PackageId, PackageMeta, PkgFile, Section, VersionReq};
pub use version::Version;
