//! Deterministic synthetic file content.
//!
//! Requirements that drive this module:
//! 1. **Stability** — the same `(seed, size)` always yields the same
//!    bytes, across runs, threads and platforms; content identity is what
//!    file- and block-level deduplication act on.
//! 2. **Realistic compressibility** — whole-image gzip must land in the
//!    paper's 0.35–0.45 ratio band, so content is a tuned mix of
//!    text-like, sparse and incompressible regions.

use xpl_util::SplitMix64;

/// Vocabulary for text-like regions (ELF section names, config keys,
/// dpkg fields… the stuff OS files are actually full of).
const WORDS: &[&str] = &[
    "version",
    "depends",
    "package",
    "description",
    "architecture",
    "maintainer",
    "usr",
    "lib",
    "share",
    "local",
    "etc",
    "config",
    "daemon",
    "service",
    "libc",
    "GLIBC_2",
    "symtab",
    "strtab",
    "rodata",
    "dynsym",
    "init",
    "fini",
    "error",
    "cannot",
    "failed",
    "warning",
    "missing",
    "required",
    "default",
    "true",
    "false",
    "null",
    "none",
    "enable",
    "disable",
    "static",
    "dynamic",
];

/// Fraction splits for the three content classes, calibrated so that
/// DEFLATE over typical image payloads lands near the paper's gzip ratios.
const TEXT_WEIGHT: u64 = 55;
const SPARSE_WEIGHT: u64 = 25;
// remainder: incompressible

/// Generate `size` bytes of content for the given seed.
pub fn generate(seed: u64, size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    let mut rng = SplitMix64::new(seed ^ 0xC0FF_EE00_D15E_A5E5);
    while out.len() < size {
        let remaining = size - out.len();
        let class = rng.next_below(100);
        let run = rng.next_range(64, 512).min(remaining as u64) as usize;
        if class < TEXT_WEIGHT {
            fill_text(&mut rng, &mut out, run);
        } else if class < TEXT_WEIGHT + SPARSE_WEIGHT {
            // Sparse/zero region (padding, .bss-like, alignment).
            out.extend(std::iter::repeat_n(0u8, run));
        } else {
            // Incompressible (compiled code, compressed payloads).
            let start = out.len();
            out.resize(start + run, 0);
            rng.fill_bytes(&mut out[start..]);
        }
    }
    out.truncate(size);
    out
}

fn fill_text(rng: &mut SplitMix64, out: &mut Vec<u8>, run: usize) {
    let end = out.len() + run;
    while out.len() < end {
        let w = WORDS[rng.next_below(WORDS.len() as u64) as usize];
        let left = end - out.len();
        if w.len() < left {
            out.extend_from_slice(w.as_bytes());
            out.push(if rng.chance(0.2) { b'\n' } else { b' ' });
        } else {
            out.extend(std::iter::repeat_n(b' ', left));
        }
    }
}

/// Digest-equivalent content identity without materializing: hash of
/// `(seed, size)`. Two files have identical bytes iff `(seed, size)` match,
/// so stores may use this as a fast path; [`generate`] remains the ground
/// truth and tests verify agreement.
pub fn content_digest(seed: u64, size: usize) -> xpl_util::Digest {
    // NOTE: this must stay consistent with `generate`: identical bytes are
    // produced exactly for identical (seed, size) pairs, and different
    // pairs produce different bytes with overwhelming probability (the
    // generator never reuses streams across seeds).
    let mut h = xpl_util::Sha256::new();
    h.update(b"xpl-content-v1");
    h.update(&seed.to_le_bytes());
    h.update(&(size as u64).to_le_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(generate(42, 1000), generate(42, 1000));
        assert_ne!(generate(42, 1000), generate(43, 1000));
    }

    #[test]
    fn exact_size() {
        for size in [0usize, 1, 63, 64, 65, 1000, 4096] {
            assert_eq!(generate(7, size).len(), size);
        }
    }

    #[test]
    fn compressibility_in_band() {
        // A representative blend of many files should deflate to roughly
        // the gzip band the paper shows for OS images (0.30–0.50).
        let mut blob = Vec::new();
        for seed in 0..50u64 {
            blob.extend(generate(seed, 2048));
        }
        let c = xpl_compress_ratio(&blob);
        assert!((0.25..0.60).contains(&c), "ratio {c} out of band");
    }

    // Local helper to avoid a dev-dependency cycle with xpl-compress: a
    // cheap entropy proxy — fraction of distinct 4-grams — correlates with
    // DEFLATE ratio well enough for a band assertion.
    fn xpl_compress_ratio(data: &[u8]) -> f64 {
        use std::collections::HashSet;
        let mut grams: HashSet<[u8; 4]> = HashSet::new();
        for w in data.windows(4).step_by(4) {
            grams.insert(w.try_into().unwrap());
        }
        grams.len() as f64 / (data.len() / 4).max(1) as f64
    }

    #[test]
    fn digest_distinguishes_pairs() {
        assert_eq!(content_digest(1, 10), content_digest(1, 10));
        assert_ne!(content_digest(1, 10), content_digest(2, 10));
        assert_ne!(content_digest(1, 10), content_digest(1, 11));
    }

    #[test]
    fn prefix_property_not_assumed() {
        // generate(seed, n) need not be a prefix of generate(seed, m>n);
        // the digest therefore keys on (seed, size), both of which matter.
        let a = generate(5, 100);
        let b = generate(5, 200);
        // They may or may not share a prefix; the invariant we rely on is
        // only equality for equal (seed, size). Document by checking both
        // calls are individually reproducible.
        assert_eq!(a, generate(5, 100));
        assert_eq!(b, generate(5, 200));
    }
}
