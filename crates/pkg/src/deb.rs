//! `.deb`-style binary package construction.
//!
//! Expelliarmus's decomposer recreates binary packages from installed
//! trees (`dpkg-repack`-style) and stores them in the repository; the
//! assembler imports them back. The binary blob built here is
//! deterministic for a given `(name, version, arch)` — that is what makes
//! package-level deduplication exact — and its size is the package's
//! `deb_size` (smaller than `installed_size`, modelling compression of the
//! payload inside the archive).

use crate::catalog::Catalog;
use crate::meta::PackageId;
use xpl_util::{Digest, Sha256};

/// A built binary package.
#[derive(Clone, Debug)]
pub struct DebPackage {
    pub package: PackageId,
    /// Identity string `name=version/arch`.
    pub identity: String,
    /// The archive bytes (control member + payload).
    pub bytes: Vec<u8>,
    pub digest: Digest,
}

/// Magic prefix of the archive format (stand-in for `!<arch>\ndebian-binary`).
const MAGIC: &[u8; 8] = b"XDEB\x01\x00\x00\x00";

/// Build the binary package for `id`.
///
/// Layout: magic, control paragraph (text), file index (path + size +
/// content digest per manifest entry), then a deterministic compressed-
/// payload stand-in sized so the total equals `deb_size`.
pub fn build_deb(catalog: &Catalog, id: PackageId) -> DebPackage {
    let meta = catalog.get(id);
    let mut bytes = Vec::with_capacity(meta.deb_size as usize + 256);
    bytes.extend_from_slice(MAGIC);

    // Control paragraph — same fields dpkg writes.
    let mut control = String::new();
    control.push_str(&format!("Package: {}\n", meta.name));
    control.push_str(&format!("Version: {}\n", meta.version));
    control.push_str(&format!("Architecture: {}\n", meta.arch));
    control.push_str(&format!("Section: {}\n", meta.section.as_str()));
    control.push_str(&format!("Installed-Size: {}\n", meta.installed_size));
    if !meta.depends.is_empty() {
        let deps: Vec<String> = meta
            .depends
            .iter()
            .map(|d| format!("{} ({})", d.name, d.req))
            .collect();
        control.push_str(&format!("Depends: {}\n", deps.join(", ")));
    }
    bytes.extend_from_slice(&(control.len() as u32).to_le_bytes());
    bytes.extend_from_slice(control.as_bytes());

    // File index, as a compact rollup: count + one digest over all
    // entries. (A literal per-file index would be ~40 *real* bytes per
    // file — 40 KB nominal under the scale model — and would dwarf the
    // payload for file-heavy packages; the rollup keeps the archive's
    // content identity sensitive to every manifest entry at realistic
    // size.)
    bytes.extend_from_slice(&(meta.manifest.files.len() as u32).to_le_bytes());
    let mut index = xpl_util::Sha256::new();
    for f in &meta.manifest.files {
        index.update(f.path.as_str().as_bytes());
        index.update(&f.size.to_le_bytes());
        index.update(&crate::content::content_digest(f.seed, f.size as usize).0[..8]);
    }
    bytes.extend_from_slice(&index.finalize().0);

    // Compressed-payload stand-in: deterministic bytes keyed on identity,
    // padding the archive to deb_size (if the header already exceeds it,
    // the archive is just the header — tiny packages).
    let identity = meta.identity();
    if (bytes.len() as u64) < meta.deb_size {
        let pad = meta.deb_size as usize - bytes.len();
        let mut rng = xpl_util::SplitMix64::new(0xDEB0).derive(&identity);
        let start = bytes.len();
        bytes.resize(start + pad, 0);
        rng.fill_bytes(&mut bytes[start..]);
    }

    let digest = Sha256::digest(&bytes);
    DebPackage {
        package: id,
        identity,
        bytes,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::PackageSpec;
    use crate::meta::{Dependency, FileManifest, PkgFile, Section};
    use crate::{Arch, Version};
    use xpl_util::IStr;

    fn catalog_with_redis() -> (Catalog, PackageId) {
        let mut c = Catalog::new();
        c.add(PackageSpec {
            name: "libc6".into(),
            version: Version::parse("2.31"),
            arch: Arch::Amd64,
            section: Section::Base,
            essential: true,
            deb_size: 2000,
            installed_size: 6000,
            depends: vec![],
            manifest: FileManifest::default(),
        });
        let redis = c.add(PackageSpec {
            name: "redis-server".into(),
            version: Version::parse("5.0.7"),
            arch: Arch::Amd64,
            section: Section::Databases,
            essential: false,
            deb_size: 800,
            installed_size: 2600,
            depends: vec![Dependency::at_least("libc6", "2.27")],
            manifest: FileManifest {
                files: vec![
                    PkgFile {
                        path: IStr::new("/usr/bin/redis-server"),
                        size: 1800,
                        seed: 11,
                    },
                    PkgFile {
                        path: IStr::new("/etc/redis/redis.conf"),
                        size: 800,
                        seed: 12,
                    },
                ],
            },
        });
        (c, redis)
    }

    #[test]
    fn deterministic_bytes_and_digest() {
        let (c, redis) = catalog_with_redis();
        let a = build_deb(&c, redis);
        let b = build_deb(&c, redis);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.identity, "redis-server=5.0.7/amd64");
    }

    #[test]
    fn archive_size_equals_deb_size() {
        let (c, redis) = catalog_with_redis();
        let deb = build_deb(&c, redis);
        assert_eq!(deb.bytes.len() as u64, c.get(redis).deb_size);
    }

    #[test]
    fn control_fields_present() {
        let (c, redis) = catalog_with_redis();
        let deb = build_deb(&c, redis);
        let text = String::from_utf8_lossy(&deb.bytes);
        assert!(text.contains("Package: redis-server"));
        assert!(text.contains("Version: 5.0.7"));
        assert!(text.contains("Depends: libc6 (>= 2.27)"));
    }

    #[test]
    fn different_versions_different_digests() {
        let (mut c, redis) = catalog_with_redis();
        let redis2 = c.add(PackageSpec {
            name: "redis-server".into(),
            version: Version::parse("6.0.1"),
            arch: Arch::Amd64,
            section: Section::Databases,
            essential: false,
            deb_size: 820,
            installed_size: 2700,
            depends: vec![],
            manifest: FileManifest::default(),
        });
        assert_ne!(build_deb(&c, redis).digest, build_deb(&c, redis2).digest);
    }

    #[test]
    fn tiny_package_header_dominates() {
        let mut c = Catalog::new();
        let id = c.add(PackageSpec {
            name: "tiny".into(),
            version: Version::parse("0.1"),
            arch: Arch::All,
            section: Section::Misc,
            essential: false,
            deb_size: 4, // smaller than the header — allowed
            installed_size: 10,
            depends: vec![],
            manifest: FileManifest::default(),
        });
        let deb = build_deb(&c, id);
        assert!(deb.bytes.len() >= MAGIC.len());
    }
}
