//! Package and base-image architectures.
//!
//! The paper's package-similarity metric treats architecture `all` as
//! "portable and available on base images with any architecture"; the
//! compatibility logic here encodes exactly that rule.

/// A hardware architecture tag as used by Debian-style packaging.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arch {
    Amd64,
    Arm64,
    I386,
    /// Architecture-independent package, installable anywhere.
    All,
}

impl Arch {
    pub fn as_str(self) -> &'static str {
        match self {
            Arch::Amd64 => "amd64",
            Arch::Arm64 => "arm64",
            Arch::I386 => "i386",
            Arch::All => "all",
        }
    }

    pub fn parse(s: &str) -> Option<Arch> {
        Some(match s {
            "amd64" | "x86_64" => Arch::Amd64,
            "arm64" | "aarch64" => Arch::Arm64,
            "i386" | "x86" => Arch::I386,
            "all" => Arch::All,
            _ => return None,
        })
    }

    /// Can a package of architecture `self` be installed on a base image
    /// of architecture `host`?
    pub fn installable_on(self, host: Arch) -> bool {
        self == Arch::All || self == host
    }

    /// Similarity contribution between two package architectures for the
    /// paper's `simP` metric: equal → 1.0, either side `all` → 1.0
    /// (portable), otherwise 0.0.
    pub fn similarity(self, other: Arch) -> f64 {
        if self == other || self == Arch::All || other == Arch::All {
            1.0
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_aliases() {
        assert_eq!(Arch::parse("x86_64"), Some(Arch::Amd64));
        assert_eq!(Arch::parse("aarch64"), Some(Arch::Arm64));
        assert_eq!(Arch::parse("all"), Some(Arch::All));
        assert_eq!(Arch::parse("sparc"), None);
    }

    #[test]
    fn all_installs_anywhere() {
        for host in [Arch::Amd64, Arch::Arm64, Arch::I386] {
            assert!(Arch::All.installable_on(host));
        }
        assert!(Arch::Amd64.installable_on(Arch::Amd64));
        assert!(!Arch::Amd64.installable_on(Arch::Arm64));
    }

    #[test]
    fn similarity_rules() {
        assert_eq!(Arch::Amd64.similarity(Arch::Amd64), 1.0);
        assert_eq!(Arch::Amd64.similarity(Arch::All), 1.0);
        assert_eq!(Arch::All.similarity(Arch::I386), 1.0);
        assert_eq!(Arch::Amd64.similarity(Arch::Arm64), 0.0);
    }

    #[test]
    fn display_roundtrip() {
        for a in [Arch::Amd64, Arch::Arm64, Arch::I386, Arch::All] {
            assert_eq!(Arch::parse(a.as_str()), Some(a));
        }
    }
}
